//! Multi-tenant server stress tests: the deterministic server against
//! the sequential model, across seeds, pool widths and tenant counts.
//!
//! The server (DESIGN.md §3.8) promises that in
//! [`ExecMode::Deterministic`] the shared-pool width is invisible: a
//! fixed submission trace produces bit-identical per-tenant results at
//! 1, 4 or 8 pool threads, because each tenant's schedule is a pure
//! function of (derived seed, `tenant_threads`, batch contents). These
//! tests drive that promise end-to-end with [`tenant_mix`] workloads:
//!
//! * every tenant's committed census must equal a single-threaded
//!   [`SequentialModel`] replay of its own completion log — same
//!   segments, same `NetId`s;
//! * the isolation audit: no admission, outcome, log entry or claim of
//!   one tenant may reference another tenant's shard, and every claim
//!   audit must come back clean;
//! * the full per-tenant (census, log) pair must be identical across
//!   pool widths {1, 4, 8};
//! * a recorded tenant-tagged trace replayed through the server path
//!   ([`server::replay_trace`]) must agree with per-shard standalone
//!   replays of its [`Trace::subtrace`] projections under the exact
//!   [`tenant_service_config`] policy the server uses.

use detrand::DetRng;
use jroute::maze::MazeConfig;
use jroute_svc::model::SequentialModel;
use jroute_svc::server::{replay_trace, tenant_service_config};
use jroute_svc::{
    serve, Deadline, ExecMode, RequestKind, RoutingService, ServerConfig, TenantId, Trace, TraceOp,
};
use jroute_workloads::{tenant_mix, TenantMixParams};
use std::collections::HashMap;
use virtex::{Device, Family};

use jroute::obs::Recorder;

const SEEDS: [u64; 3] = [0xA11CE, 0xB0B, 0xC0FFEE];
const POOL_WIDTHS: [usize; 3] = [1, 4, 8];
const TENANT_COUNTS: [u16; 3] = [1, 2, 4];

fn mix_params(tenants: u16) -> TenantMixParams {
    TenantMixParams {
        tenants,
        per_tenant: 10,
        batch_every: 6,
        fanout: 2,
        span: 4,
        unroute_pct: 25,
        replace_pct: 25,
    }
}

fn server_cfg(pool: usize, seed: u64) -> ServerConfig {
    ServerConfig {
        threads: pool,
        tenant_threads: 2,
        mode: ExecMode::Deterministic { seed },
        audit: true,
        // Watermarks off: the test controls batch boundaries via flush,
        // so every width sees the identical batch structure.
        batch_max: usize::MAX,
        batch_wait: u64::MAX,
        ..Default::default()
    }
}

/// Feed a tenant-tagged trace to a live server, preserving recorded
/// batch boundaries, and return the per-admission kinds (victims named
/// by admission id — the namespace [`SequentialModel`] replays in)
/// alongside the report.
fn drive(
    devices: &[&Device],
    cfg: ServerConfig,
    trace: &Trace,
) -> (
    HashMap<(TenantId, u64), RequestKind>,
    Vec<jroute_svc::TenantReport>,
) {
    let (kinds, report) = serve(devices, cfg, Recorder::disabled(), |client| {
        let handles: Vec<_> = (0..devices.len())
            .map(|t| client.tenant(t as TenantId))
            .collect();
        // Global trace id -> the admission id the server assigned.
        let mut admitted: Vec<u64> = Vec::with_capacity(trace.len());
        let mut kinds = HashMap::new();
        for batch in &trace.batches {
            let mut tickets = Vec::new();
            for req in batch {
                let victim = |tid: &u32| admitted[*tid as usize];
                let kind = match &req.op {
                    TraceOp::Route(spec) => RequestKind::Route(spec.clone()),
                    TraceOp::Unroute(tid) => RequestKind::Unroute(victim(tid)),
                    TraceOp::Replace { remove, add } => RequestKind::Replace {
                        remove: remove.iter().map(victim).collect(),
                        add: add.clone(),
                    },
                };
                let ticket = handles[usize::from(req.tenant)]
                    .submit_with(
                        kind.clone(),
                        req.priority,
                        req.deadline.map(Deadline::Steps),
                    )
                    .expect("gate capacity exceeds the workload");
                admitted.push(ticket.id());
                kinds.insert((req.tenant, ticket.id()), kind);
                tickets.push(ticket);
            }
            for handle in &handles {
                handle.flush();
            }
            for ticket in &tickets {
                ticket.wait();
            }
        }
        kinds
    });
    (kinds, report.tenants)
}

/// The deterministic server agrees with a per-tenant sequential replay
/// of its own logs, for every seed × pool width × tenant count, and the
/// isolation audit holds.
#[test]
fn deterministic_server_matches_sequential_model_across_widths() {
    for seed in SEEDS {
        for tenants in TENANT_COUNTS {
            let devices: Vec<Device> = (0..tenants).map(|_| Device::new(Family::Xcv50)).collect();
            let refs: Vec<&Device> = devices.iter().collect();
            let mut rng = DetRng::seed_from_u64(seed);
            let trace = tenant_mix(&devices[0], &mix_params(tenants), &mut rng);

            let mut baseline: Option<Vec<_>> = None;
            for pool in POOL_WIDTHS {
                let (kinds, reports) = drive(&refs, server_cfg(pool, seed), &trace);
                assert_eq!(reports.len(), usize::from(tenants));

                for t in &reports {
                    // Claim audit clean, tenant never poisoned.
                    assert_eq!(
                        t.leaked_claims,
                        Some(0),
                        "seed {seed:#x} pool {pool} tenant {}: leaked claims",
                        t.tenant
                    );
                    assert!(!t.poisoned);

                    // Isolation: every admission this tenant answered was
                    // admitted through this tenant's gate (dense ids), and
                    // every victim its requests name is its own admission.
                    for (i, &(seq, _)) in t.outcomes.iter().enumerate() {
                        assert_eq!(seq, i as u64, "tenant admission ids are dense");
                    }
                    for entry in &t.log {
                        let kind = &kinds[&(t.tenant, entry.seq)];
                        let victims: Vec<u64> = match kind {
                            RequestKind::Route(_) => Vec::new(),
                            RequestKind::Unroute(v) => vec![*v],
                            RequestKind::Replace { remove, .. } => remove.clone(),
                        };
                        for v in victims {
                            assert!(
                                kinds.contains_key(&(t.tenant, v)),
                                "tenant {} names victim {v} outside its shard",
                                t.tenant
                            );
                        }
                    }

                    // Model diff: replay the successful log entries
                    // sequentially; the shard census must match exactly.
                    let dev = &devices[usize::from(t.tenant)];
                    let mut model = SequentialModel::new(dev, MazeConfig::default());
                    for entry in &t.log {
                        if t.outcome(entry.seq)
                            .expect("logged => answered")
                            .is_success()
                        {
                            model.apply(entry.seq, &kinds[&(t.tenant, entry.seq)]);
                        }
                    }
                    assert_eq!(
                        model.db().census(),
                        t.census,
                        "seed {seed:#x} pool {pool} tenant {}: census drifted from model",
                        t.tenant
                    );
                }

                // Pool width must be invisible: identical census and log
                // at 1, 4 and 8 shared threads.
                let key: Vec<_> = reports
                    .iter()
                    .map(|t| (t.census.clone(), t.log.clone(), t.outcomes.clone()))
                    .collect();
                match &baseline {
                    None => baseline = Some(key),
                    Some(b) => assert_eq!(
                        b, &key,
                        "seed {seed:#x} tenants {tenants}: pool width {pool} changed results"
                    ),
                }
            }
        }
    }
}

/// Server-path trace replay agrees with standalone per-shard replays:
/// `replay_trace` over the whole tagged trace produces, per tenant, the
/// census a fresh `RoutingService` reaches replaying that tenant's
/// `subtrace` under the same per-tenant policy.
#[test]
fn server_trace_replay_matches_per_shard_standalone_replay() {
    let seed = 0x7E4A;
    let tenants: u16 = 3;
    let devices: Vec<Device> = (0..tenants).map(|_| Device::new(Family::Xcv50)).collect();
    let refs: Vec<&Device> = devices.iter().collect();
    let mut rng = DetRng::seed_from_u64(seed);
    let trace = tenant_mix(&devices[0], &mix_params(tenants), &mut rng);
    trace.validate().unwrap();

    let cfg = server_cfg(4, seed);
    let report =
        replay_trace(&refs, &cfg, Recorder::disabled(), &trace).expect("valid trace replays");

    for t in 0..tenants {
        let shard = trace.subtrace(t);
        let mut svc = RoutingService::new(&devices[usize::from(t)], tenant_service_config(&cfg, t));
        shard.replay(&mut svc).expect("subtrace replays standalone");
        assert_eq!(
            svc.db().census(),
            report.tenants[usize::from(t)].census,
            "tenant {t}: server path and standalone shard replay disagree"
        );
    }
}
