//! Service-layer concurrency stress tests.
//!
//! The deterministic half drives `jroute-svc` through multi-batch mixed
//! workloads (route / unroute / replace / cancel / deadline) under a
//! seeded work-stealing schedule, then replays each batch's completion
//! log through the single-threaded [`SequentialModel`] and demands the
//! *identical* final `NetDb` census — same segments, same `NetId`s —
//! plus a zero leaked-claims audit. Every seed runs at 1, 4 and 8
//! workers: the schedules differ wildly, the committed state must not
//! drift from the model in any of them.
//!
//! The threaded half runs the same workload shape on real threads, where
//! completion order is nondeterministic, and checks the invariants that
//! survive nondeterminism: zero leaked claims, single-owner segments,
//! and exact bookkeeping between outcomes and the database.

use detrand::DetRng;
use jroute_svc::model::SequentialModel;
use jroute_svc::{
    Deadline, ExecMode, RequestId, RequestKind, RequestOutcome, RoutingService, ServiceConfig,
};
use jroute_workloads::{random_netlist, NetlistParams};
use std::collections::{HashMap, HashSet};
use virtex::{Device, Family};

const SEEDS: [u64; 3] = [0xA11CE, 0xB0B, 0xC0FFEE];
const WORKERS: [usize; 3] = [1, 4, 8];

fn dev() -> Device {
    Device::new(Family::Xcv50)
}

fn cfg(threads: usize, mode: ExecMode) -> ServiceConfig {
    ServiceConfig {
        threads,
        mode,
        audit: true,
        ..Default::default()
    }
}

/// Submit a two-batch mixed workload and return, per batch, the log
/// replay feed. The shape is seeded: batch one routes a netlist; batch
/// two unroutes some of those nets, replaces others, routes fresh ones,
/// and throws in a cancelled and an expired request.
struct Driver<'d> {
    svc: RoutingService<'d>,
    kinds: HashMap<RequestId, RequestKind>,
}

impl<'d> Driver<'d> {
    fn new(svc: RoutingService<'d>) -> Self {
        Driver {
            svc,
            kinds: HashMap::new(),
        }
    }

    fn submit(&mut self, kind: RequestKind) -> RequestId {
        let id = self.svc.submit(kind.clone()).expect("queue has room");
        self.kinds.insert(id, kind);
        id
    }

    /// Run a batch, replay its successes into `model`, return outcomes.
    fn run_and_replay(
        &mut self,
        model: &mut SequentialModel<'_>,
    ) -> Vec<(RequestId, RequestOutcome)> {
        let report = self.svc.run_batch();
        assert_eq!(
            report.leaked_claims,
            Some(0),
            "claim table and net database disagree after the batch"
        );
        for entry in &report.log {
            if report.outcome(entry.request).unwrap().is_success() {
                model.apply(entry.request, &self.kinds[&entry.request]);
            }
        }
        report.outcomes
    }
}

#[test]
fn deterministic_schedules_match_sequential_model() {
    let dev = dev();
    for &seed in &SEEDS {
        for &threads in &WORKERS {
            let mut d = Driver::new(RoutingService::new(
                &dev,
                cfg(threads, ExecMode::Deterministic { seed }),
            ));
            let mut model = SequentialModel::new(&dev, Default::default());
            let mut rng = DetRng::seed_from_u64(seed);

            // Batch 1: a netlist of short nets.
            let specs = random_netlist(
                &dev,
                &NetlistParams {
                    nets: 10,
                    max_fanout: 2,
                    max_span: Some(4),
                },
                &mut rng,
            );
            let routed: Vec<RequestId> = specs
                .iter()
                .map(|s| d.submit(RequestKind::Route(s.clone())))
                .collect();
            let outcomes = d.run_and_replay(&mut model);
            let committed: Vec<RequestId> = outcomes
                .iter()
                .filter(|(_, o)| o.is_success())
                .map(|&(id, _)| id)
                .collect();
            assert!(
                !committed.is_empty(),
                "seed {seed:#x}: first batch routed nothing"
            );
            assert_eq!(
                model.db().census(),
                d.svc.db().census(),
                "seed {seed:#x} threads {threads}: batch 1 diverged from the model"
            );

            // Batch 2: tear some down, replace one, add fresh nets, and
            // include a cancelled plus an expired request.
            let fresh = random_netlist(
                &dev,
                &NetlistParams {
                    nets: 6,
                    max_fanout: 1,
                    max_span: Some(4),
                },
                &mut rng,
            );
            d.submit(RequestKind::Unroute(committed[0]));
            if committed.len() > 1 {
                d.submit(RequestKind::Replace {
                    remove: vec![committed[1]],
                    add: vec![fresh[0].clone(), fresh[1].clone()],
                });
            }
            for s in &fresh[2..] {
                d.submit(RequestKind::Route(s.clone()));
            }
            let (cancelled, token) = d
                .svc
                .submit_with(RequestKind::Route(specs[0].clone()), 128, None)
                .unwrap();
            token.cancel();
            let (expired, _) = d
                .svc
                .submit_with(
                    RequestKind::Route(specs[1].clone()),
                    128,
                    Some(Deadline::Steps(0)),
                )
                .unwrap();
            let outcomes = d.run_and_replay(&mut model);
            let lookup: HashMap<RequestId, &RequestOutcome> =
                outcomes.iter().map(|(id, o)| (*id, o)).collect();
            assert_eq!(lookup[&cancelled], &RequestOutcome::Cancelled);
            assert_eq!(lookup[&expired], &RequestOutcome::Expired);
            assert_eq!(
                model.db().census(),
                d.svc.db().census(),
                "seed {seed:#x} threads {threads}: batch 2 diverged from the model"
            );
            let _ = routed;
        }
    }
}

#[test]
fn threaded_schedules_keep_invariants() {
    let dev = dev();
    for &seed in &SEEDS {
        for &threads in &[4usize, 8] {
            let mut svc = RoutingService::new(&dev, cfg(threads, ExecMode::Threaded));
            let mut rng = DetRng::seed_from_u64(seed);
            let specs = random_netlist(
                &dev,
                &NetlistParams {
                    nets: 14,
                    max_fanout: 2,
                    max_span: Some(4),
                },
                &mut rng,
            );
            let ids: Vec<RequestId> = specs
                .iter()
                .map(|s| svc.submit(RequestKind::Route(s.clone())).unwrap())
                .collect();
            let report = svc.run_batch();
            assert_eq!(report.leaked_claims, Some(0), "seed {seed:#x}: leak");
            assert_eq!(report.outcomes.len(), ids.len());

            // Single-owner invariant over the committed database.
            let mut seen = HashSet::new();
            for (seg, _) in svc.db().iter_used() {
                assert!(seen.insert(seg), "segment {seg} owned twice");
            }
            // Bookkeeping: every Routed outcome has a live net of the
            // reported size; everything else left no net behind.
            let mut live = 0usize;
            for (id, o) in &report.outcomes {
                match o {
                    RequestOutcome::Routed { net, segments } => {
                        live += 1;
                        let n = svc.db().net(*net).expect("routed net is live");
                        assert_eq!(n.segment_count(), *segments);
                        assert_eq!(svc.nets_of(*id), Some(&[*net][..]));
                    }
                    RequestOutcome::Congested { .. } => {}
                    other => panic!("unexpected outcome in pure-route batch: {other:?}"),
                }
            }
            assert_eq!(svc.db().len(), live);

            // Now a mixed second batch: unroute half, route fresh nets.
            let fresh = random_netlist(
                &dev,
                &NetlistParams {
                    nets: 6,
                    max_fanout: 1,
                    max_span: Some(4),
                },
                &mut rng,
            );
            let committed: Vec<RequestId> = report
                .outcomes
                .iter()
                .filter(|(_, o)| o.is_success())
                .map(|&(id, _)| id)
                .collect();
            for id in committed.iter().step_by(2) {
                svc.submit(RequestKind::Unroute(*id)).unwrap();
            }
            for s in &fresh {
                svc.submit(RequestKind::Route(s.clone())).unwrap();
            }
            let report = svc.run_batch();
            assert_eq!(
                report.leaked_claims,
                Some(0),
                "seed {seed:#x}: leak in batch 2"
            );
            let mut seen = HashSet::new();
            for (seg, _) in svc.db().iter_used() {
                assert!(seen.insert(seg), "segment {seg} owned twice after batch 2");
            }
        }
    }
}
