//! Churn soak: thousands of compose / relocate / replace / retire steps
//! against the routing service, audited every step.
//!
//! This is the scenario-corpus endurance test (ISSUE PR 6 acceptance):
//!
//! * **1000 steps, 1 worker and 4 workers** — every step's batch must
//!   report `leaked_claims == Some(0)` and pass the scenario's own
//!   claim-vs-NetDb census audit (both enforced inside
//!   [`ChurnScenario::step`]; any violation aborts the test).
//! * **Replay census equality** — the recorded trace replayed into a
//!   fresh deterministic service reproduces the soaked service's exact
//!   segment census, so a thousand steps of churn leave nothing behind
//!   that a from-scratch execution would not also leave.
//! * **Bounded negotiation** — periodically re-negotiating the live
//!   demand with the incremental PathFinder must stay within the
//!   per-net budget (`pathfinder.nets_rerouted` grows by at most
//!   `live nets x max_iterations` per negotiation, and converges
//!   legally every time).

use jroute::pathfinder::PathFinderConfig;
use jroute::Recorder;
use jroute_svc::{ExecMode, RoutingService, ServiceConfig};
use jroute_workloads::{ChurnParams, ChurnScenario};
use virtex::{Device, Family};

const SOAK_STEPS: usize = 1000;
const SEED: u64 = 0x50AC; // "soak"

fn det_cfg(threads: usize) -> ServiceConfig {
    ServiceConfig {
        threads,
        mode: ExecMode::Deterministic { seed: SEED },
        audit: true,
        ..Default::default()
    }
}

/// Run the full soak at `threads` workers; returns the scenario for
/// follow-on checks.
fn soak(dev: &Device, threads: usize) -> ChurnScenario<'_> {
    let mut sc = ChurnScenario::new(dev, det_cfg(threads), ChurnParams::default(), SEED);
    let mut committed = 0usize;
    for _ in 0..SOAK_STEPS {
        let out = sc
            .step()
            .unwrap_or_else(|v| panic!("soak at {threads} workers: {v}"));
        if out.committed {
            committed += 1;
        }
    }
    assert_eq!(sc.steps(), SOAK_STEPS);
    assert!(
        committed > SOAK_STEPS / 2,
        "churn stalled: only {committed}/{SOAK_STEPS} steps committed"
    );
    sc
}

fn soak_and_replay(threads: usize) {
    let dev = Device::new(Family::Xcv50);
    let sc = soak(&dev, threads);

    // Census equality against a fresh service replaying the recorded
    // trace: the soaked state is exactly reproducible from the request
    // stream, with zero leaked segments either way.
    let mut fresh = RoutingService::new(&dev, det_cfg(threads));
    let summary = sc.trace().replay(&mut fresh).expect("trace replays");
    assert_eq!(summary.submitted, sc.trace().len());
    for report in &summary.reports {
        assert_eq!(report.leaked_claims, Some(0), "replay leaked claims");
    }
    assert_eq!(
        fresh.db().census(),
        sc.svc().db().census(),
        "replayed census diverged from the soaked census"
    );
    assert_eq!(fresh.db().len(), sc.live_nets());
}

#[test]
fn thousand_step_soak_single_worker() {
    soak_and_replay(1);
}

#[test]
fn thousand_step_soak_four_workers() {
    soak_and_replay(4);
}

/// Interleave churn with periodic incremental negotiation of the live
/// demand and keep `pathfinder.nets_rerouted` within the per-net budget.
#[test]
fn negotiation_during_churn_stays_bounded() {
    let dev = Device::new(Family::Xcv50);
    let mut sc = ChurnScenario::with_recorder(
        &dev,
        det_cfg(2),
        ChurnParams::default(),
        SEED,
        Recorder::enabled(),
    );
    let cfg = PathFinderConfig::default();
    let mut last = 0u64;
    for chunk in 0..10 {
        for _ in 0..25 {
            sc.step().unwrap_or_else(|v| panic!("chunk {chunk}: {v}"));
        }
        let res = sc.negotiate(&cfg).expect("live demand resolves");
        assert!(res.legal, "chunk {chunk}: live demand must stay routable");
        assert_eq!(res.nets.len(), sc.live_nets());
        let now = sc
            .svc()
            .recorder()
            .report()
            .counter("pathfinder.nets_rerouted")
            .unwrap_or(0);
        let delta = now - last;
        last = now;
        let budget = (sc.live_nets() * cfg.max_iterations) as u64;
        assert!(
            delta <= budget,
            "chunk {chunk}: negotiation rerouted {delta} nets, budget {budget}"
        );
    }
}
