//! Cross-crate integration tests: the full stack (virtex + jbits +
//! jroute + cores + vsim) exercised together.

use detrand::DetRng;
use jbits::{diff, snapshot};
use jroute::parallel::{route_parallel, ParallelConfig};
use jroute::pathfinder::{self, PathFinderConfig};
use jroute::{EndPoint, Pin, PortDir, RouteError, Router};
use jroute_cores::{relocate, ConstAdder, Counter, Register, RtpCore, StimulusBank};
use jroute_workloads::{random_netlist, NetlistParams};
use virtex::{wire, Device, Family, RowCol};
use vsim::{LogicSource, Simulator};

fn dev50() -> Device {
    Device::new(Family::Xcv50)
}

#[test]
fn full_rtr_lifecycle_restores_blank_device() {
    let dev = dev50();
    let mut r = Router::new(&dev);
    let blank = snapshot(r.bits());

    // Build a small design: counter + register, port-connected.
    let mut ctr = Counter::new(4, 0, RowCol::new(2, 3));
    let mut reg = Register::new(4, 0, RowCol::new(2, 9));
    ctr.implement(&mut r).unwrap();
    reg.implement(&mut r).unwrap();
    let q: Vec<EndPoint> = ctr.q_ports().iter().map(|&p| p.into()).collect();
    let d: Vec<EndPoint> = reg.d_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&q, &d).unwrap();
    assert!(r.bits().on_pip_count() > 0);

    // Tear everything down: external nets, then the cores.
    jroute_cores::detach(&ctr, &mut r).unwrap();
    ctr.remove(&mut r).unwrap();
    reg.remove(&mut r).unwrap();

    let end = snapshot(r.bits());
    assert_eq!(
        diff(&blank, &end),
        vec![],
        "device must be bit-identical to blank after removal"
    );
}

#[test]
fn counter_register_system_runs_in_vsim() {
    let dev = dev50();
    let mut r = Router::new(&dev);
    let mut ctr = Counter::new(3, 0, RowCol::new(2, 3));
    let mut reg = Register::new(3, 0, RowCol::new(2, 9));
    ctr.implement(&mut r).unwrap();
    reg.implement(&mut r).unwrap();
    let q: Vec<EndPoint> = ctr.q_ports().iter().map(|&p| p.into()).collect();
    let d: Vec<EndPoint> = reg.d_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&q, &d).unwrap();

    let mut sim = Simulator::new(r.bits());
    for step in 1..=10u64 {
        sim.step().unwrap();
        let count = (0..3).fold(0u64, |acc, b| {
            acc | (sim
                .read(LogicSource::Xq {
                    rc: ctr.bit_site(b),
                    slice: 0,
                })
                .unwrap() as u64)
                << b
        });
        assert_eq!(count, step % 8);
        // The register lags the counter by one cycle.
        let lagged = (0..3).fold(0u64, |acc, b| {
            acc | (sim
                .read(LogicSource::Xq {
                    rc: reg.bit_site(b),
                    slice: 0,
                })
                .unwrap() as u64)
                << b
        });
        assert_eq!(lagged, (step - 1) % 8, "register holds previous count");
    }
}

#[test]
fn pathfinder_result_traces_end_to_end() {
    let dev = dev50();
    let mut rng = DetRng::seed_from_u64(11);
    let specs = random_netlist(
        &dev,
        &NetlistParams {
            nets: 12,
            max_fanout: 2,
            max_span: Some(8),
        },
        &mut rng,
    );
    let result = pathfinder::route_all(&dev, &specs, &PathFinderConfig::default()).unwrap();
    assert!(result.legal);
    let mut bits = jbits::Bitstream::new(&dev);
    pathfinder::apply(&result, &mut bits).unwrap();
    // Every net must trace from its source to exactly its sinks.
    for net in &result.nets {
        let src = dev
            .canonicalize(net.spec.source.rc, net.spec.source.wire)
            .unwrap();
        let traced = jroute::trace::trace(&bits, src);
        let mut want: Vec<Pin> = net.spec.sinks.clone();
        want.sort();
        let mut got = traced.sinks.clone();
        got.sort();
        assert_eq!(got, want, "net from {src} reaches wrong sinks");
    }
}

#[test]
fn parallel_and_pathfinder_agree_with_router_on_light_load() {
    let dev = dev50();
    let mut rng = DetRng::seed_from_u64(21);
    let specs = random_netlist(
        &dev,
        &NetlistParams {
            nets: 8,
            max_fanout: 1,
            max_span: Some(6),
        },
        &mut rng,
    );
    // Sequential router.
    let mut r = Router::new(&dev);
    let mut seq_ok = 0;
    for s in &specs {
        if r.route(&s.source.into(), &s.sinks[0].into()).is_ok() {
            seq_ok += 1;
        }
    }
    // Parallel router.
    let par = route_parallel(
        &dev,
        &specs,
        &ParallelConfig {
            threads: 4,
            ..Default::default()
        },
    );
    assert_eq!(seq_ok, 8);
    assert_eq!(par.nets.len(), 8);
    assert!(par.failed.is_empty());
}

#[test]
fn port_hierarchy_spans_cores() {
    // An outer "system" port bound to an inner core's port (paper §3.2:
    // "connections from ports of internal cores to its own ports").
    let dev = dev50();
    let mut r = Router::new(&dev);
    let mut stim = StimulusBank::new(1, RowCol::new(2, 2));
    let mut adder = ConstAdder::new(1, 1, RowCol::new(2, 8));
    stim.implement(&mut r).unwrap();
    adder.implement(&mut r).unwrap();
    let outer_in = r.define_port(
        "sys_in",
        "system",
        PortDir::Input,
        vec![adder.a_ports()[0].into()],
    );
    let outer_out = r.define_port(
        "sys_src",
        "system",
        PortDir::Output,
        vec![stim.out_ports()[0].into()],
    );
    r.route(&outer_out.into(), &outer_in.into()).unwrap();
    let traced = r.trace(&outer_out.into()).unwrap();
    // The adder's `a` port binds two pins (F1 and G1).
    assert_eq!(traced.sinks.len(), 2);
}

#[test]
fn router_refuses_contention_with_foreign_configuration() {
    let dev = dev50();
    let mut r = Router::new(&dev);
    // A foreign tool (raw JBits) drives a single.
    r.bits_mut()
        .set_pip(
            RowCol::new(4, 4),
            wire::out(0),
            wire::single(virtex::Dir::East, 2),
        )
        .unwrap();
    // The router's auto-route must not use that wire as a target, and a
    // manual route driving it must be rejected.
    let mut drivers = Vec::new();
    dev.arch().pips_into(
        RowCol::new(4, 4),
        wire::single(virtex::Dir::East, 2),
        &mut drivers,
    );
    let other = drivers.into_iter().find(|w| *w != wire::out(0)).unwrap();
    let err = r
        .route_pip(RowCol::new(4, 4), other, wire::single(virtex::Dir::East, 2))
        .unwrap_err();
    assert!(matches!(err, RouteError::Contention { .. }));
}

#[test]
fn routing_works_on_every_family_member() {
    for f in Family::ALL {
        let dev = Device::new(f);
        // Chip-diagonal nets are exactly what long lines exist for; using
        // them also keeps the search tractable on the 64x96 member.
        let mut r = Router::with_options(
            &dev,
            jroute::RouterOptions {
                use_long_lines: true,
                ..Default::default()
            },
        );
        let rows = dev.dims().rows;
        let cols = dev.dims().cols;
        let src: EndPoint = Pin::new(1, 1, wire::S0_YQ).into();
        let sink: EndPoint = Pin::new(rows - 2, cols - 2, wire::S0_F3).into();
        r.route(&src, &sink).unwrap_or_else(|e| panic!("{f}: {e}"));
        let net = r.trace(&src).unwrap();
        assert_eq!(net.sinks.len(), 1, "{f}");
    }
}

#[test]
fn relocation_is_idempotent_over_many_moves() {
    let dev = Device::new(Family::Xcv300);
    let mut r = Router::new(&dev);
    let mut stim = StimulusBank::new(2, RowCol::new(2, 2));
    let mut adder = ConstAdder::new(2, 1, RowCol::new(2, 8));
    stim.implement(&mut r).unwrap();
    adder.implement(&mut r).unwrap();
    let s: Vec<EndPoint> = stim.out_ports().iter().map(|&p| p.into()).collect();
    let a: Vec<EndPoint> = adder.a_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&s, &a).unwrap();
    for (row, col) in [(6u16, 12u16), (10, 20), (4, 30), (2, 8)] {
        relocate(&mut adder, &mut r, RowCol::new(row, col)).unwrap();
        assert!(
            r.remembered().is_empty(),
            "move to ({row},{col}) left dangling connections"
        );
        let traced = r.trace(&s[0]).unwrap();
        assert_eq!(
            traced.sinks.len(),
            2,
            "F1+G1 of bit 0 after move to ({row},{col})"
        );
        // Net bookkeeping must agree with the bitstream exactly: the sum
        // of recorded net pips equals the configured on-PIP count.
        let recorded: usize = r.nets().iter().map(|n| n.pips.len()).sum();
        assert_eq!(
            recorded,
            r.bits().on_pip_count(),
            "netdb/bitstream drift at ({row},{col})"
        );
    }
}

#[test]
fn frame_accounting_reflects_partial_reconfiguration() {
    let dev = dev50();
    let mut r = Router::new(&dev);
    let src: EndPoint = Pin::new(3, 3, wire::S0_YQ).into();
    let sink: EndPoint = Pin::new(3, 6, wire::S0_F3).into();
    r.route(&src, &sink).unwrap();
    let route_frames = r.bits_mut().frames_mut().take().len();
    assert!(route_frames > 0);
    // Unrouting touches the same columns again.
    r.unroute(&src).unwrap();
    let unroute_frames = r.bits_mut().frames_mut().take().len();
    assert!(unroute_frames > 0 && unroute_frames <= route_frames);
    // Both are tiny against the full device.
    let total = jbits::frame::total_frames(dev.dims());
    assert!(route_frames * 10 < total);
}
