use jroute::pathfinder::NetSpec;
use jroute::Pin;
use jroute_svc::{ExecMode, RequestKind, RoutingService, ServiceConfig};
use virtex::{wire, Device, Family};

#[test]
fn duplicate_victims_in_one_replace() {
    let dev = Device::new(Family::Xcv50);
    let cfg = ServiceConfig {
        threads: 1,
        mode: ExecMode::Deterministic { seed: 1 },
        audit: true,
        ..Default::default()
    };
    let mut svc = RoutingService::new(&dev, cfg);
    let spec = NetSpec::new(
        Pin::new(2, 2, wire::S0_YQ),
        vec![Pin::new(4, 6, wire::S0_F3)],
    );
    let a = svc.submit(RequestKind::Route(spec.clone())).unwrap();
    svc.run_batch();
    let r = svc
        .submit(RequestKind::Replace {
            remove: vec![a, a],
            add: vec![],
        })
        .unwrap();
    let report = svc.run_batch();
    println!("outcome: {:?}", report.outcome(r));
}
