//! Observability integration tests: §3.5 trace edge cases with the
//! recorder attached, and the shape of the exported `OBS_*.json`.
//!
//! The trace tools work purely from the configuration bitstream
//! (readback), so these tests exercise them against state the router's
//! net database never saw — raw JBits writes, blank devices, and a
//! hand-configured PIP cycle — while asserting the spans they emit.

use jroute::obs::json::{self, Value};
use jroute::obs::Recorder;
use jroute::{EndPoint, Pin, Router};
use virtex::{wire, Device, Dir, Family, RowCol, Segment};

fn observed_router(device: &Device) -> Router {
    let mut r = Router::new(device);
    r.set_recorder(Recorder::enabled());
    r
}

/// The recorded note of the most recent span named `name`.
fn span_note(r: &Router, name: &str) -> Option<u64> {
    r.obs_report()
        .spans
        .iter()
        .rev()
        .find(|s| s.name == name)
        .map(|s| s.note)
}

#[test]
fn trace_reads_nets_configured_by_raw_bitstream_writes() {
    let device = Device::new(Family::Xcv50);
    let mut r = observed_router(&device);

    // Configure the paper's §3.1 worked example purely at the JBits
    // level: the router's NetDb knows nothing about this net.
    let bits = r.bits_mut();
    bits.set_pip(RowCol::new(5, 7), wire::S1_YQ, wire::out(1))
        .unwrap();
    bits.set_pip(RowCol::new(5, 7), wire::out(1), wire::single(Dir::East, 5))
        .unwrap();
    bits.set_pip(
        RowCol::new(5, 8),
        wire::single_end(Dir::East, 5),
        wire::single(Dir::North, 0),
    )
    .unwrap();
    bits.set_pip(
        RowCol::new(6, 8),
        wire::single_end(Dir::North, 0),
        wire::S0_F3,
    )
    .unwrap();
    assert_eq!(
        r.nets().iter().count(),
        0,
        "nothing was routed through the API"
    );

    let src: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
    let net = r.trace(&src).unwrap();
    assert_eq!(net.sinks, vec![Pin::new(6, 8, wire::S0_F3)]);
    assert_eq!(net.segments.len(), 5);

    // The span records the visited-segment count, and the raw writes
    // were themselves observed through the jbits hook.
    assert_eq!(span_note(&r, "router.trace"), Some(5));
    assert_eq!(r.obs_report().counter("jbits.pips_set"), Some(4));

    // reverse_trace from the sink agrees, and its span counts hops.
    let sink: EndPoint = Pin::new(6, 8, wire::S0_F3).into();
    let (hops, found) = r.reverse_trace(&sink).unwrap();
    assert_eq!(hops.len(), 4);
    assert_eq!(
        found,
        device.canonicalize(RowCol::new(5, 7), wire::S1_YQ).unwrap()
    );
    assert_eq!(span_note(&r, "router.reverse_trace"), Some(4));
}

#[test]
fn trace_of_unrouted_source_is_just_the_source() {
    let device = Device::new(Family::Xcv50);
    let r = {
        let mut r = Router::new(&device);
        r.set_recorder(Recorder::enabled());
        r
    };
    let src: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
    let net = r.trace(&src).unwrap();
    assert_eq!(net.segments.len(), 1);
    assert!(net.pips.is_empty());
    assert!(net.sinks.is_empty());
    assert_eq!(span_note(&r, "router.trace"), Some(1));
}

/// Hand-configure a PIP loop by walking the architecture graph from
/// `start` until a candidate PIP leads back to a segment already on the
/// path, then turning every PIP along that loop on. Returns the segments
/// on the configured path.
fn configure_cycle(r: &mut Router, start: Segment) -> Vec<Segment> {
    let device = *r.device();
    let arch = device.arch();
    let mut path = vec![start];
    let mut cur = start;
    let mut fanout = Vec::new();
    let mut taps = Vec::new();
    for _ in 0..64 {
        taps.clear();
        virtex::segment::taps(device.dims(), cur, &mut taps);
        // Prefer a back edge (closing the cycle); otherwise extend.
        let mut step = None;
        'tap: for tap in &taps {
            fanout.clear();
            arch.pips_from(tap.rc, tap.wire, &mut fanout);
            for &to in &fanout {
                let Some(next) = device.canonicalize(tap.rc, to) else {
                    continue;
                };
                if path.contains(&next) {
                    step = Some((tap.rc, tap.wire, to, next, true));
                    break 'tap;
                }
                if step.is_none() && !to.is_clb_input() {
                    step = Some((tap.rc, tap.wire, to, next, false));
                }
            }
        }
        let (rc, from, to, next, closes) = step.expect("walk dead-ended before closing a cycle");
        r.bits_mut().set_pip(rc, from, to).unwrap();
        if closes {
            return path;
        }
        path.push(next);
        cur = next;
    }
    panic!("no cycle found within 64 steps of {start}");
}

#[test]
fn forward_trace_terminates_on_hand_set_pip_cycles() {
    let device = Device::new(Family::Xcv50);
    let mut r = observed_router(&device);
    let start = device
        .canonicalize(RowCol::new(10, 10), wire::out(2))
        .unwrap();
    let path = configure_cycle(&mut r, start);
    assert!(path.len() >= 2, "a cycle needs at least two segments");

    // The BFS must terminate (its seen-set breaks the loop) and visit
    // every segment on the cycle exactly once.
    let src: EndPoint = Pin::new(start.rc.row, start.rc.col, start.wire).into();
    let net = r.trace(&src).unwrap();
    assert_eq!(net.segments.len(), path.len());
    assert_eq!(span_note(&r, "router.trace"), Some(path.len() as u64));
}

#[test]
fn obs_report_json_export_has_the_documented_shape() {
    let device = Device::new(Family::Xcv50);
    let mut r = observed_router(&device);
    let src: EndPoint = Pin::new(8, 8, wire::S0_YQ).into();
    let sinks: Vec<EndPoint> = vec![
        Pin::new(8, 12, wire::S0_F3).into(),
        Pin::new(11, 9, wire::S1_F1).into(),
    ];
    r.route_fanout(&src, &sinks).unwrap();

    let dir = std::env::temp_dir().join("jroute-obs-shape-test");
    let path = json::export_to(&r.obs_report(), "shape_test", &dir).unwrap();
    let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).expect("valid JSON");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(doc.get("run").and_then(Value::as_str), Some("shape_test"));
    assert_eq!(doc.get("enabled"), Some(&Value::Bool(true)));
    let counters = doc.get("counters").expect("counters object");
    assert!(
        counters
            .get("router.pips_set")
            .and_then(Value::as_f64)
            .unwrap()
            >= 1.0
    );
    assert!(
        counters.get("jbits.pips_set").is_some(),
        "bitstream tap publishes"
    );
    assert!(
        counters.get("resources.total").is_some(),
        "census gauges publish"
    );
    let hists = doc.get("histograms").expect("histograms object");
    let expanded = hists.get("maze.nodes_expanded").expect("maze histogram");
    assert!(expanded.get("count").and_then(Value::as_f64).unwrap() >= 1.0);
    let spans = doc.get("spans").expect("spans object");
    assert!(spans.get("router.route_fanout").is_some());
    assert!(spans.get("maze.search").is_some());
    assert!(doc.get("events").and_then(Value::as_arr).is_some());
}

/// Shape-check an `OBS_*.json` file produced by a real example run.
/// `scripts/verify.sh` runs the quickstart example with `JROUTE_OBS=1`
/// and then points this test at the export via `OBS_SHAPE_CHECK`; without
/// the variable the test passes vacuously (the in-process export shape
/// is covered above).
#[test]
fn exported_quickstart_json_is_valid_when_pointed_at() {
    let Ok(path) = std::env::var("OBS_SHAPE_CHECK") else {
        return;
    };
    let body =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("OBS_SHAPE_CHECK={path}: {e}"));
    let doc = json::parse(&body).expect("exported file must be valid JSON");
    assert_eq!(doc.get("enabled"), Some(&Value::Bool(true)));
    assert!(doc.get("run").and_then(Value::as_str).is_some());
    let spans = doc
        .get("spans")
        .and_then(Value::as_obj)
        .expect("spans object");
    assert!(
        !spans.is_empty(),
        "a routed example must have recorded spans"
    );
    assert!(doc.get("counters").and_then(Value::as_obj).is_some());
}

#[test]
fn rotating_sink_has_no_torn_lines_under_concurrent_writers() {
    use jroute::obs::RotatingFileSink;
    let dir =
        std::env::temp_dir().join(format!("jroute-obs-concurrent-sink-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rec = Recorder::enabled();
    // Small byte cap: the flushed chunks must rotate across several
    // files while four threads are spanning and flushing concurrently.
    // The retention window is sized so no file is evicted — the test
    // accounts for every span at the end.
    rec.set_span_sink(RotatingFileSink::new(&dir, "spans", 16 * 1024, 4096).unwrap());
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let rec = rec.clone();
            scope.spawn(move || {
                for i in 0..2000u64 {
                    let mut s = rec.span("concurrent.tick");
                    s.note(i);
                    drop(s);
                    if i % 100 == 0 {
                        rec.flush_spans();
                    }
                }
            });
        }
    });
    assert!(rec.flush_spans());
    let files = RotatingFileSink::files_written(&dir, "spans", usize::MAX);
    assert!(files.len() > 1, "the byte cap must have forced rotation");
    let mut spans = 0usize;
    for f in &files {
        let body = std::fs::read_to_string(f).unwrap();
        assert!(body.ends_with('\n'), "file ends on a complete line");
        for line in body.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "torn JSONL line in {}: {line:.60}",
                f.display()
            );
            let v = json::parse(line).expect("every chunk line parses");
            spans += v.get("spans").and_then(Value::as_arr).unwrap().len();
            assert!(
                v.get("epoch_unix_nanos").and_then(Value::as_f64).unwrap() > 0.0,
                "chunk header carries the wall-clock epoch"
            );
        }
    }
    let rep = rec.report();
    assert_eq!(
        spans as u64 + rep.spans.len() as u64,
        8000,
        "flushed + retained spans account for every span recorded"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Drive a real threaded service batch and assert both halves of the
/// tentpole: the Chrome export is shape-valid, and every routing span is
/// causally linked to the `svc.request` root that triggered it — across
/// work-stealing thread hand-offs.
#[test]
fn chrome_export_of_a_threaded_batch_links_every_routing_span() {
    use jroute::obs::chrome_trace_json;
    use jroute::pathfinder::NetSpec;
    use jroute_svc::{ExecMode, RequestKind, RoutingService, ServiceConfig};

    let device = Device::new(Family::Xcv50);
    let rec = Recorder::enabled();
    let cfg = ServiceConfig {
        threads: 4,
        mode: ExecMode::Threaded,
        audit: true,
        ..Default::default()
    };
    let mut svc = RoutingService::with_recorder(&device, cfg, rec.clone());
    for i in 0..12usize {
        let r = (2 + (i * 3) % 12) as u16;
        let c = (2 + (i * 5) % 16) as u16;
        svc.submit(RequestKind::Route(NetSpec::new(
            Pin::new(r, c, wire::S0_YQ),
            vec![Pin::new(r + 2, c + 4, wire::S0_F3)],
        )))
        .unwrap();
    }
    let batch = svc.run_batch();
    assert!(batch.outcomes.iter().all(|(_, o)| o.is_success()));

    let rep = rec.report();
    let roots: std::collections::HashSet<u64> = rep
        .spans
        .iter()
        .filter(|s| s.name == "svc.request")
        .map(|s| s.trace)
        .collect();
    assert_eq!(roots.len(), 12, "one distinct trace per submission");
    let mut routing_spans = 0usize;
    for s in rep
        .spans
        .iter()
        .filter(|s| matches!(s.name, "svc.exec" | "parallel.net" | "maze.search"))
    {
        assert!(
            roots.contains(&s.trace),
            "{} span not linked to a request root",
            s.name
        );
        assert_ne!(s.span_id, 0, "every span gets a nonzero id");
        routing_spans += 1;
    }
    assert!(routing_spans >= 12, "each request routed at least once");

    // Export shape: valid JSON, required trace_event fields, resolvable
    // parents, and flow arrows only for cross-thread links.
    let doc = json::parse(&chrome_trace_json(&rep)).expect("chrome trace parses");
    assert!(
        doc.get("otherData")
            .and_then(|o| o.get("epoch_unix_nanos"))
            .and_then(Value::as_f64)
            .unwrap()
            > 0.0
    );
    let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
    let ids: std::collections::HashSet<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .map(|e| {
            e.get("args")
                .unwrap()
                .get("span_id")
                .unwrap()
                .as_f64()
                .unwrap() as u64
        })
        .collect();
    let mut flows = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("phase");
        assert!(e.get("pid").is_some());
        match ph {
            "X" => {
                assert!(e.get("ts").is_some() && e.get("dur").is_some());
                assert!(e.get("tid").is_some());
                let parent = e
                    .get("args")
                    .unwrap()
                    .get("parent")
                    .unwrap()
                    .as_f64()
                    .unwrap() as u64;
                assert!(
                    parent == 0 || ids.contains(&parent),
                    "dangling parent {parent}"
                );
            }
            "s" | "f" => flows += 1,
            _ => {}
        }
    }
    assert!(
        flows >= 2,
        "threaded execution must produce cross-thread flow arrows"
    );
}

/// Shape-check a Chrome trace file produced by a real example run.
/// `scripts/verify.sh` runs the flight-recorder example and points this
/// test at the export via `CHROME_SHAPE_CHECK`; without the variable the
/// test passes vacuously (the in-process shape is covered above).
#[test]
fn exported_chrome_trace_is_valid_when_pointed_at() {
    let Ok(path) = std::env::var("CHROME_SHAPE_CHECK") else {
        return;
    };
    let body =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("CHROME_SHAPE_CHECK={path}: {e}"));
    let doc = json::parse(&body).expect("exported Chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "a replayed trace must have events");
    for e in events {
        assert!(e.get("ph").is_some() && e.get("pid").is_some());
    }
    assert!(
        doc.get("otherData")
            .and_then(|o| o.get("epoch_unix_nanos"))
            .is_some(),
        "wall-clock anchor present"
    );
}

#[test]
fn disabled_recorder_reports_nothing() {
    let device = Device::new(Family::Xcv50);
    let mut r = Router::new(&device);
    r.set_recorder(Recorder::disabled());
    let src: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
    let sink: EndPoint = Pin::new(6, 8, wire::S0_F3).into();
    r.route(&src, &sink).unwrap();
    let rep = r.obs_report();
    assert!(!rep.enabled);
    assert!(rep.spans.is_empty());
    assert_eq!(rep.counter("router.pips_set"), None);
    assert!(
        !r.bits().has_observer(),
        "disabled recorder detaches the jbits tap"
    );
}
