//! Run-time reconfiguration scenario tests (paper §3.3): replace,
//! relocate, and reconnect under adverse conditions.

use jbits::snapshot;
use jroute::{EndPoint, Pin, PortDir, Router};
use jroute_cores::{
    detach, relocate, replace_with, ConstAdder, ConstMultiplier, RtpCore, StimulusBank,
};
use virtex::{wire, Device, Family, RowCol};
use vsim::{LogicSource, Simulator};

fn dev() -> Device {
    Device::new(Family::Xcv300)
}

fn product(router: &Router, stim: &StimulusBank, mul: &ConstMultiplier, a: u64) -> u64 {
    let mut sim = Simulator::new(router.bits());
    for bit in 0..stim.width() {
        let pin = stim.driver_pin(bit);
        sim.force(
            LogicSource::Yq {
                rc: pin.rc,
                slice: 1,
            },
            (a >> bit) & 1 == 1,
        );
    }
    (0..mul.out_width()).fold(0u64, |acc, j| {
        acc | (sim
            .read(LogicSource::X {
                rc: mul.product_site(j),
                slice: 0,
            })
            .unwrap() as u64)
            << j
    })
}

#[test]
fn repeated_replacement_cycles_are_stable() {
    let dev = dev();
    let mut r = Router::new(&dev);
    let mut stim = StimulusBank::new(4, RowCol::new(4, 4));
    let mut mul = ConstMultiplier::new(1, 8, RowCol::new(4, 12));
    stim.implement(&mut r).unwrap();
    mul.implement(&mut r).unwrap();
    let s: Vec<EndPoint> = stim.out_ports().iter().map(|&p| p.into()).collect();
    let a: Vec<EndPoint> = mul.a_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&s, &a).unwrap();

    // Ten replacement cycles; configuration must not leak resources.
    let mut pip_counts = Vec::new();
    for k in [2u8, 5, 9, 13, 7, 3, 15, 1, 6, 11] {
        replace_with(&mut mul, &mut r, |m| m.set_constant(k)).unwrap();
        assert!(
            r.remembered().is_empty(),
            "K={k} left remembered connections"
        );
        pip_counts.push(r.bits().on_pip_count());
        assert_eq!(product(&r, &stim, &mul, 13), 13 * k as u64, "K={k}");
    }
    // Resource usage converges (no monotone growth).
    let first = pip_counts[0];
    assert!(
        pip_counts.iter().all(|&c| c.abs_diff(first) <= first / 2),
        "pip counts diverge across cycles: {pip_counts:?}"
    );
}

#[test]
fn relocation_to_occupied_region_fails_but_leaves_queue_recoverable() {
    let dev = dev();
    let mut r = Router::new(&dev);
    let mut stim = StimulusBank::new(2, RowCol::new(4, 4));
    let mut adder = ConstAdder::new(2, 1, RowCol::new(4, 10));
    stim.implement(&mut r).unwrap();
    adder.implement(&mut r).unwrap();
    let s: Vec<EndPoint> = stim.out_ports().iter().map(|&p| p.into()).collect();
    let a: Vec<EndPoint> = adder.a_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&s, &a).unwrap();

    // Occupy the target region's sink pins with a blocker net so the
    // re-implementation cannot route its carry chain there.
    let blocker_src: EndPoint = Pin::new(20, 19, wire::S1_YQ).into();
    let mut blocked_sinks: Vec<EndPoint> = Vec::new();
    for row in 20..22u16 {
        for pin in [
            wire::slice_in(0, wire::slice_in_pin::F1),
            wire::slice_in(0, wire::slice_in_pin::G1),
        ] {
            blocked_sinks.push(Pin::at(RowCol::new(row, 20), pin).into());
        }
    }
    r.route_fanout(&blocker_src, &blocked_sinks).unwrap();

    // Move the adder exactly onto the blocked pins: the move itself
    // succeeds, but the input connections cannot be re-made — they stay
    // in the remembered queue (§3.3's "removed, but remembered").
    relocate(&mut adder, &mut r, RowCol::new(20, 20)).unwrap();
    assert!(
        !r.remembered().is_empty(),
        "unreconnectable port connections must stay remembered"
    );

    // Recovery: move somewhere free instead, then reconnect.
    relocate(&mut adder, &mut r, RowCol::new(26, 30)).unwrap();
    r.reconnect_ports().unwrap();
    assert!(r.remembered().is_empty());
    let traced = r.trace(&s[0]).unwrap();
    assert_eq!(
        traced.sinks.len(),
        2,
        "bit 0 reconnected to F1+G1 after recovery"
    );
}

#[test]
fn detach_remembers_both_directions() {
    let dev = dev();
    let mut r = Router::new(&dev);
    let mut stim = StimulusBank::new(2, RowCol::new(4, 4));
    let mut mul = ConstMultiplier::new(3, 4, RowCol::new(4, 12));
    let mut adder = ConstAdder::new(4, 1, RowCol::new(4, 20));
    stim.implement(&mut r).unwrap();
    mul.implement(&mut r).unwrap();
    adder.implement(&mut r).unwrap();
    // stim -> mul (2 of 4 input bits), mul -> adder.
    r.route(&stim.out_ports()[0].into(), &mul.a_ports()[0].into())
        .unwrap();
    r.route(&stim.out_ports()[1].into(), &mul.a_ports()[1].into())
        .unwrap();
    let p: Vec<EndPoint> = mul.p_ports().iter().map(|&x| x.into()).collect();
    let a: Vec<EndPoint> = adder.a_ports().iter().map(|&x| x.into()).collect();
    r.route_bus(&p, &a).unwrap();

    // Detaching the multiplier must remember the upstream (stim->mul)
    // and downstream (mul->adder) connections.
    detach(&mul, &mut r).unwrap();
    assert!(
        r.remembered().len() >= 6,
        "expected >= 6 remembered connections (2 in + 4 out), got {}",
        r.remembered().len()
    );
    // Re-implementation restores everything.
    mul.implement(&mut r).unwrap();
    r.reconnect_ports().unwrap();
    assert!(r.remembered().is_empty());
}

#[test]
fn unroute_then_reroute_is_snapshot_stable_for_cores() {
    // remove+implement at the same location reproduces an equivalent
    // configuration (same pip count, same functional behaviour).
    let dev = dev();
    let mut r = Router::new(&dev);
    let mut stim = StimulusBank::new(4, RowCol::new(4, 4));
    let mut mul = ConstMultiplier::new(7, 8, RowCol::new(4, 12));
    stim.implement(&mut r).unwrap();
    mul.implement(&mut r).unwrap();
    let s: Vec<EndPoint> = stim.out_ports().iter().map(|&p| p.into()).collect();
    let a: Vec<EndPoint> = mul.a_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&s, &a).unwrap();
    let before = snapshot(r.bits());
    let pips_before = r.bits().on_pip_count();

    replace_with(&mut mul, &mut r, |_| {}).unwrap(); // same constant

    // Functionally identical; structurally equivalent in size (the
    // router may pick different wires).
    assert_eq!(product(&r, &stim, &mul, 9), 63);
    let after = snapshot(r.bits());
    let pips_after = r.bits().on_pip_count();
    assert_eq!(
        pips_before, pips_after,
        "replacement must not leak or drop pips"
    );
    // LUT contents identical even if routing differs.
    for bit in 0..8 {
        let rc = mul.product_site(bit);
        assert_eq!(r.bits().get_lut(rc, 0, 0).unwrap(), {
            let _ = &before;
            let _ = &after;
            r.bits().get_lut(rc, 0, 0).unwrap()
        });
    }
}

#[test]
fn hierarchical_port_reconnection_after_inner_rebind() {
    // Outer port -> inner port -> pins; rebinding the *inner* port after
    // an unroute reconnects a connection addressed via the outer port.
    let dev = dev();
    let mut r = Router::new(&dev);
    let mut stim = StimulusBank::new(1, RowCol::new(4, 4));
    stim.implement(&mut r).unwrap();
    let inner = r.define_port(
        "inner_d",
        "inner",
        PortDir::Input,
        vec![Pin::new(8, 12, wire::S0_F3).into()],
    );
    let outer = r.define_port("outer_d", "outer", PortDir::Input, vec![inner.into()]);
    r.route(&stim.out_ports()[0].into(), &outer.into()).unwrap();
    assert_eq!(r.trace(&stim.out_ports()[0].into()).unwrap().sinks.len(), 1);

    r.unroute(&stim.out_ports()[0].into()).unwrap();
    assert_eq!(r.remembered().len(), 1);
    // Move the inner binding; rebind triggers reconnection through the
    // outer port's intent.
    let reconnected = r.rebind_port(inner, vec![Pin::new(10, 14, wire::S1_F1).into()]);
    // The remembered intent names the *outer* port, so rebinding the
    // inner port alone doesn't match the filter — reconnect_ports picks
    // it up.
    let _ = reconnected;
    r.reconnect_ports().unwrap();
    assert!(r.remembered().is_empty());
    let net = r.trace(&stim.out_ports()[0].into()).unwrap();
    assert_eq!(net.sinks, vec![Pin::new(10, 14, wire::S1_F1)]);
}
