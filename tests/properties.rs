//! Property-based tests over the whole stack: invariants that must hold
//! for *any* routing request, not just the handworked examples.

use jroute::{EndPoint, Pin, Router, RouterOptions};
use jroute_workloads::{fanout_spec, random_pairs};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use virtex::{wire, Device, Family, RowCol, Wire};

fn dev() -> Device {
    Device::new(Family::Xcv50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// canonicalize is idempotent and stable: the canonical segment of any
    /// existing local name canonicalizes to itself.
    #[test]
    fn canonicalize_is_idempotent(r in 0u16..16, c in 0u16..24, w in 0u16..430) {
        let dev = dev();
        let rc = RowCol::new(r, c);
        if let Some(seg) = dev.canonicalize(rc, Wire(w)) {
            prop_assert_eq!(dev.canonicalize(seg.rc, seg.wire), Some(seg));
            // And the segment surfaces at the queried tap.
            let mut taps = Vec::new();
            virtex::segment::taps(dev.dims(), seg, &mut taps);
            prop_assert!(taps.iter().any(|t| t.rc == rc && t.wire == Wire(w)));
        }
    }

    /// Every PIP the architecture advertises connects two wires that
    /// exist at the tile (no dangling connectivity).
    #[test]
    fn pips_connect_existing_wires(r in 0u16..16, c in 0u16..24, w in 0u16..430) {
        let dev = dev();
        let rc = RowCol::new(r, c);
        let mut fan = Vec::new();
        dev.arch().pips_from(rc, Wire(w), &mut fan);
        for to in fan {
            prop_assert!(dev.wire_exists(rc, to), "{} -> {} at {rc}", Wire(w).name(), to.name());
        }
    }

    /// Auto-route then trace: the traced net reaches exactly the sink,
    /// and reverse-trace returns to the source.
    #[test]
    fn route_trace_round_trip(seed in 0u64..1000) {
        let dev = dev();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pairs = random_pairs(&dev, 1, &mut rng);
        let (src, sink) = pairs[0];
        let mut router = Router::new(&dev);
        router.route(&src.into(), &sink.into()).unwrap();
        let net = router.trace(&src.into()).unwrap();
        prop_assert_eq!(&net.sinks, &vec![sink]);
        let (hops, found) = router.reverse_trace(&sink.into()).unwrap();
        prop_assert!(!hops.is_empty());
        prop_assert_eq!(found, dev.canonicalize(src.rc, src.wire).unwrap());
    }

    /// Route then unroute returns the configuration to its prior state,
    /// bit for bit.
    #[test]
    fn route_unroute_restores_state(seed in 0u64..1000) {
        let dev = dev();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pairs = random_pairs(&dev, 3, &mut rng);
        let mut router = Router::new(&dev);
        // Pre-route one net to make the baseline non-trivial.
        router.route(&pairs[0].0.into(), &pairs[0].1.into()).unwrap();
        let baseline = jbits::snapshot(router.bits());
        if router.route(&pairs[1].0.into(), &pairs[1].1.into()).is_ok() {
            router.unroute(&pairs[1].0.into()).unwrap();
            prop_assert_eq!(jbits::snapshot(router.bits()), baseline);
        }
    }

    /// No routing sequence creates contention: after routing several
    /// random nets, every segment has at most one driver.
    #[test]
    fn auto_router_never_creates_contention(seed in 0u64..1000) {
        let dev = dev();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pairs = random_pairs(&dev, 6, &mut rng);
        let mut router = Router::new(&dev);
        for (s, k) in &pairs {
            let _ = router.route(&(*s).into(), &(*k).into());
        }
        for rc in dev.dims().iter_tiles() {
            for pip in router.bits().pips_at(rc) {
                if let Some(seg) = dev.canonicalize(rc, pip.to) {
                    prop_assert!(
                        router.bits().segment_drivers(seg).len() <= 1,
                        "contention on {}", seg
                    );
                }
            }
        }
    }

    /// Reverse-unrouting one sink of a fan-out net never disturbs the
    /// remaining branches.
    #[test]
    fn reverse_unroute_preserves_other_branches(seed in 0u64..1000, victim in 0usize..4) {
        let dev = dev();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spec = fanout_spec(&dev, RowCol::new(8, 12), 4, 4, &mut rng);
        let mut router = Router::new(&dev);
        let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
        router.route_fanout(&spec.source.into(), &sinks).unwrap();
        router.reverse_unroute(&sinks[victim]).unwrap();
        let net = router.trace(&spec.source.into()).unwrap();
        let mut survivors: Vec<Pin> = spec.sinks.clone();
        survivors.remove(victim);
        let mut got = net.sinks.clone();
        got.sort();
        survivors.sort();
        prop_assert_eq!(got, survivors);
    }

    /// The template router only ever uses wires matching the template
    /// classes it was given.
    #[test]
    fn template_router_respects_classes(dr in 0u16..3, dc in 0u16..3) {
        prop_assume!(dr + dc > 0);
        let dev = dev();
        let mut router = Router::new(&dev);
        let mut values = Vec::new();
        values.push(virtex::TemplateValue::OutMux);
        for _ in 0..dr { values.push(virtex::TemplateValue::North1); }
        for _ in 0..dc { values.push(virtex::TemplateValue::East1); }
        values.push(virtex::TemplateValue::ClbIn);
        let t = jroute::Template::new(values.clone());
        let start = Pin::new(4, 4, wire::S0_YQ);
        if router.route_template(start, wire::S0_F3, &t).is_ok() {
            let net = router.trace(&start.into()).unwrap();
            prop_assert_eq!(net.pips.len(), values.len());
            // Each configured wire classifies under the template step.
            for ((_, pip), want) in net.pips.iter().zip(values.iter()) {
                prop_assert_eq!(virtex::template_value(pip.to), *want);
            }
        }
    }

    /// Long lines appear in routes only when the option is enabled.
    #[test]
    fn long_lines_obey_the_option(use_longs in proptest::bool::ANY, seed in 0u64..200) {
        let dev = Device::new(Family::Xcv300);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spec = fanout_spec(&dev, RowCol::new(16, 24), 2, 12, &mut rng);
        let mut router = Router::with_options(
            &dev,
            RouterOptions { use_long_lines: use_longs, ..Default::default() },
        );
        let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
        router.route_fanout(&spec.source.into(), &sinks).unwrap();
        if !use_longs {
            prop_assert_eq!(router.resource_usage().longs, 0);
        }
    }
}
