//! Property-based tests over the whole stack: invariants that must hold
//! for *any* routing request, not just the handworked examples.
//!
//! Each property runs under the in-repo `harness` driver: a configurable
//! number of seeded cases (`HARNESS_CASES`, default 24), with the failing
//! case's seed printed on panic so it can be replayed with
//! `HARNESS_SEED=<seed> HARNESS_CASES=1`.

use detrand::DetRng;
use jroute::{EndPoint, Pin, Router, RouterOptions};
use jroute_workloads::{fanout_spec, random_pairs};
use virtex::{wire, Device, Family, RowCol, Wire};

fn dev() -> Device {
    Device::new(Family::Xcv50)
}

/// canonicalize is idempotent and stable: the canonical segment of any
/// existing local name canonicalizes to itself.
#[test]
fn canonicalize_is_idempotent() {
    harness::check("canonicalize_is_idempotent", |rng| {
        let dev = dev();
        let rc = RowCol::new(rng.gen_range(0u16..16), rng.gen_range(0u16..24));
        let w = Wire(rng.gen_range(0u16..430));
        if let Some(seg) = dev.canonicalize(rc, w) {
            assert_eq!(dev.canonicalize(seg.rc, seg.wire), Some(seg));
            // And the segment surfaces at the queried tap.
            let mut taps = Vec::new();
            virtex::segment::taps(dev.dims(), seg, &mut taps);
            assert!(taps.iter().any(|t| t.rc == rc && t.wire == w));
        }
    });
}

/// Every PIP the architecture advertises connects two wires that
/// exist at the tile (no dangling connectivity).
#[test]
fn pips_connect_existing_wires() {
    harness::check("pips_connect_existing_wires", |rng| {
        let dev = dev();
        let rc = RowCol::new(rng.gen_range(0u16..16), rng.gen_range(0u16..24));
        let w = Wire(rng.gen_range(0u16..430));
        let mut fan = Vec::new();
        dev.arch().pips_from(rc, w, &mut fan);
        for to in fan {
            assert!(
                dev.wire_exists(rc, to),
                "{} -> {} at {rc}",
                w.name(),
                to.name()
            );
        }
    });
}

/// Auto-route then trace: the traced net reaches exactly the sink,
/// and reverse-trace returns to the source.
#[test]
fn route_trace_round_trip() {
    harness::check("route_trace_round_trip", |rng| {
        let dev = dev();
        let mut pair_rng = DetRng::seed_from_u64(rng.gen_range(0u64..1000));
        let pairs = random_pairs(&dev, 1, &mut pair_rng);
        let (src, sink) = pairs[0];
        let mut router = Router::new(&dev);
        router.route(&src.into(), &sink.into()).unwrap();
        let net = router.trace(&src.into()).unwrap();
        assert_eq!(&net.sinks, &vec![sink]);
        let (hops, found) = router.reverse_trace(&sink.into()).unwrap();
        assert!(!hops.is_empty());
        assert_eq!(found, dev.canonicalize(src.rc, src.wire).unwrap());
    });
}

/// Route then unroute returns the configuration to its prior state,
/// bit for bit.
#[test]
fn route_unroute_restores_state() {
    harness::check("route_unroute_restores_state", |rng| {
        let dev = dev();
        let mut pair_rng = DetRng::seed_from_u64(rng.gen_range(0u64..1000));
        let pairs = random_pairs(&dev, 3, &mut pair_rng);
        let mut router = Router::new(&dev);
        // Pre-route one net to make the baseline non-trivial.
        router
            .route(&pairs[0].0.into(), &pairs[0].1.into())
            .unwrap();
        let baseline = jbits::snapshot(router.bits());
        if router.route(&pairs[1].0.into(), &pairs[1].1.into()).is_ok() {
            router.unroute(&pairs[1].0.into()).unwrap();
            assert_eq!(jbits::snapshot(router.bits()), baseline);
        }
    });
}

/// No routing sequence creates contention: after routing several
/// random nets, every segment has at most one driver.
#[test]
fn auto_router_never_creates_contention() {
    harness::check("auto_router_never_creates_contention", |rng| {
        let dev = dev();
        let mut pair_rng = DetRng::seed_from_u64(rng.gen_range(0u64..1000));
        let pairs = random_pairs(&dev, 6, &mut pair_rng);
        let mut router = Router::new(&dev);
        for (s, k) in &pairs {
            let _ = router.route(&(*s).into(), &(*k).into());
        }
        for rc in dev.dims().iter_tiles() {
            for pip in router.bits().pips_at(rc) {
                if let Some(seg) = dev.canonicalize(rc, pip.to) {
                    assert!(
                        router.bits().segment_drivers(seg).len() <= 1,
                        "contention on {seg}"
                    );
                }
            }
        }
    });
}

/// Reverse-unrouting one sink of a fan-out net never disturbs the
/// remaining branches.
#[test]
fn reverse_unroute_preserves_other_branches() {
    harness::check("reverse_unroute_preserves_other_branches", |rng| {
        let dev = dev();
        let victim = rng.gen_range(0usize..4);
        let mut spec_rng = DetRng::seed_from_u64(rng.gen_range(0u64..1000));
        let spec = fanout_spec(&dev, RowCol::new(8, 12), 4, 4, &mut spec_rng);
        let mut router = Router::new(&dev);
        let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
        router.route_fanout(&spec.source.into(), &sinks).unwrap();
        router.reverse_unroute(&sinks[victim]).unwrap();
        let net = router.trace(&spec.source.into()).unwrap();
        let mut survivors: Vec<Pin> = spec.sinks.clone();
        survivors.remove(victim);
        let mut got = net.sinks.clone();
        got.sort();
        survivors.sort();
        assert_eq!(got, survivors);
    });
}

/// The template router only ever uses wires matching the template
/// classes it was given.
#[test]
fn template_router_respects_classes() {
    harness::check("template_router_respects_classes", |rng| {
        // dr + dc must be positive; redraw dc when both come up zero so
        // every case still tests something (the old prop_assume!).
        let dr = rng.gen_range(0u16..3);
        let dc = if dr == 0 {
            rng.gen_range(1u16..3)
        } else {
            rng.gen_range(0u16..3)
        };
        let dev = dev();
        let mut router = Router::new(&dev);
        let mut values = Vec::new();
        values.push(virtex::TemplateValue::OutMux);
        for _ in 0..dr {
            values.push(virtex::TemplateValue::North1);
        }
        for _ in 0..dc {
            values.push(virtex::TemplateValue::East1);
        }
        values.push(virtex::TemplateValue::ClbIn);
        let t = jroute::Template::new(values.clone());
        let start = Pin::new(4, 4, wire::S0_YQ);
        if router.route_template(start, wire::S0_F3, &t).is_ok() {
            let net = router.trace(&start.into()).unwrap();
            assert_eq!(net.pips.len(), values.len());
            // Each configured wire classifies under the template step.
            for ((_, pip), want) in net.pips.iter().zip(values.iter()) {
                assert_eq!(virtex::template_value(pip.to), *want);
            }
        }
    });
}

/// The dense `NetDb` occupancy (SegVec over the segment space) behaves
/// exactly like a sparse `HashMap<Segment, NetId>` reference model under
/// random create / add_pip / remove_pip / remove_net sequences: same
/// accept/reject decisions, same owners, same used-segment count.
#[test]
fn netdb_matches_sparse_reference_model() {
    harness::check("netdb_matches_sparse_reference_model", |rng| {
        use std::collections::HashMap;
        use virtex::Segment;

        let dev = dev();
        let mut db = jroute::NetDb::new(dev.seg_space());
        let mut model: HashMap<Segment, jroute::NetId> = HashMap::new();
        // Live nets mirrored outside the db: (id, source, recorded pips).
        type PipRec = (RowCol, jbits::Pip, Segment);
        let mut nets: Vec<(jroute::NetId, Segment, Vec<PipRec>)> = Vec::new();

        for _ in 0..60 {
            match rng.gen_range(0u32..10) {
                0..=2 => {
                    // create — sources drawn from a small pool so rooting
                    // collisions actually happen.
                    let r = rng.gen_range(0u16..4);
                    let c = rng.gen_range(0u16..4);
                    let w = wire::slice_out(rng.gen_range(0usize..2), rng.gen_range(0u8..2));
                    let seg = dev.canonicalize(RowCol::new(r, c), w).expect("local wire");
                    match db.create(Pin::new(r, c, w), seg) {
                        Ok(id) => {
                            assert!(!model.contains_key(&seg), "create accepted a taken source");
                            model.insert(seg, id);
                            nets.push((id, seg, Vec::new()));
                        }
                        Err(_) => {
                            assert!(model.contains_key(&seg), "create rejected a free source")
                        }
                    }
                }
                3..=6 => {
                    // add_pip — a real PIP of the architecture, so the
                    // canonical target is well defined.
                    if nets.is_empty() {
                        continue;
                    }
                    let n = rng.gen_range(0usize..nets.len());
                    let id = nets[n].0;
                    let rc = RowCol::new(rng.gen_range(0u16..16), rng.gen_range(0u16..24));
                    let from = Wire(rng.gen_range(0u16..430));
                    let mut fan = Vec::new();
                    dev.arch().pips_from(rc, from, &mut fan);
                    if fan.is_empty() {
                        continue;
                    }
                    let to = fan[rng.gen_range(0usize..fan.len())];
                    let target = dev
                        .canonicalize(rc, to)
                        .expect("pips connect existing wires");
                    let pip = jbits::Pip::new(from, to);
                    match db.add_pip(id, rc, pip, target) {
                        Ok(()) => {
                            let prev = model.insert(target, id);
                            assert!(
                                prev.is_none() || prev == Some(id),
                                "add_pip stole {target} from {prev:?}"
                            );
                            let pips = &mut nets[n].2;
                            if !pips.iter().any(|&(r, p, _)| r == rc && p == pip) {
                                pips.push((rc, pip, target));
                            }
                        }
                        Err(_) => assert!(
                            model.get(&target).is_some_and(|&o| o != id),
                            "add_pip rejected free/own target {target}"
                        ),
                    }
                }
                7 => {
                    // remove_pip — releases the target unconditionally.
                    let candidates: Vec<usize> =
                        (0..nets.len()).filter(|&i| !nets[i].2.is_empty()).collect();
                    if candidates.is_empty() {
                        continue;
                    }
                    let n = candidates[rng.gen_range(0usize..candidates.len())];
                    let (id, _, ref mut pips) = nets[n];
                    let (rc, pip, target) = pips.remove(rng.gen_range(0usize..pips.len()));
                    assert!(
                        db.remove_pip(id, rc, pip, target),
                        "recorded pip must remove"
                    );
                    model.remove(&target);
                }
                _ => {
                    // remove_net — releases only segments the net owns.
                    if nets.is_empty() {
                        continue;
                    }
                    let (id, source, pips) = nets.swap_remove(rng.gen_range(0usize..nets.len()));
                    assert!(db.remove_net(id).is_some());
                    if model.get(&source) == Some(&id) {
                        model.remove(&source);
                    }
                    for (_, _, target) in pips {
                        if model.get(&target) == Some(&id) {
                            model.remove(&target);
                        }
                    }
                }
            }
            assert_eq!(db.used_segments(), model.len());
        }

        // Full occupancy equivalence at the end of the sequence.
        for (&seg, &id) in &model {
            assert_eq!(db.owner(seg), Some(id), "owner mismatch at {seg}");
            assert!(db.is_used(seg));
        }
        let census: Vec<(Segment, jroute::NetId)> = db.iter_used().collect();
        assert_eq!(census.len(), model.len());
        for (seg, id) in census {
            assert_eq!(model.get(&seg), Some(&id));
        }
        // And a segment the model never touched is free.
        let probe = dev.canonicalize(RowCol::new(14, 20), wire::S0_YQ).unwrap();
        if !model.contains_key(&probe) {
            assert_eq!(db.owner(probe), None);
        }
    });
}

/// Long lines appear in routes only when the option is enabled.
#[test]
fn long_lines_obey_the_option() {
    harness::check("long_lines_obey_the_option", |rng| {
        let use_longs = rng.gen_bool(0.5);
        let dev = Device::new(Family::Xcv300);
        let mut spec_rng = DetRng::seed_from_u64(rng.gen_range(0u64..200));
        let spec = fanout_spec(&dev, RowCol::new(16, 24), 2, 12, &mut spec_rng);
        let mut router = Router::with_options(
            &dev,
            RouterOptions {
                use_long_lines: use_longs,
                ..Default::default()
            },
        );
        let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
        router.route_fanout(&spec.source.into(), &sinks).unwrap();
        if !use_longs {
            assert_eq!(router.resource_usage().longs, 0);
        }
    });
}

/// The work-stealing deque agrees with a plain `VecDeque` reference
/// model over any seeded interleaving of owner pushes/pops and thief
/// steals. Single-threaded model-check: with one actor the deque's
/// semantics are exact — push appends at the bottom, pop takes the
/// bottom (LIFO), steal takes the top (FIFO) — so every operation's
/// result must match the reference queue verbatim.
#[test]
fn steal_deque_matches_reference_queue() {
    use jroute::StealDeque;
    use std::collections::VecDeque;
    harness::check("steal_deque_matches_reference_queue", |rng| {
        let cap = 1usize << rng.gen_range(0u32..7);
        let deque = StealDeque::with_capacity(cap);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for _ in 0..400 {
            match rng.gen_range(0u32..4) {
                0 | 1 => {
                    // Owner push; rejected exactly when the model is full.
                    let ok = deque.push(next).is_ok();
                    assert_eq!(ok, model.len() < cap, "push acceptance diverged");
                    if ok {
                        model.push_back(next);
                    }
                    next += 1;
                }
                2 => assert_eq!(deque.pop(), model.pop_back(), "pop diverged"),
                _ => assert_eq!(deque.steal(), model.pop_front(), "steal diverged"),
            }
            assert_eq!(deque.len(), model.len());
            assert_eq!(deque.is_empty(), model.is_empty());
        }
        // Drain: everything that went in comes out exactly once.
        while let Some(t) = deque.steal() {
            assert_eq!(Some(t), model.pop_front());
        }
        assert!(model.is_empty());
    });
}

/// Scheduler liveness and exactness: under any thread count and task
/// count, the work-stealing scheduler executes every task exactly once
/// and returns one result per task.
#[test]
fn work_stealing_scheduler_runs_every_task_once() {
    use jroute::SchedulerKind;
    use std::sync::atomic::{AtomicU32, Ordering};
    harness::check("work_stealing_scheduler_runs_every_task_once", |rng| {
        let n = rng.gen_range(0usize..200);
        let threads = rng.gen_range(1usize..9);
        let tasks: Vec<u64> = (0..n as u64).collect();
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let run = SchedulerKind::WorkStealing.run(
            threads,
            &tasks,
            |_| (),
            |_, t| {
                hits[t as usize].fetch_add(1, Ordering::Relaxed);
                t * 2
            },
        );
        assert_eq!(run.results.len(), n, "one result per task");
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} execution count");
        }
        let mut seen: Vec<u64> = run.results.iter().map(|&(t, _)| t).collect();
        seen.sort_unstable();
        assert_eq!(seen, tasks, "result set covers every task exactly once");
        for &(t, r) in &run.results {
            assert_eq!(r, t * 2, "result paired with the wrong task");
        }
    });
}

/// The incremental PathFinder schedule (dirty-net rip-up, bounding-box
/// pruning, adaptive `pres_fac`) is an optimization, not a semantic
/// change: against the classic full-ripup reference configuration it
/// must agree on legality and final overuse, never exceed the iteration
/// budget, and — when converged — produce a per-net segment census with
/// the same integrity guarantees (every sink reached, no segment shared
/// between nets).
#[test]
fn incremental_pathfinder_matches_full_ripup_reference() {
    use jroute::pathfinder::{self, PathFinderConfig, PathFinderResult};
    use jroute_workloads::{random_netlist, window_netlist, NetlistParams};
    use std::collections::HashMap;
    use virtex::Segment;

    // Contention-free, sink-complete census: every canonical sink is in
    // its own net's segment set and no segment belongs to two nets.
    fn check_census(dev: &Device, r: &PathFinderResult, tag: &str) {
        let mut owner: HashMap<Segment, usize> = HashMap::new();
        for (i, net) in r.nets.iter().enumerate() {
            for &seg in &net.segments {
                let prev = owner.insert(seg, i);
                assert!(
                    prev.is_none_or(|p| p == i),
                    "{tag}: segment {seg} shared by nets {prev:?} and {i}"
                );
            }
            for sink in &net.spec.sinks {
                let goal = dev.canonicalize(sink.rc, sink.wire).unwrap();
                assert!(
                    net.segments.contains(&goal),
                    "{tag}: net {i} census is missing its sink {goal}"
                );
            }
        }
    }

    harness::check_with(
        "incremental_pathfinder_matches_full_ripup_reference",
        6,
        |rng| {
            let dev = dev();
            let mut net_rng = DetRng::seed_from_u64(rng.next_u64());
            // Scattered short nets plus a contended window, scaled to stay
            // routable on the XCV50 so both schedules genuinely converge.
            let mut specs = random_netlist(
                &dev,
                &NetlistParams {
                    nets: rng.gen_range(3usize..7),
                    max_fanout: 2,
                    max_span: Some(4),
                },
                &mut net_rng,
            );
            let hot = rng.gen_range(4usize..9);
            specs.extend(window_netlist(
                &dev,
                hot,
                3,
                RowCol::new(8, 12),
                &mut net_rng,
            ));

            let incremental = PathFinderConfig::default();
            let full_ripup = PathFinderConfig {
                incremental: false,
                bbox_margin: None,
                adaptive_pres: false,
                ..PathFinderConfig::default()
            };
            let incr = pathfinder::route_all(&dev, &specs, &incremental).unwrap();
            let full = pathfinder::route_all(&dev, &specs, &full_ripup).unwrap();

            assert!(incr.iterations <= incremental.max_iterations);
            assert!(full.iterations <= full_ripup.max_iterations);
            assert_eq!(incr.legal, full.legal, "schedules disagree on legality");
            assert_eq!(
                incr.overused, full.overused,
                "schedules disagree on final overuse"
            );
            if incr.legal {
                assert_eq!(incr.overused, 0);
                assert_eq!(incr.nets.len(), specs.len());
                assert_eq!(full.nets.len(), specs.len());
                check_census(&dev, &incr, "incremental");
                check_census(&dev, &full, "full-ripup");
            }
        },
    );
}

/// Service-level liveness: every submitted request gets exactly one
/// terminal outcome, whatever the seed, priorities and worker count —
/// and a cancelled request never commits.
#[test]
fn service_batches_terminate_with_one_outcome_each() {
    use jroute_svc::{ExecMode, RequestKind, RoutingService, ServiceConfig};
    use jroute_workloads::NetlistParams;
    harness::check_with(
        "service_batches_terminate_with_one_outcome_each",
        8,
        |rng| {
            let dev = Device::new(Family::Xcv50);
            let threads = rng.gen_range(1usize..5);
            let seed = rng.next_u64();
            let mut svc = RoutingService::new(
                &dev,
                ServiceConfig {
                    threads,
                    mode: ExecMode::Deterministic { seed },
                    audit: true,
                    ..Default::default()
                },
            );
            let mut net_rng = DetRng::seed_from_u64(seed ^ 0x5EED);
            let specs = jroute_workloads::random_netlist(
                &dev,
                &NetlistParams {
                    nets: 6,
                    max_fanout: 1,
                    max_span: Some(4),
                },
                &mut net_rng,
            );
            let mut ids = Vec::new();
            for s in &specs {
                let priority = rng.gen_range(0u32..=255) as u8;
                ids.push(
                    svc.submit_with(RequestKind::Route(s.clone()), priority, None)
                        .unwrap()
                        .0,
                );
            }
            let (victim, token) = svc
                .submit_with(RequestKind::Route(specs[0].clone()), 0, None)
                .unwrap();
            token.cancel();
            let report = svc.run_batch();
            assert_eq!(report.outcomes.len(), ids.len() + 1);
            assert_eq!(report.leaked_claims, Some(0));
            for id in &ids {
                assert!(report.outcome(*id).is_some(), "request {id} has no outcome");
            }
            assert_eq!(
                report.outcome(victim),
                Some(&jroute_svc::RequestOutcome::Cancelled)
            );
            assert!(svc.nets_of(victim).is_none());
        },
    );
}

/// The `.jrt` trace encoding is canonical: any recorded request stream
/// decodes back to an equivalent trace whose re-encoding is
/// byte-identical, and the decoded trace still validates (every replace
/// victim references an earlier request).
#[test]
fn trace_encoding_round_trips_byte_identically() {
    use jroute::pathfinder::NetSpec;
    use jroute_svc::{Deadline, Trace, TraceOp};
    use virtex::Codec;
    harness::check_with("trace_encoding_round_trips_byte_identically", 6, |rng| {
        let dev = dev();
        let mut pair_rng = DetRng::seed_from_u64(rng.next_u64());
        let spec = |pair_rng: &mut DetRng| {
            let (src, sink) = random_pairs(&dev, 1, pair_rng)[0];
            NetSpec::new(src, vec![sink])
        };
        let mut trace = Trace::new(dev.family());
        let reqs = rng.gen_range(1u32..40);
        for submitted in 0..reqs {
            let priority = rng.gen_range(0u32..=255) as u8;
            let deadline = if rng.gen_bool(0.3) {
                Some(Deadline::Steps(rng.next_u64()))
            } else {
                None
            };
            let op = match rng.gen_range(0u32..4) {
                0 | 1 => TraceOp::Route(spec(&mut pair_rng)),
                2 if submitted > 0 => TraceOp::Unroute(rng.gen_range(0..submitted)),
                _ => {
                    let victims = if submitted == 0 {
                        vec![]
                    } else {
                        (0..rng.gen_range(0u32..3.min(submitted) + 1))
                            .map(|_| rng.gen_range(0..submitted))
                            .collect()
                    };
                    let adds = (0..rng.gen_range(1usize..3))
                        .map(|_| spec(&mut pair_rng))
                        .collect();
                    TraceOp::Replace {
                        remove: victims,
                        add: adds,
                    }
                }
            };
            let id = trace.record(priority, deadline, op);
            assert_eq!(id, submitted, "trace ids are the submission order");
            if rng.gen_bool(0.25) {
                trace.end_batch();
            }
        }
        trace.validate().expect("recorded traces always validate");
        let bytes = trace.to_bytes();
        let decoded = Trace::from_bytes(&bytes).expect("trace decodes");
        assert_eq!(decoded.len(), trace.len());
        decoded.validate().expect("decoded trace validates");
        assert_eq!(
            decoded.to_bytes(),
            bytes,
            "re-encoding a decoded trace must be byte-identical"
        );
    });
}

/// Every adversarial generator upholds the netlist validity contract:
/// all pins on-device and canonicalizable, sources globally distinct,
/// sinks globally distinct — whatever the seed and shape parameters.
#[test]
fn adversarial_generators_uphold_the_netlist_contract() {
    use jroute_workloads::{congestion_cliques, hotspot_storm, long_line_starvation};
    use std::collections::HashSet;
    harness::check(
        "adversarial_generators_uphold_the_netlist_contract",
        |rng| {
            let dev = dev();
            let d = dev.dims();
            let mut gen_rng = DetRng::seed_from_u64(rng.next_u64());
            let specs = match rng.gen_range(0u32..3) {
                0 => congestion_cliques(
                    &dev,
                    rng.gen_range(1usize..4),
                    rng.gen_range(2usize..6),
                    rng.gen_range(3u16..8),
                    &mut gen_rng,
                ),
                1 => long_line_starvation(
                    &dev,
                    rng.gen_range(1usize..8),
                    rng.gen_range(1u16..4),
                    &mut gen_rng,
                ),
                _ => {
                    let w = rng.gen_range(2u16..5);
                    let origin =
                        RowCol::new(rng.gen_range(0..=d.rows - w), rng.gen_range(0..=d.cols - w));
                    hotspot_storm(&dev, origin, w, rng.gen_range(1usize..12), &mut gen_rng)
                }
            };
            assert!(!specs.is_empty());
            let mut sources = HashSet::new();
            let mut sinks = HashSet::new();
            for s in &specs {
                assert!(s.source.rc.row < d.rows && s.source.rc.col < d.cols);
                assert!(
                    dev.canonicalize(s.source.rc, s.source.wire).is_some(),
                    "source {:?} does not canonicalize",
                    s.source
                );
                assert!(sources.insert(s.source), "duplicate source {:?}", s.source);
                for k in &s.sinks {
                    assert!(k.rc.row < d.rows && k.rc.col < d.cols);
                    assert!(
                        dev.canonicalize(k.rc, k.wire).is_some(),
                        "sink {k:?} does not canonicalize"
                    );
                    assert!(sinks.insert(*k), "duplicate sink {k:?}");
                }
            }
        },
    );
}

/// Partitioner invariants: for any set of boxes, the wave plan covers
/// every input exactly once, boxes within a wave are pairwise disjoint,
/// and bisection terminates even when every box overlaps every other
/// (the all-overlapping clique degrades to singleton waves).
#[test]
fn wave_partition_covers_and_separates() {
    use jroute::partition::{disjoint, partition_waves};
    use virtex::BBox;

    harness::check("wave_partition_covers_and_separates", |rng| {
        let n = rng.gen_range(0usize..40);
        let clique = rng.gen_range(0u32..4) == 0;
        let boxes: Vec<BBox> = (0..n)
            .map(|_| {
                if clique {
                    // Force the pathological case: every box contains the
                    // tile (50, 50), so no cut can separate anything.
                    let r0 = rng.gen_range(0u16..=50);
                    let c0 = rng.gen_range(0u16..=50);
                    BBox {
                        min: RowCol::new(r0, c0),
                        max: RowCol::new(rng.gen_range(50u16..100), rng.gen_range(50u16..100)),
                    }
                } else {
                    let r0 = rng.gen_range(0u16..90);
                    let c0 = rng.gen_range(0u16..140);
                    BBox {
                        min: RowCol::new(r0, c0),
                        max: RowCol::new(
                            r0 + rng.gen_range(0u16..12),
                            c0 + rng.gen_range(0u16..12),
                        ),
                    }
                }
            })
            .collect();
        let plan = partition_waves(&boxes);
        // Coverage: every index in exactly one wave.
        let mut seen = vec![0usize; n];
        for wave in &plan.waves {
            for (a, &i) in wave.iter().enumerate() {
                seen[i] += 1;
                // Disjointness within the wave.
                for &j in &wave[a + 1..] {
                    assert!(
                        disjoint(boxes[i], boxes[j]),
                        "wave holds overlapping boxes {i}={:?} and {j}={:?}",
                        boxes[i],
                        boxes[j]
                    );
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage broken: {seen:?}");
        if clique && n > 1 {
            assert_eq!(
                plan.waves.len(),
                n,
                "an all-overlapping clique must fully serialize"
            );
        }
    });
}

/// The partition-parallel engine is determinism-by-construction: for any
/// workload, routing with 1, 4 and 8 workers produces identical results
/// — same legality, same iteration count, same final overuse, and the
/// same net-by-net segment census (which is itself contention-free).
#[test]
fn partition_parallel_matches_sequential_incremental() {
    use jroute::pathfinder::{self, PathFinderConfig, PathFinderResult};
    use jroute_workloads::{random_netlist, window_netlist, NetlistParams};

    fn census_key(r: &PathFinderResult) -> Vec<Vec<virtex::Segment>> {
        r.nets.iter().map(|n| n.segments.clone()).collect()
    }

    harness::check_with(
        "partition_parallel_matches_sequential_incremental",
        6,
        |rng| {
            let dev = dev();
            let mut net_rng = DetRng::seed_from_u64(rng.next_u64());
            let mut specs = random_netlist(
                &dev,
                &NetlistParams {
                    nets: rng.gen_range(4usize..8),
                    max_fanout: 2,
                    max_span: Some(5),
                },
                &mut net_rng,
            );
            let hot = rng.gen_range(4usize..9);
            specs.extend(window_netlist(
                &dev,
                hot,
                3,
                RowCol::new(8, 12),
                &mut net_rng,
            ));

            let seq = pathfinder::route_all(&dev, &specs, &PathFinderConfig::default()).unwrap();
            for workers in [4usize, 8] {
                let par = pathfinder::route_all(
                    &dev,
                    &specs,
                    &PathFinderConfig {
                        threads: workers,
                        ..PathFinderConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(seq.legal, par.legal, "{workers} workers: legality differs");
                assert_eq!(
                    seq.iterations, par.iterations,
                    "{workers} workers: iteration count differs"
                );
                assert_eq!(
                    seq.overused, par.overused,
                    "{workers} workers: final overuse differs"
                );
                assert_eq!(
                    census_key(&seq),
                    census_key(&par),
                    "{workers} workers: segment census differs"
                );
            }
            // The shared census is contention-free when legal.
            if seq.legal {
                let mut owner = std::collections::HashMap::new();
                for (i, net) in seq.nets.iter().enumerate() {
                    for &seg in &net.segments {
                        let prev = owner.insert(seg, i);
                        assert!(
                            prev.is_none_or(|p| p == i),
                            "segment {seg} shared by nets {prev:?} and {i}"
                        );
                    }
                }
            }
        },
    );
}

// ----------------------------------------------------------------------
// Criticality-driven negotiation and Steiner fan-out (DESIGN.md §3.9)
// ----------------------------------------------------------------------

/// Criticality-weighted PathFinder is a cost reshaping, not a semantic
/// change: on any workload it must agree with the pure-congestion
/// baseline on routability, and its converged census must satisfy the
/// same integrity contract — every sink reached, no segment shared
/// between nets.
#[test]
fn criticality_weighted_pathfinder_keeps_routability() {
    use jroute::pathfinder::{self, PathFinderConfig, PathFinderResult};
    use jroute_workloads::window_netlist;
    use std::collections::HashMap;
    use virtex::Segment;

    fn check_census(dev: &Device, r: &PathFinderResult, tag: &str) {
        let mut owner: HashMap<Segment, usize> = HashMap::new();
        for (i, net) in r.nets.iter().enumerate() {
            for &seg in &net.segments {
                let prev = owner.insert(seg, i);
                assert!(
                    prev.is_none_or(|p| p == i),
                    "{tag}: segment {seg} shared by nets {prev:?} and {i}"
                );
            }
            for sink in &net.spec.sinks {
                let goal = dev.canonicalize(sink.rc, sink.wire).unwrap();
                assert!(
                    net.segments.contains(&goal),
                    "{tag}: net {i} census is missing its sink {goal}"
                );
            }
        }
    }

    harness::check_with(
        "criticality_weighted_pathfinder_keeps_routability",
        6,
        |rng| {
            let dev = dev();
            let mut net_rng = DetRng::seed_from_u64(rng.next_u64());
            // A contended window plus one high-fanout net that crosses the
            // Steiner threshold, so both new code paths run.
            let hot = rng.gen_range(4usize..8);
            let mut specs = window_netlist(&dev, hot, 3, RowCol::new(8, 12), &mut net_rng);
            specs.push(fanout_spec(&dev, RowCol::new(3, 4), 7, 4, &mut net_rng));

            let baseline =
                pathfinder::route_all(&dev, &specs, &PathFinderConfig::default()).unwrap();
            let timed =
                pathfinder::route_all(&dev, &specs, &PathFinderConfig::timing_driven()).unwrap();

            assert_eq!(
                baseline.legal, timed.legal,
                "criticality weighting changed routability"
            );
            if timed.legal {
                assert_eq!(timed.overused, 0);
                assert_eq!(timed.nets.len(), specs.len());
                check_census(&dev, &timed, "criticality-driven");
                check_census(&dev, &baseline, "pure-congestion");
                // Timing mode must actually produce the per-sink delays the
                // criticality pass feeds on.
                for net in &timed.nets {
                    assert_eq!(net.sink_delays.len(), net.spec.sinks.len());
                    assert!(net.sink_delays.iter().all(|&d| d > 0));
                }
            }
        },
    );
}

/// The best-of-two Steiner builder upholds the tree contract on any
/// seed: every sink reached, single-driver (acyclic) wiring, and never
/// more wirelength than the greedy nearest-first loop it replaces —
/// the greedy tree is one of its arms, so ≤ holds structurally and this
/// test pins it observably.
#[test]
fn steiner_fanout_trees_are_sound_and_never_beaten_by_greedy() {
    harness::check_with(
        "steiner_fanout_trees_are_sound_and_never_beaten_by_greedy",
        8,
        |rng| {
            let dev = Device::new(Family::Xcv300);
            let fanout = rng.gen_range(4usize..10);
            let span = rng.gen_range(5u16..10);
            let seed = rng.next_u64();
            let route = |steiner: Option<usize>| {
                let mut spec_rng = DetRng::seed_from_u64(seed);
                let spec = fanout_spec(&dev, RowCol::new(16, 24), fanout, span, &mut spec_rng);
                let mut r = Router::with_options(
                    &dev,
                    RouterOptions {
                        steiner_fanout: steiner,
                        ..Default::default()
                    },
                );
                let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
                r.route_fanout(&spec.source.into(), &sinks).unwrap();
                let net = r.trace(&spec.source.into()).unwrap();
                // Every sink reached, exactly once.
                let mut got = net.sinks.clone();
                let mut want = spec.sinks.clone();
                got.sort();
                want.sort();
                assert_eq!(got, want, "tree must reach every sink");
                // Single-driver == acyclic: each configured target is
                // driven by exactly one PIP.
                for rc in dev.dims().iter_tiles() {
                    for pip in r.bits().pips_at(rc) {
                        if let Some(seg) = dev.canonicalize(rc, pip.to) {
                            assert!(
                                r.bits().segment_drivers(seg).len() <= 1,
                                "contention on {seg}"
                            );
                        }
                    }
                }
                r.nets().used_segments()
            };
            let steiner_wl = route(Some(3));
            let greedy_wl = route(None);
            assert!(
                steiner_wl <= greedy_wl,
                "steiner used {steiner_wl} segments, greedy {greedy_wl}"
            );
        },
    );
}

/// Criticality-driven negotiation stays deterministic by construction:
/// the per-iteration criticality table is frozen before waves dispatch,
/// so 1, 4 and 8 workers must produce the identical census, delays and
/// iteration count.
#[test]
fn criticality_driven_routing_is_bit_identical_across_workers() {
    use jroute::pathfinder::{self, PathFinderConfig, PathFinderResult};
    use jroute_workloads::window_netlist;

    fn key(r: &PathFinderResult) -> Vec<(Vec<virtex::Segment>, Vec<u64>)> {
        r.nets
            .iter()
            .map(|n| (n.segments.clone(), n.sink_delays.clone()))
            .collect()
    }

    harness::check_with(
        "criticality_driven_routing_is_bit_identical_across_workers",
        6,
        |rng| {
            let dev = dev();
            let mut net_rng = DetRng::seed_from_u64(rng.next_u64());
            let hot = rng.gen_range(4usize..8);
            let mut specs = window_netlist(&dev, hot, 3, RowCol::new(8, 12), &mut net_rng);
            specs.push(fanout_spec(&dev, RowCol::new(3, 4), 7, 4, &mut net_rng));

            let seq =
                pathfinder::route_all(&dev, &specs, &PathFinderConfig::timing_driven()).unwrap();
            for workers in [4usize, 8] {
                let par = pathfinder::route_all(
                    &dev,
                    &specs,
                    &PathFinderConfig {
                        threads: workers,
                        ..PathFinderConfig::timing_driven()
                    },
                )
                .unwrap();
                assert_eq!(seq.legal, par.legal, "{workers} workers: legality differs");
                assert_eq!(
                    seq.iterations, par.iterations,
                    "{workers} workers: iteration count differs"
                );
                assert_eq!(
                    key(&seq),
                    key(&par),
                    "{workers} workers: census or delays differ"
                );
            }
        },
    );
}

// ----------------------------------------------------------------------
// Multi-tenant server front-end (DESIGN.md §3.8)
// ----------------------------------------------------------------------

/// The batch former partitions admissions exactly: under any interleaving
/// of pushes, watermark cuts and explicit flushes, every admitted item
/// lands in exactly one emitted batch — nothing dropped, nothing
/// duplicated, in-batch order = admission order.
#[test]
fn batch_former_partitions_admissions_exactly_once() {
    use jroute_svc::server::BatchFormer;
    harness::check("batch_former_partitions_admissions_exactly_once", |rng| {
        let max = rng.gen_range(1usize..6);
        let wait = rng.gen_range(0u64..5);
        let mut former = BatchFormer::new(max, wait);
        let total = rng.gen_range(1usize..40);
        let mut now = 0u64;
        let mut emitted: Vec<Vec<usize>> = Vec::new();
        for item in 0..total {
            now += rng.gen_range(0u64..3);
            if let Some(batch) = former.push(now, item) {
                assert_eq!(batch.len(), max, "size cut fires exactly at the watermark");
                emitted.push(batch);
            }
            while former.due(now) {
                if let Some(batch) = former.flush() {
                    emitted.push(batch);
                }
            }
            if rng.gen_range(0u32..10) == 0 {
                if let Some(batch) = former.flush() {
                    emitted.push(batch);
                }
            }
        }
        if let Some(batch) = former.flush() {
            emitted.push(batch);
        }
        assert!(former.is_empty());
        let flat: Vec<usize> = emitted.iter().flatten().copied().collect();
        let expect: Vec<usize> = (0..total).collect();
        assert_eq!(flat, expect, "exactly-once, in admission order");
        assert!(emitted.iter().all(|b| !b.is_empty() && b.len() <= max));
    });
}

/// Age-watermark bound: a driver following the push → due → flush
/// protocol never leaves an item pending past `wait` logical steps.
#[test]
fn batch_former_never_holds_past_the_age_watermark() {
    use jroute_svc::server::BatchFormer;
    harness::check("batch_former_never_holds_past_the_age_watermark", |rng| {
        let max = rng.gen_range(2usize..8);
        let wait = rng.gen_range(1u64..6);
        let mut former = BatchFormer::new(max, wait);
        let mut now = 0u64;
        let mut pending_since: Vec<u64> = Vec::new();
        for item in 0..30usize {
            now += rng.gen_range(1u64..3);
            if former.push(now, item).is_some() {
                pending_since.clear();
            } else {
                pending_since.push(now);
            }
            while former.due(now) {
                former.flush();
                pending_since.clear();
            }
            // The protocol invariant: after watermark processing at
            // `now`, nothing has waited `wait` steps or longer.
            for &at in &pending_since {
                assert!(
                    now - at < wait,
                    "item admitted at {at} still pending at {now} (wait {wait})"
                );
            }
            assert_eq!(former.len(), pending_since.len());
        }
    });
}

/// Within one tenant, one batch and one worker, the server completes
/// requests in strict priority order (lower first, ties by admission).
#[test]
fn server_completes_one_tenant_batch_in_priority_order() {
    use jroute::obs::Recorder;
    use jroute_svc::{serve, ExecMode, RequestKind, ServerConfig};

    harness::check(
        "server_completes_one_tenant_batch_in_priority_order",
        |rng| {
            let dev = dev();
            let n = rng.gen_range(3usize..8);
            let priorities: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..4)).collect();
            let cfg = ServerConfig {
                threads: 2,
                tenant_threads: 1, // one worker: completion order = start order
                mode: ExecMode::Deterministic {
                    seed: rng.gen_range(0u64..u64::MAX),
                },
                audit: true,
                batch_max: usize::MAX,
                batch_wait: u64::MAX,
                ..Default::default()
            };
            let mut net_rng = DetRng::seed_from_u64(rng.gen_range(0u64..u64::MAX));
            let (ids, report) = serve(&[&dev], cfg, Recorder::disabled(), |client| {
                let h = client.tenant(0);
                let ids: Vec<u64> = priorities
                    .iter()
                    .map(|&p| {
                        let spec = fanout_spec(&dev, RowCol::new(8, 12), 2, 5, &mut net_rng);
                        h.submit_with(RequestKind::Route(spec), p, None)
                            .unwrap()
                            .id()
                    })
                    .collect();
                h.flush();
                ids
            });
            let log = &report.tenants[0].log;
            assert_eq!(log.len(), n, "every admission completes");
            let mut expect: Vec<u64> = ids.clone();
            expect.sort_by_key(|&seq| (priorities[seq as usize], seq));
            let got: Vec<u64> = log.iter().map(|e| e.seq).collect();
            assert_eq!(got, expect, "priorities {priorities:?}");
        },
    );
}

/// Tenant-tagged trace codec: encode/decode round-trips byte-identically
/// for any generated mix; single-tenant mixes stay on the legacy `JRT1`
/// wire format and load with every request on tenant 0.
#[test]
fn tenant_tagged_traces_round_trip_and_legacy_stays_jrt1() {
    use jroute_svc::Trace;
    use jroute_workloads::{tenant_mix, TenantMixParams};
    use virtex::codec::Codec;

    harness::check(
        "tenant_tagged_traces_round_trip_and_legacy_stays_jrt1",
        |rng| {
            let dev = dev();
            let params = TenantMixParams {
                tenants: rng.gen_range(1u16..5),
                per_tenant: rng.gen_range(1usize..10),
                batch_every: rng.gen_range(0usize..7),
                fanout: 2,
                span: 4,
                unroute_pct: rng.gen_range(0u32..40),
                replace_pct: rng.gen_range(0u32..40),
            };
            let mut mix_rng = DetRng::seed_from_u64(rng.gen_range(0u64..u64::MAX));
            let trace = tenant_mix(&dev, &params, &mut mix_rng);
            let bytes = trace.to_bytes();
            let back = Trace::from_bytes(&bytes).expect("decodes");
            assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");
            assert_eq!(back.tenant_count(), trace.tenant_count());
            let tagged = trace.iter().any(|r| r.tenant != 0);
            let magic = &bytes[..4];
            assert_eq!(
                magic,
                if tagged { b"JRT2" } else { b"JRT1" },
                "wire format is canonical"
            );
            if !tagged {
                assert!(back.iter().all(|r| r.tenant == 0));
            }
        },
    );
}
