//! Property-based tests over the whole stack: invariants that must hold
//! for *any* routing request, not just the handworked examples.
//!
//! Each property runs under the in-repo `harness` driver: a configurable
//! number of seeded cases (`HARNESS_CASES`, default 24), with the failing
//! case's seed printed on panic so it can be replayed with
//! `HARNESS_SEED=<seed> HARNESS_CASES=1`.

use detrand::DetRng;
use jroute::{EndPoint, Pin, Router, RouterOptions};
use jroute_workloads::{fanout_spec, random_pairs};
use virtex::{wire, Device, Family, RowCol, Wire};

fn dev() -> Device {
    Device::new(Family::Xcv50)
}

/// canonicalize is idempotent and stable: the canonical segment of any
/// existing local name canonicalizes to itself.
#[test]
fn canonicalize_is_idempotent() {
    harness::check("canonicalize_is_idempotent", |rng| {
        let dev = dev();
        let rc = RowCol::new(rng.gen_range(0u16..16), rng.gen_range(0u16..24));
        let w = Wire(rng.gen_range(0u16..430));
        if let Some(seg) = dev.canonicalize(rc, w) {
            assert_eq!(dev.canonicalize(seg.rc, seg.wire), Some(seg));
            // And the segment surfaces at the queried tap.
            let mut taps = Vec::new();
            virtex::segment::taps(dev.dims(), seg, &mut taps);
            assert!(taps.iter().any(|t| t.rc == rc && t.wire == w));
        }
    });
}

/// Every PIP the architecture advertises connects two wires that
/// exist at the tile (no dangling connectivity).
#[test]
fn pips_connect_existing_wires() {
    harness::check("pips_connect_existing_wires", |rng| {
        let dev = dev();
        let rc = RowCol::new(rng.gen_range(0u16..16), rng.gen_range(0u16..24));
        let w = Wire(rng.gen_range(0u16..430));
        let mut fan = Vec::new();
        dev.arch().pips_from(rc, w, &mut fan);
        for to in fan {
            assert!(dev.wire_exists(rc, to), "{} -> {} at {rc}", w.name(), to.name());
        }
    });
}

/// Auto-route then trace: the traced net reaches exactly the sink,
/// and reverse-trace returns to the source.
#[test]
fn route_trace_round_trip() {
    harness::check("route_trace_round_trip", |rng| {
        let dev = dev();
        let mut pair_rng = DetRng::seed_from_u64(rng.gen_range(0u64..1000));
        let pairs = random_pairs(&dev, 1, &mut pair_rng);
        let (src, sink) = pairs[0];
        let mut router = Router::new(&dev);
        router.route(&src.into(), &sink.into()).unwrap();
        let net = router.trace(&src.into()).unwrap();
        assert_eq!(&net.sinks, &vec![sink]);
        let (hops, found) = router.reverse_trace(&sink.into()).unwrap();
        assert!(!hops.is_empty());
        assert_eq!(found, dev.canonicalize(src.rc, src.wire).unwrap());
    });
}

/// Route then unroute returns the configuration to its prior state,
/// bit for bit.
#[test]
fn route_unroute_restores_state() {
    harness::check("route_unroute_restores_state", |rng| {
        let dev = dev();
        let mut pair_rng = DetRng::seed_from_u64(rng.gen_range(0u64..1000));
        let pairs = random_pairs(&dev, 3, &mut pair_rng);
        let mut router = Router::new(&dev);
        // Pre-route one net to make the baseline non-trivial.
        router.route(&pairs[0].0.into(), &pairs[0].1.into()).unwrap();
        let baseline = jbits::snapshot(router.bits());
        if router.route(&pairs[1].0.into(), &pairs[1].1.into()).is_ok() {
            router.unroute(&pairs[1].0.into()).unwrap();
            assert_eq!(jbits::snapshot(router.bits()), baseline);
        }
    });
}

/// No routing sequence creates contention: after routing several
/// random nets, every segment has at most one driver.
#[test]
fn auto_router_never_creates_contention() {
    harness::check("auto_router_never_creates_contention", |rng| {
        let dev = dev();
        let mut pair_rng = DetRng::seed_from_u64(rng.gen_range(0u64..1000));
        let pairs = random_pairs(&dev, 6, &mut pair_rng);
        let mut router = Router::new(&dev);
        for (s, k) in &pairs {
            let _ = router.route(&(*s).into(), &(*k).into());
        }
        for rc in dev.dims().iter_tiles() {
            for pip in router.bits().pips_at(rc) {
                if let Some(seg) = dev.canonicalize(rc, pip.to) {
                    assert!(
                        router.bits().segment_drivers(seg).len() <= 1,
                        "contention on {seg}"
                    );
                }
            }
        }
    });
}

/// Reverse-unrouting one sink of a fan-out net never disturbs the
/// remaining branches.
#[test]
fn reverse_unroute_preserves_other_branches() {
    harness::check("reverse_unroute_preserves_other_branches", |rng| {
        let dev = dev();
        let victim = rng.gen_range(0usize..4);
        let mut spec_rng = DetRng::seed_from_u64(rng.gen_range(0u64..1000));
        let spec = fanout_spec(&dev, RowCol::new(8, 12), 4, 4, &mut spec_rng);
        let mut router = Router::new(&dev);
        let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
        router.route_fanout(&spec.source.into(), &sinks).unwrap();
        router.reverse_unroute(&sinks[victim]).unwrap();
        let net = router.trace(&spec.source.into()).unwrap();
        let mut survivors: Vec<Pin> = spec.sinks.clone();
        survivors.remove(victim);
        let mut got = net.sinks.clone();
        got.sort();
        survivors.sort();
        assert_eq!(got, survivors);
    });
}

/// The template router only ever uses wires matching the template
/// classes it was given.
#[test]
fn template_router_respects_classes() {
    harness::check("template_router_respects_classes", |rng| {
        // dr + dc must be positive; redraw dc when both come up zero so
        // every case still tests something (the old prop_assume!).
        let dr = rng.gen_range(0u16..3);
        let dc = if dr == 0 { rng.gen_range(1u16..3) } else { rng.gen_range(0u16..3) };
        let dev = dev();
        let mut router = Router::new(&dev);
        let mut values = Vec::new();
        values.push(virtex::TemplateValue::OutMux);
        for _ in 0..dr {
            values.push(virtex::TemplateValue::North1);
        }
        for _ in 0..dc {
            values.push(virtex::TemplateValue::East1);
        }
        values.push(virtex::TemplateValue::ClbIn);
        let t = jroute::Template::new(values.clone());
        let start = Pin::new(4, 4, wire::S0_YQ);
        if router.route_template(start, wire::S0_F3, &t).is_ok() {
            let net = router.trace(&start.into()).unwrap();
            assert_eq!(net.pips.len(), values.len());
            // Each configured wire classifies under the template step.
            for ((_, pip), want) in net.pips.iter().zip(values.iter()) {
                assert_eq!(virtex::template_value(pip.to), *want);
            }
        }
    });
}

/// Long lines appear in routes only when the option is enabled.
#[test]
fn long_lines_obey_the_option() {
    harness::check("long_lines_obey_the_option", |rng| {
        let use_longs = rng.gen_bool(0.5);
        let dev = Device::new(Family::Xcv300);
        let mut spec_rng = DetRng::seed_from_u64(rng.gen_range(0u64..200));
        let spec = fanout_spec(&dev, RowCol::new(16, 24), 2, 12, &mut spec_rng);
        let mut router = Router::with_options(
            &dev,
            RouterOptions { use_long_lines: use_longs, ..Default::default() },
        );
        let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
        router.route_fanout(&spec.source.into(), &sinks).unwrap();
        if !use_longs {
            assert_eq!(router.resource_usage().longs, 0);
        }
    });
}
