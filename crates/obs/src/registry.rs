//! Lock-free sharded metrics registry with typed handles.
//!
//! The original `Recorder::count()/record()` API pays a mutex acquisition
//! and a `BTreeMap` string lookup on every increment — fine for cold
//! paths, measurable on the maze inner loop where a single search bumps
//! four counters per expanded node. The registry replaces that with
//! **pre-registered typed handles**:
//!
//! * [`Counter`] — a monotone sum, sharded over [`SHARDS`] cache-line-
//!   padded atomics indexed by the recording thread, folded on read;
//! * [`Gauge`] — a single atomic level (queue depth, live nets);
//! * [`Histo`] — a log2 histogram with per-shard atomic buckets, folded
//!   into a [`Histogram`] snapshot on read.
//!
//! A handle is resolved once (`Recorder::counter("maze.searches")` takes
//! the registry mutex) and then recorded through forever after with a
//! single relaxed atomic RMW — no lock, no lookup, and no false sharing
//! between workers on different shards. Handles from a disabled recorder
//! hold `None` and compile down to one branch, preserving the
//! disabled-recorder cost model.
//!
//! Registry values fold into every [`Report`] under their registered
//! names, so downstream consumers (the self-tuner, JSON export, the
//! [`prometheus_text`] exposition) see one namespace regardless of which
//! API recorded a metric.

use crate::hist::{self, Histogram, BUCKETS};
use crate::report::{HistRow, Report};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per metric. More than any realistic worker count in this
/// workspace (svc tops out at 8 threads); a power of two so the modulo
/// folds to a mask.
pub const SHARDS: usize = 16;

/// One cache line worth of counter, so adjacent shards never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

#[inline]
fn shard_index() -> usize {
    crate::thread_id() as usize % SHARDS
}

// ----------------------------------------------------------------------
// Counter
// ----------------------------------------------------------------------

#[derive(Debug)]
pub(crate) struct CounterCore {
    shards: [PaddedU64; SHARDS],
}

impl CounterCore {
    fn new() -> Self {
        CounterCore {
            shards: std::array::from_fn(|_| PaddedU64::default()),
        }
    }

    fn fold(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A pre-registered monotone counter. Cheap to clone; all clones feed the
/// same shards. A handle from a disabled recorder is inert.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    core: Option<Arc<CounterCore>>,
}

impl Counter {
    /// The inert handle handed out by disabled recorders.
    pub(crate) fn disabled() -> Self {
        Counter { core: None }
    }

    pub(crate) fn from_core(core: Arc<CounterCore>) -> Self {
        Counter { core: Some(core) }
    }

    /// Add `delta`. One relaxed `fetch_add` on the caller's shard.
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(core) = &self.core {
            core.shards[shard_index()]
                .0
                .fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Fold all shards into the current total.
    pub fn value(&self) -> u64 {
        self.core.as_ref().map(|c| c.fold()).unwrap_or(0)
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }
}

// ----------------------------------------------------------------------
// Gauge
// ----------------------------------------------------------------------

/// A pre-registered level (queue depth, live nets): last `set` wins,
/// read back by [`Gauge::value`]. Unsharded — gauges are written once per
/// batch, not once per node.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    core: Option<Arc<AtomicU64>>,
}

impl Gauge {
    pub(crate) fn disabled() -> Self {
        Gauge { core: None }
    }

    pub(crate) fn from_core(core: Arc<AtomicU64>) -> Self {
        Gauge { core: Some(core) }
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(core) = &self.core {
            core.store(value, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn value(&self) -> u64 {
        self.core
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }
}

// ----------------------------------------------------------------------
// Histogram handle
// ----------------------------------------------------------------------

#[derive(Debug)]
struct HistoShard {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistoShard {
    fn default() -> Self {
        HistoShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
pub(crate) struct HistoCore {
    shards: [HistoShard; SHARDS],
}

impl HistoCore {
    fn new() -> Self {
        HistoCore {
            shards: std::array::from_fn(|_| HistoShard::default()),
        }
    }

    fn fold(&self) -> Histogram {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for sh in &self.shards {
            for (i, b) in sh.buckets.iter().enumerate() {
                buckets[i] = buckets[i].saturating_add(b.load(Ordering::Relaxed));
            }
            count = count.saturating_add(sh.count.load(Ordering::Relaxed));
            sum = sum.saturating_add(sh.sum.load(Ordering::Relaxed));
            min = min.min(sh.min.load(Ordering::Relaxed));
            max = max.max(sh.max.load(Ordering::Relaxed));
        }
        Histogram::from_parts(buckets, count, sum, min, max)
    }

    fn reset(&self) {
        for sh in &self.shards {
            for b in &sh.buckets {
                b.store(0, Ordering::Relaxed);
            }
            sh.count.store(0, Ordering::Relaxed);
            sh.sum.store(0, Ordering::Relaxed);
            sh.min.store(u64::MAX, Ordering::Relaxed);
            sh.max.store(0, Ordering::Relaxed);
        }
    }
}

/// A pre-registered log2 histogram. Recording touches only the caller's
/// shard: one bucket `fetch_add` plus count/sum/min/max updates, all
/// relaxed. Folded into a [`Histogram`] snapshot by [`Histo::snapshot`]
/// and by every report.
#[derive(Debug, Clone, Default)]
pub struct Histo {
    core: Option<Arc<HistoCore>>,
}

impl Histo {
    pub(crate) fn disabled() -> Self {
        Histo { core: None }
    }

    pub(crate) fn from_core(core: Arc<HistoCore>) -> Self {
        Histo { core: Some(core) }
    }

    /// Count one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.core {
            let sh = &core.shards[shard_index()];
            sh.buckets[hist::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            sh.count.fetch_add(1, Ordering::Relaxed);
            sh.sum.fetch_add(v, Ordering::Relaxed);
            sh.min.fetch_min(v, Ordering::Relaxed);
            sh.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Record a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Fold all shards into a point-in-time [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        self.core.as_ref().map(|c| c.fold()).unwrap_or_default()
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

/// Per-recorder registry of named metric cores. The mutexes guard only
/// registration (resolve-once, cold); recording never takes them.
/// Metric names are owned strings so dynamically composed families —
/// the per-tenant labelled names minted by [`labeled`] — register as
/// first-class metrics alongside the `&'static str` literals the hot
/// paths use. Registration is cold (resolve-once), so the lookup
/// allocation is irrelevant.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Arc<CounterCore>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histos: Mutex<BTreeMap<String, Arc<HistoCore>>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        let core = match map.get(name) {
            Some(core) => Arc::clone(core),
            None => {
                let core = Arc::new(CounterCore::new());
                map.insert(name.to_string(), Arc::clone(&core));
                core
            }
        };
        Counter::from_core(core)
    }

    pub(crate) fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        let core = match map.get(name) {
            Some(core) => Arc::clone(core),
            None => {
                let core = Arc::new(AtomicU64::new(0));
                map.insert(name.to_string(), Arc::clone(&core));
                core
            }
        };
        Gauge::from_core(core)
    }

    pub(crate) fn histogram(&self, name: &str) -> Histo {
        let mut map = self.histos.lock().unwrap();
        let core = match map.get(name) {
            Some(core) => Arc::clone(core),
            None => {
                let core = Arc::new(HistoCore::new());
                map.insert(name.to_string(), Arc::clone(&core));
                core
            }
        };
        Histo::from_core(core)
    }

    /// Fold live registry values into a report's counter and histogram
    /// tables (merging with any string-keyed metric of the same name).
    /// Zero counters and empty histograms are skipped so pre-registered
    /// but untouched handles do not clutter reports.
    pub(crate) fn fold_into(&self, counters: &mut Vec<(String, u64)>, hists: &mut Vec<HistRow>) {
        let mut merge_counter = |name: &str, v: u64| {
            if v == 0 {
                return;
            }
            match counters.iter_mut().find(|(k, _)| k == name) {
                Some((_, cur)) => *cur = cur.saturating_add(v),
                None => counters.push((name.to_string(), v)),
            }
        };
        for (name, core) in self.counters.lock().unwrap().iter() {
            merge_counter(name, core.fold());
        }
        for (name, core) in self.gauges.lock().unwrap().iter() {
            merge_counter(name, core.load(Ordering::Relaxed));
        }
        counters.sort();
        for (name, core) in self.histos.lock().unwrap().iter() {
            let h = core.fold();
            if h.count() == 0 {
                continue;
            }
            match hists.iter_mut().find(|r| r.name == *name) {
                Some(row) => row.hist.merge(&h),
                None => hists.push(HistRow {
                    name: name.to_string(),
                    hist: h,
                }),
            }
        }
        hists.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Zero every registered value while keeping the registrations (and
    /// therefore every handle already resolved by callers) alive.
    pub(crate) fn reset_values(&self) {
        for core in self.counters.lock().unwrap().values() {
            core.reset();
        }
        for core in self.gauges.lock().unwrap().values() {
            core.store(0, Ordering::Relaxed);
        }
        for core in self.histos.lock().unwrap().values() {
            core.reset();
        }
    }
}

// ----------------------------------------------------------------------
// Prometheus-style exposition
// ----------------------------------------------------------------------

/// Compose a labelled metric name: `labeled("svc.server.depth",
/// "tenant", 3)` → `svc.server.depth{tenant="3"}`. The result is an
/// ordinary registry name — resolve handles through it as usual — and
/// [`prometheus_text`] renders the label block natively, grouping every
/// labelled sibling under one `# TYPE` family header.
pub fn labeled(family: &str, label: &str, value: impl std::fmt::Display) -> String {
    format!("{family}{{{label}=\"{value}\"}}")
}

/// Sanitize a metric name into the Prometheus charset and prefix it:
/// `maze.nodes_expanded` → `jroute_maze_nodes_expanded`. A
/// `family{label="v"}` name (see [`labeled`]) has only its family part
/// sanitized; the label block is carried through verbatim.
fn prom_name(name: &str) -> String {
    let (base, labels) = match name.find('{') {
        Some(at) => name.split_at(at),
        None => (name, ""),
    };
    let mut out = String::with_capacity(7 + name.len());
    out.push_str("jroute_");
    for c in base.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out.push_str(labels);
    out
}

/// The `# TYPE`-family key of a (possibly labelled) prom name: the part
/// before any label block.
fn prom_family(prom: &str) -> &str {
    prom.split('{').next().unwrap_or(prom)
}

/// Append `suffix` to a prom name, *inside* the base: for a labelled
/// summary, `_sum`/`_count` attach to the family, keeping the labels —
/// `f{t="0"}` + `_sum` → `f_sum{t="0"}`.
fn prom_suffixed(prom: &str, suffix: &str) -> String {
    match prom.find('{') {
        Some(at) => format!("{}{}{}", &prom[..at], suffix, &prom[at..]),
        None => format!("{prom}{suffix}"),
    }
}

/// Merge an extra `key="value"` pair into a prom name's label block,
/// creating the block when absent.
fn prom_with_label(prom: &str, key: &str, value: &str) -> String {
    match prom.strip_suffix('}') {
        Some(head) => format!("{head},{key}=\"{value}\"}}"),
        None => format!("{prom}{{{key}=\"{value}\"}}"),
    }
}

/// Render a report as a Prometheus text-format exposition snapshot:
/// counters as `counter` families, histograms as `summary` families with
/// p50/p90/p99 quantile samples, span aggregates as `_count`/`_ns_total`
/// counter pairs. Hand-rolled, zero-dependency; one sample per line,
/// `# TYPE` headers, trailing newline — enough for any Prometheus-
/// compatible scraper or for `promtool check metrics`.
pub fn prometheus_text(report: &Report) -> String {
    let mut s = String::new();
    // One `# TYPE` header per family: labelled siblings
    // (`f{tenant="0"}`, `f{tenant="1"}`) share a family and must not
    // repeat the header.
    let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut type_line = |s: &mut String, family: &str, kind: &str| {
        if typed.insert(family.to_string()) {
            s.push_str(&format!("# TYPE {family} {kind}\n"));
        }
    };
    if report.epoch_unix_nanos != 0 {
        type_line(&mut s, "jroute_epoch_unix_nanos", "gauge");
        s.push_str(&format!(
            "jroute_epoch_unix_nanos {}\n",
            report.epoch_unix_nanos
        ));
    }
    for (name, v) in &report.counters {
        let n = prom_name(name);
        type_line(&mut s, prom_family(&n), "counter");
        s.push_str(&format!("{n} {v}\n"));
    }
    for row in &report.hists {
        let n = prom_name(&row.name);
        let h = &row.hist;
        type_line(&mut s, prom_family(&n), "summary");
        for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
            s.push_str(&format!("{} {v}\n", prom_with_label(&n, "quantile", q)));
        }
        s.push_str(&format!(
            "{} {}\n{} {}\n",
            prom_suffixed(&n, "_sum"),
            h.sum(),
            prom_suffixed(&n, "_count"),
            h.count()
        ));
    }
    for (name, st) in &report.span_stats {
        let n = prom_name(&format!("span.{name}"));
        type_line(&mut s, &format!("{n}_count"), "counter");
        s.push_str(&format!("{n}_count {}\n", st.count));
        type_line(&mut s, &format!("{n}_ns_total"), "counter");
        s.push_str(&format!("{n}_ns_total {}\n", st.total_ns));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn disabled_handles_are_inert() {
        let rec = Recorder::disabled();
        let c = rec.counter("x");
        let g = rec.gauge("y");
        let h = rec.histogram("z");
        c.add(5);
        g.set(9);
        h.record(100);
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.snapshot().count(), 0);
        assert!(rec.report().counters.is_empty());
    }

    #[test]
    fn handles_for_one_name_share_a_core() {
        let rec = Recorder::enabled();
        let a = rec.counter("hits");
        let b = rec.counter("hits");
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
        assert_eq!(rec.report().counter("hits"), Some(5));
    }

    #[test]
    fn sharded_counters_fold_across_threads() {
        let rec = Recorder::enabled();
        let c = rec.counter("work");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn sharded_histogram_folds_like_the_plain_one() {
        let rec = Recorder::enabled();
        let h = rec.histogram("lat");
        let mut plain = crate::Histogram::new();
        for v in [0u64, 1, 7, 100, 5_000, 1 << 40] {
            h.record(v);
            plain.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.sum(), plain.sum());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.max(), plain.max());
        assert_eq!(snap.p50(), plain.p50());
        assert_eq!(snap.p99(), plain.p99());
    }

    #[test]
    fn registry_values_surface_in_reports_and_merge_by_name() {
        let rec = Recorder::enabled();
        rec.count("shared.name", 10); // string-keyed path
        rec.counter("shared.name").add(5); // registry path
        rec.gauge("depth.now").set(3);
        rec.histogram("sizes").record(64);
        rec.record("sizes", 64);
        let rep = rec.report();
        assert_eq!(rep.counter("shared.name"), Some(15));
        assert_eq!(rep.counter("depth.now"), Some(3));
        assert_eq!(rep.hist("sizes").unwrap().count(), 2);
        // Counter ordering survives the merge.
        let names: Vec<&str> = rep.counters.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn reset_zeroes_values_but_keeps_handles_live() {
        let rec = Recorder::enabled();
        let c = rec.counter("n");
        let h = rec.histogram("v");
        c.add(7);
        h.record(9);
        rec.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(h.snapshot().count(), 0);
        c.add(1); // the old handle still feeds the recorder
        assert_eq!(rec.report().counter("n"), Some(1));
    }

    #[test]
    fn labeled_names_register_and_expose_as_one_family() {
        let rec = Recorder::enabled();
        rec.counter(&labeled("svc.server.submitted", "tenant", 0))
            .add(7);
        rec.counter(&labeled("svc.server.submitted", "tenant", 1))
            .add(9);
        rec.histogram(&labeled("svc.server.request_ns", "tenant", 0))
            .record(1000);
        let text = prometheus_text(&rec.report());
        assert!(text.contains("jroute_svc_server_submitted{tenant=\"0\"} 7\n"));
        assert!(text.contains("jroute_svc_server_submitted{tenant=\"1\"} 9\n"));
        assert_eq!(
            text.matches("# TYPE jroute_svc_server_submitted counter\n")
                .count(),
            1,
            "labelled siblings share one TYPE header"
        );
        assert!(text.contains("jroute_svc_server_request_ns{tenant=\"0\",quantile=\"0.5\"}"));
        assert!(text.contains("jroute_svc_server_request_ns_sum{tenant=\"0\"}"));
        assert!(text.contains("jroute_svc_server_request_ns_count{tenant=\"0\"} 1\n"));
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn prometheus_text_exposes_the_documented_families() {
        let rec = Recorder::enabled();
        rec.counter("router.pips_set").add(4);
        rec.histogram("maze.nodes_expanded").record(100);
        {
            let _s = rec.span("svc.batch");
        }
        let text = prometheus_text(&rec.report());
        assert!(text.contains("# TYPE jroute_router_pips_set counter\n"));
        assert!(text.contains("jroute_router_pips_set 4\n"));
        assert!(text.contains("# TYPE jroute_maze_nodes_expanded summary\n"));
        assert!(text.contains("jroute_maze_nodes_expanded{quantile=\"0.99\"}"));
        assert!(text.contains("jroute_maze_nodes_expanded_count 1\n"));
        assert!(text.contains("jroute_span_svc_batch_count 1\n"));
        assert!(text.contains("jroute_epoch_unix_nanos "));
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }
}
