//! Chrome `trace_event` JSON export — the flight-recorder view.
//!
//! Renders a [`Report`]'s raw spans as the Trace Event Format that
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` load
//! directly: one complete (`"ph": "X"`) event per span on a per-thread
//! track, plus flow arrows (`"ph": "s"` → `"ph": "f"`) wherever a span's
//! causal parent finished on a **different** thread — exactly the
//! stolen-work / parked-retry hand-offs that the per-thread nesting view
//! cannot show. Hand-rolled and zero-dependency like the rest of
//! [`crate::json`].
//!
//! Structure emitted:
//!
//! * `displayTimeUnit` and an `otherData.epoch_unix_nanos` header (the
//!   wall-clock anchor for cross-process alignment);
//! * metadata events naming the process and each thread track;
//! * per span: `name`, `cat: "span"`, `ph: "X"`, `ts`/`dur` in
//!   fractional microseconds, `pid: 1`, `tid` = recorder thread id, and
//!   `args` carrying `span_id`/`parent`/`trace`/`note` so the causal
//!   tree is reconstructible from the file alone;
//! * per cross-thread parent link: one flow-start on the parent's track
//!   and one flow-finish (`bp: "e"`) on the child's, with the child's
//!   `span_id` as the flow id.
//!
//! Spans streamed out through a span sink are *not* in the report and
//! therefore not in this export; for full-run flight recordings size the
//! workload under [`crate::MAX_SPANS`] or export per window.

use crate::report::Report;
use std::collections::HashMap;
use std::io::{self, Write};

/// Microseconds with sub-ns error: the unit `ts`/`dur` are expressed in.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Render `report` as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(report: &Report) -> String {
    let mut events: Vec<String> = Vec::with_capacity(report.spans.len() * 2 + 8);

    events.push(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
         \"args\": {\"name\": \"jroute\"}}"
            .to_string(),
    );
    let mut tids: Vec<u64> = report.spans.iter().map(|s| s.thread).collect();
    tids.sort_unstable();
    tids.dedup();
    for t in &tids {
        events.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {t}, \
             \"args\": {{\"name\": \"thread-{t}\"}}}}"
        ));
    }

    // Span-id → (thread, start_ns) of the parent, for flow arrows.
    let by_id: HashMap<u64, (u64, u64)> = report
        .spans
        .iter()
        .map(|s| (s.span_id, (s.thread, s.start_ns)))
        .collect();

    for s in &report.spans {
        events.push(format!(
            "{{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"span_id\": {}, \
             \"parent\": {}, \"trace\": {}, \"note\": {}}}}}",
            crate::json::escape(s.name),
            us(s.start_ns),
            us(s.dur_ns),
            s.thread,
            s.span_id,
            s.parent,
            s.trace,
            s.note
        ));
        if s.parent != 0 {
            if let Some(&(p_thread, p_start)) = by_id.get(&s.parent) {
                if p_thread != s.thread {
                    // Cross-thread hand-off: draw a flow arrow from the
                    // parent span to this one, keyed by the child's id.
                    events.push(format!(
                        "{{\"name\": \"handoff\", \"cat\": \"flow\", \"ph\": \"s\", \
                         \"id\": {}, \"ts\": {}, \"pid\": 1, \"tid\": {p_thread}}}",
                        s.span_id,
                        us(p_start),
                    ));
                    events.push(format!(
                        "{{\"name\": \"handoff\", \"cat\": \"flow\", \"ph\": \"f\", \
                         \"bp\": \"e\", \"id\": {}, \"ts\": {}, \"pid\": 1, \"tid\": {}}}",
                        s.span_id,
                        us(s.start_ns),
                        s.thread
                    ));
                }
            }
        }
    }

    let mut out = String::with_capacity(events.len() * 160 + 128);
    out.push_str("{\"displayTimeUnit\": \"ms\",\n");
    out.push_str(&format!(
        "\"otherData\": {{\"epoch_unix_nanos\": {}, \"spans\": {}, \"spans_dropped\": {}, \
         \"spans_flushed\": {}}},\n",
        report.epoch_unix_nanos,
        report.spans.len(),
        report.spans_dropped,
        report.spans_flushed
    ));
    out.push_str("\"traceEvents\": [\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Write the Chrome trace for `report` through any `Write` sink (a file,
/// a [`crate::RotatingFileSink`]) in one chunk.
pub fn write_chrome_trace(report: &Report, w: &mut dyn Write) -> io::Result<()> {
    w.write_all(chrome_trace_json(report).as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, Recorder};

    fn cross_thread_report() -> Report {
        let rec = Recorder::enabled();
        let ctx = {
            let mut root = rec.span_root("svc.request");
            root.note(7);
            root.ctx()
        };
        std::thread::scope(|scope| {
            let rec = rec.clone();
            scope.spawn(move || {
                let _exec = rec.span_ctx("svc.exec", ctx);
                let _maze = rec.span("maze.search");
            });
        });
        rec.report()
    }

    #[test]
    fn export_is_valid_json_with_required_fields() {
        let rep = cross_thread_report();
        let text = chrome_trace_json(&rep);
        let doc = json::parse(&text).expect("chrome trace parses");
        assert!(doc
            .get("otherData")
            .unwrap()
            .get("epoch_unix_nanos")
            .is_some());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        for e in events {
            assert!(e.get("ph").is_some(), "every event has a phase");
            assert_eq!(e.get("pid").unwrap().as_f64(), Some(1.0));
            let ph = e.get("ph").unwrap().as_str().unwrap();
            if ph == "X" {
                assert!(e.get("ts").is_some() && e.get("dur").is_some());
                assert!(e.get("tid").is_some());
                assert!(e.get("name").unwrap().as_str().is_some());
            }
        }
    }

    #[test]
    fn parent_links_resolve_and_cross_thread_links_get_flows() {
        let rep = cross_thread_report();
        let doc = json::parse(&chrome_trace_json(&rep)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        let ids: Vec<f64> = xs
            .iter()
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("span_id")
                    .unwrap()
                    .as_f64()
                    .unwrap()
            })
            .collect();
        for e in &xs {
            let parent = e
                .get("args")
                .unwrap()
                .get("parent")
                .unwrap()
                .as_f64()
                .unwrap();
            assert!(
                parent == 0.0 || ids.contains(&parent),
                "dangling parent {parent}"
            );
        }
        // Everything shares the request's trace id.
        let traces: std::collections::HashSet<u64> = xs
            .iter()
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("trace")
                    .unwrap()
                    .as_f64()
                    .unwrap() as u64
            })
            .collect();
        assert_eq!(traces.len(), 1);
        // The exec span ran on another thread: exactly one flow pair,
        // start and finish carrying the same id on different tracks.
        let flows: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("flow"))
            .collect();
        assert_eq!(flows.len(), 2, "one s/f pair for the one hand-off");
        let s = flows
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
            .unwrap();
        let f = flows
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
            .unwrap();
        assert_eq!(s.get("id").unwrap().as_f64(), f.get("id").unwrap().as_f64());
        assert_ne!(
            s.get("tid").unwrap().as_f64(),
            f.get("tid").unwrap().as_f64()
        );
        assert_eq!(f.get("bp").and_then(|b| b.as_str()), Some("e"));
    }

    #[test]
    fn write_chrome_trace_streams_the_document() {
        let rep = cross_thread_report();
        let mut buf: Vec<u8> = Vec::new();
        write_chrome_trace(&rep, &mut buf).unwrap();
        assert!(json::parse(std::str::from_utf8(&buf).unwrap()).is_some());
    }
}
