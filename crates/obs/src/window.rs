//! Windowed aggregation: rolling time-series over registry metrics.
//!
//! A [`Report`] answers "what happened over the whole run"; operations
//! questions are about *now* and *lately* — is queue depth climbing, did
//! batch-latency p99 spike after that replace storm, what is the steal
//! rate this window. The [`Aggregator`] tracks a set of registry handles
//! ([`Counter`]/[`Gauge`]/[`Histo`]) and, on every [`Aggregator::tick`],
//! appends one [`Sample`] holding each metric's **windowed** view:
//!
//! * counters → the delta since the previous tick (a rate, given the
//!   tick interval);
//! * gauges → the current level;
//! * histograms → count delta plus p50/p99 of only the values recorded
//!   in the window (cumulative snapshots are differenced bucket-wise via
//!   [`Histogram::delta_since`]).
//!
//! Samples live in a bounded ring (oldest evicted), so a long-running
//! service can tick every batch forever at fixed memory. The ring
//! exports as a JSON document of parallel time-series for plotting or
//! shipping.

use crate::hist::Histogram;
use crate::registry::{Counter, Gauge, Histo};
use std::collections::VecDeque;

/// One tick's view of every tracked metric.
#[derive(Debug, Clone)]
pub struct Sample {
    /// When the tick happened, in nanoseconds since the recorder epoch
    /// (see [`crate::Recorder::elapsed_ns`]).
    pub at_ns: u64,
    /// `(series name, value)` rows, in tracking order. Counter series
    /// are suffixed `.delta`, histogram series `.count`/`.p50`/`.p99`;
    /// gauge series keep their plain name.
    pub rows: Vec<(String, f64)>,
}

impl Sample {
    /// Value of one series in this sample.
    pub fn value(&self, series: &str) -> Option<f64> {
        self.rows.iter().find(|(k, _)| k == series).map(|(_, v)| *v)
    }
}

#[derive(Debug)]
enum Tracked {
    Counter {
        name: String,
        handle: Counter,
        prev: u64,
    },
    Gauge {
        name: String,
        handle: Gauge,
    },
    Histo {
        name: String,
        handle: Histo,
        // Boxed: a Histogram's inline bucket array dwarfs the other
        // variants, and ticks touch it through one more indirection only.
        prev: Box<Histogram>,
    },
}

/// Rolling time-series aggregator over registry handles. See the module
/// docs for the windowing semantics.
#[derive(Debug)]
pub struct Aggregator {
    cap: usize,
    tracked: Vec<Tracked>,
    samples: VecDeque<Sample>,
}

impl Aggregator {
    /// An aggregator retaining at most `cap` samples (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        Aggregator {
            cap: cap.max(1),
            tracked: Vec::new(),
            samples: VecDeque::new(),
        }
    }

    /// Track a counter; each sample reports `<name>.delta`, the amount
    /// added since the previous tick.
    pub fn track_counter(&mut self, name: impl Into<String>, handle: Counter) {
        let prev = handle.value();
        self.tracked.push(Tracked::Counter {
            name: name.into(),
            handle,
            prev,
        });
    }

    /// Track a gauge; each sample reports its current level under the
    /// plain name.
    pub fn track_gauge(&mut self, name: impl Into<String>, handle: Gauge) {
        self.tracked.push(Tracked::Gauge {
            name: name.into(),
            handle,
        });
    }

    /// Track a histogram; each sample reports `<name>.count`,
    /// `<name>.p50` and `<name>.p99` computed over only the values
    /// recorded since the previous tick.
    pub fn track_histogram(&mut self, name: impl Into<String>, handle: Histo) {
        let prev = Box::new(handle.snapshot());
        self.tracked.push(Tracked::Histo {
            name: name.into(),
            handle,
            prev,
        });
    }

    /// Close the current window: append one sample at `at_ns` and start
    /// the next window.
    pub fn tick(&mut self, at_ns: u64) {
        let mut rows = Vec::with_capacity(self.tracked.len() * 2);
        for t in &mut self.tracked {
            match t {
                Tracked::Counter { name, handle, prev } => {
                    let cur = handle.value();
                    rows.push((format!("{name}.delta"), cur.saturating_sub(*prev) as f64));
                    *prev = cur;
                }
                Tracked::Gauge { name, handle } => {
                    rows.push((name.clone(), handle.value() as f64));
                }
                Tracked::Histo { name, handle, prev } => {
                    let cur = handle.snapshot();
                    let win = cur.delta_since(prev);
                    rows.push((format!("{name}.count"), win.count() as f64));
                    rows.push((format!("{name}.p50"), win.p50() as f64));
                    rows.push((format!("{name}.p99"), win.p99() as f64));
                    **prev = cur;
                }
            }
        }
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(Sample { at_ns, rows });
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&Sample> {
        self.samples.back()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no tick has happened yet (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Export the ring as one JSON document: `{"samples": [{"at_ns": N,
    /// "rows": {"series": value, ...}}, ...]}`. Parseable by
    /// [`crate::json::parse`].
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"samples\": [\n");
        let lines: Vec<String> = self
            .samples
            .iter()
            .map(|sample| {
                let rows: Vec<String> = sample
                    .rows
                    .iter()
                    .map(|(k, v)| format!("\"{}\": {v}", crate::json::escape(k)))
                    .collect();
                format!(
                    "  {{\"at_ns\": {}, \"rows\": {{{}}}}}",
                    sample.at_ns,
                    rows.join(", ")
                )
            })
            .collect();
        s.push_str(&lines.join(",\n"));
        s.push_str("\n]}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn counters_report_per_window_deltas() {
        let rec = Recorder::enabled();
        let c = rec.counter("steals");
        let mut agg = Aggregator::new(8);
        c.add(5); // before tracking starts: not part of any window
        agg.track_counter("steals", c.clone());
        c.add(3);
        agg.tick(100);
        c.add(4);
        agg.tick(200);
        agg.tick(300); // idle window
        let vals: Vec<f64> = agg
            .samples()
            .map(|s| s.value("steals.delta").unwrap())
            .collect();
        assert_eq!(vals, vec![3.0, 4.0, 0.0]);
    }

    #[test]
    fn histograms_report_windowed_quantiles() {
        let rec = Recorder::enabled();
        let h = rec.histogram("lat");
        let mut agg = Aggregator::new(8);
        agg.track_histogram("lat", h.clone());
        for _ in 0..100 {
            h.record(100);
        }
        agg.tick(1);
        // The second window records only large values: its p50 must
        // reflect them, not the cumulative mass of small ones.
        for _ in 0..10 {
            h.record(100_000);
        }
        agg.tick(2);
        let s1 = agg.samples().next().unwrap();
        let s2 = agg.latest().unwrap();
        assert_eq!(s1.value("lat.count"), Some(100.0));
        assert_eq!(s2.value("lat.count"), Some(10.0));
        assert!(s1.value("lat.p50").unwrap() <= 127.0);
        assert!(
            s2.value("lat.p50").unwrap() >= 65_536.0,
            "windowed p50 = {:?}",
            s2.value("lat.p50")
        );
    }

    #[test]
    fn gauges_report_levels_and_the_ring_is_bounded() {
        let rec = Recorder::enabled();
        let g = rec.gauge("depth");
        let mut agg = Aggregator::new(3);
        agg.track_gauge("depth", g.clone());
        for i in 0..10u64 {
            g.set(i);
            agg.tick(i);
        }
        assert_eq!(agg.len(), 3);
        assert_eq!(agg.latest().unwrap().value("depth"), Some(9.0));
        assert_eq!(agg.samples().next().unwrap().at_ns, 7);
    }

    #[test]
    fn exports_parseable_json() {
        let rec = Recorder::enabled();
        let mut agg = Aggregator::new(4);
        agg.track_counter("c", rec.counter("c"));
        agg.track_gauge("g", rec.gauge("g"));
        agg.tick(42);
        let doc = crate::json::parse(&agg.to_json()).expect("valid JSON");
        let samples = doc.get("samples").unwrap().as_arr().unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].get("at_ns").unwrap().as_f64(), Some(42.0));
        let rows = samples[0].get("rows").unwrap();
        assert_eq!(rows.get("c.delta").unwrap().as_f64(), Some(0.0));
    }
}
