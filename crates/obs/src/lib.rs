//! # jroute-obs — a hermetic tracing/metrics layer for the router stack
//!
//! The paper's §3.5 debug support (`trace`/`reverseTrace`, BoardScope) is
//! about *seeing* what the run-time router did to the device; this crate
//! is the same idea applied to the router's own internals. It provides:
//!
//! * [`Recorder`] — a cloneable handle that is either **disabled** (every
//!   operation is a branch on a `None` and nothing else — no clock reads,
//!   no allocation, no locking) or **enabled** (an `Arc`-shared collector
//!   guarded by a mutex, safe to use from `std::thread::scope` workers);
//! * [`Span`] — an RAII guard measuring one operation with monotonic
//!   timing; spans nest per thread, so the finished records form a tree
//!   (`route` → `maze.search` → …) that [`Report::span_tree`] renders;
//! * typed counters and log2-bucketed [`Histogram`]s with p50/p90/p99
//!   summaries ([`hist`]);
//! * a human-readable [`Report`] table and a hand-rolled JSON exporter
//!   ([`json`]) writing `target/obs-json/OBS_<run>.json` in the same
//!   style as the `harness::bench` reports.
//!
//! The crate is zero-dependency and `forbid(unsafe_code)`, matching the
//! workspace's hermetic-build policy.
//!
//! ```
//! use jroute_obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! {
//!     let mut outer = rec.span("request");
//!     let _inner = rec.span("lookup");
//!     rec.count("cache.miss", 1);
//!     rec.record("payload.bytes", 512);
//!     outer.note(1); // arbitrary payload, e.g. items handled
//! }
//! let report = rec.report();
//! assert_eq!(report.counter("cache.miss"), Some(1));
//! assert_eq!(report.span_count("lookup"), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export_chrome;
pub mod hist;
pub mod json;
pub mod registry;
pub mod report;
pub mod rotate;
pub mod tracectx;
pub mod window;

pub use export_chrome::{chrome_trace_json, write_chrome_trace};
pub use hist::Histogram;
pub use registry::{labeled, prometheus_text, Counter, Gauge, Histo};
pub use report::{HistRow, Report, SpanStat};
pub use rotate::RotatingFileSink;
pub use tracectx::TraceCtx;
pub use window::{Aggregator, Sample};

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Raw-span retention cap: beyond this the tree view saturates (aggregate
/// per-name statistics keep counting) and `spans_dropped` records how
/// many records were shed. Bounds memory on long bench runs.
pub const MAX_SPANS: usize = 16_384;

/// Event retention cap, same policy as [`MAX_SPANS`].
pub const MAX_EVENTS: usize = 16_384;

/// Environment variable consulted by [`Recorder::from_env`].
pub const OBS_ENV: &str = "JROUTE_OBS";

/// One finished span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, e.g. `"router.route"`.
    pub name: &'static str,
    /// Discriminates recording threads (dense ids in creation order).
    pub thread: u64,
    /// Nesting depth within the recording thread at start time.
    pub depth: u16,
    /// Start, in nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Caller-supplied payload (see [`Span::note`]); 0 by default.
    pub note: u64,
    /// Unique id of this span within its recorder (never 0).
    pub span_id: u64,
    /// Id of the causal parent span; 0 = root (no parent).
    pub parent: u64,
    /// Trace (causal tree) this span belongs to; 0 = untraced.
    pub trace: u64,
}

/// One point-in-time event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Static event name, e.g. `"pathfinder.overused"`.
    pub name: &'static str,
    /// Nanoseconds since the recorder was created.
    pub at_ns: u64,
    /// Event value (an iteration's congestion count, a worker id, …).
    pub value: u64,
}

#[derive(Default)]
struct Collector {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    span_stats: BTreeMap<&'static str, SpanStat>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    spans_dropped: u64,
    events_dropped: u64,
    /// Streaming destination for raw spans: when set, a full span buffer
    /// is flushed through it as a JSON chunk instead of shedding.
    sink: Option<Box<dyn std::io::Write + Send>>,
    /// Raw span records already streamed out (they are no longer in
    /// `spans` but were observed and exported).
    spans_flushed: u64,
    /// Chunks written so far (also the next chunk's sequence number).
    chunk_seq: u64,
}

impl Collector {
    /// Stream the buffered raw spans through the sink as one JSON chunk.
    /// Returns `true` only when the whole chunk (write **and** flush)
    /// succeeded; any error — including a partial write that dies midway
    /// through the chunk — returns `false`, leaves the span buffer
    /// intact (those spans were *not* exported; the next report still
    /// holds them), and permanently reverts the recorder to shedding,
    /// counted under `obs.span_sink_errors`. Spans are never lost
    /// silently either way.
    fn flush_spans(&mut self, epoch_unix_nanos: u64) -> bool {
        if self.spans.is_empty() {
            return false;
        }
        let Some(sink) = self.sink.as_mut() else {
            return false;
        };
        let chunk = json::span_chunk_json(self.chunk_seq, epoch_unix_nanos, &self.spans);
        match sink.write_all(chunk.as_bytes()).and_then(|()| sink.flush()) {
            Ok(()) => {
                self.chunk_seq += 1;
                self.spans_flushed += self.spans.len() as u64;
                *self.counters.entry("obs.span_chunks").or_insert(0) += 1;
                self.spans.clear();
                true
            }
            Err(_) => {
                // The file may now hold a torn line; dropping the sink
                // guarantees nothing is appended after it, so everything
                // up to the last complete line stays parseable.
                self.sink = None;
                *self.counters.entry("obs.span_sink_errors").or_insert(0) += 1;
                false
            }
        }
    }
}

struct Shared {
    epoch: Instant,
    /// Wall-clock time of `epoch` as nanoseconds since the Unix epoch,
    /// captured once at recorder creation so separate processes/replays
    /// can time-align their monotonic span timestamps.
    epoch_unix_nanos: u64,
    /// Span-id allocator; ids start at 1 (0 means "no span").
    next_span: AtomicU64,
    /// Trace-id allocator; ids start at 1 (0 means "untraced").
    next_trace: AtomicU64,
    /// Typed metric registry (see [`registry`]).
    registry: registry::Registry,
    state: Mutex<Collector>,
}

thread_local! {
    static DEPTH: Cell<u16> = const { Cell::new(0) };
    static THREAD_ID: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Ambient causal position of the current thread: `(trace_id,
    /// span_id)` of the innermost live span. New ambient spans parent
    /// under it; span guards save and restore it LIFO.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        if id.get() == u64::MAX {
            id.set(NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

/// Handle to the observability collector. Cloning is cheap (an `Arc`
/// clone when enabled, a copy of `None` when disabled) and all clones
/// feed the same collector, which is how `std::thread::scope` workers
/// report into the run's aggregate.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Recorder({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Recorder {
    /// A recorder on which every operation is a no-op. This is the
    /// default state: hot router paths pay one `Option` branch and
    /// nothing else (verified by the E2 bench-regression gate).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A live recorder with a fresh collector.
    pub fn enabled() -> Self {
        let epoch_unix_nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        Recorder {
            inner: Some(Arc::new(Shared {
                epoch: Instant::now(),
                epoch_unix_nanos,
                next_span: AtomicU64::new(1),
                next_trace: AtomicU64::new(1),
                registry: registry::Registry::default(),
                state: Mutex::new(Collector::default()),
            })),
        }
    }

    /// Enabled iff `JROUTE_OBS` is set to `1`, `true`, `on` or `yes`.
    pub fn from_env() -> Self {
        match std::env::var(OBS_ENV) {
            Ok(v) if matches!(v.trim(), "1" | "true" | "on" | "yes") => Self::enabled(),
            _ => Self::disabled(),
        }
    }

    /// Whether this recorder collects anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a span that inherits its causal position ambiently: it
    /// joins the trace of the innermost live span on this thread and
    /// parents under it (untraced root if there is none). Disabled
    /// recorders return an inert guard without reading the clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { live: None },
            Some(shared) => {
                let (trace, parent) = CURRENT.with(|c| c.get());
                Self::open(shared, name, trace, parent)
            }
        }
    }

    /// Start a span that begins a **new trace**: a fresh `trace_id` is
    /// allocated and the span has no parent, regardless of what is live
    /// on this thread. The svc layer opens one of these per request and
    /// per batch; everything nested under it — on any thread, via
    /// [`Recorder::span_ctx`] — links back to it.
    #[inline]
    pub fn span_root(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { live: None },
            Some(shared) => {
                let trace = shared.next_trace.fetch_add(1, Ordering::Relaxed);
                Self::open(shared, name, trace, 0)
            }
        }
    }

    /// Start a span at an **explicit causal position**, ignoring the
    /// thread-ambient one: the cross-thread boundary primitive. Pass the
    /// [`TraceCtx`] captured from the originating span (see
    /// [`Span::ctx`]) when a work item is executed by a different thread
    /// than the one that created it — a stolen deque entry, a parked
    /// retry, a `Replace` chain-transfer. Spans nested inside the guard
    /// on this thread then inherit the restored position ambiently.
    #[inline]
    pub fn span_ctx(&self, name: &'static str, ctx: TraceCtx) -> Span {
        match &self.inner {
            None => Span { live: None },
            Some(shared) => Self::open(shared, name, ctx.trace_id, ctx.parent_span_id),
        }
    }

    fn open(shared: &Arc<Shared>, name: &'static str, trace: u64, parent: u64) -> Span {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        });
        let span_id = shared.next_span.fetch_add(1, Ordering::Relaxed);
        let saved = CURRENT.with(|c| c.replace((trace, span_id)));
        Span {
            live: Some(SpanLive {
                shared: Arc::clone(shared),
                name,
                thread: thread_id(),
                depth,
                start: Instant::now(),
                note: 0,
                span_id,
                parent,
                trace,
                saved,
            }),
        }
    }

    /// Resolve a typed sharded [`Counter`] handle (see [`registry`]).
    /// Resolution takes a lock; recording through the handle never does.
    /// Disabled recorders hand out inert handles. Names may be composed
    /// at run time (see [`labeled`] for per-tenant families).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::disabled(),
            Some(shared) => shared.registry.counter(name),
        }
    }

    /// Resolve a typed [`Gauge`] handle (see [`registry`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::disabled(),
            Some(shared) => shared.registry.gauge(name),
        }
    }

    /// Resolve a typed sharded [`Histo`] handle (see [`registry`]).
    pub fn histogram(&self, name: &str) -> Histo {
        match &self.inner {
            None => Histo::disabled(),
            Some(shared) => shared.registry.histogram(name),
        }
    }

    /// A stable identity for this recorder's collector (0 when
    /// disabled). Callers that cache resolved registry handles key the
    /// cache on this, so a scratch structure reused across recorders
    /// re-resolves instead of feeding the wrong collector.
    #[inline]
    pub fn id(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(shared) => Arc::as_ptr(shared) as usize,
        }
    }

    /// Monotonic nanoseconds since this recorder was created (0 when
    /// disabled) — the timebase of every span/event timestamp.
    pub fn elapsed_ns(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(shared) => shared.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        }
    }

    /// Wall-clock time of this recorder's epoch, as nanoseconds since
    /// the Unix epoch (0 when disabled). Exported in every JSON/JSONL
    /// header so traces from separate processes can be time-aligned.
    pub fn epoch_unix_nanos(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(shared) => shared.epoch_unix_nanos,
        }
    }

    /// Add `delta` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(shared) = &self.inner {
            if delta != 0 {
                *shared
                    .state
                    .lock()
                    .unwrap()
                    .counters
                    .entry(name)
                    .or_insert(0) += delta;
            }
        }
    }

    /// Record `value` into the histogram `name`.
    #[inline]
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(shared) = &self.inner {
            shared
                .state
                .lock()
                .unwrap()
                .hists
                .entry(name)
                .or_default()
                .record(value);
        }
    }

    /// Record a duration (as nanoseconds) into the histogram `name`. By
    /// convention latency histogram names end in `_ns`.
    #[inline]
    pub fn record_duration(&self, name: &'static str, d: Duration) {
        self.record(name, d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Record a point-in-time event with a value.
    #[inline]
    pub fn event(&self, name: &'static str, value: u64) {
        if let Some(shared) = &self.inner {
            let at_ns = shared.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let mut st = shared.state.lock().unwrap();
            if st.events.len() < MAX_EVENTS {
                st.events.push(EventRecord { name, at_ns, value });
            } else {
                st.events_dropped += 1;
            }
        }
    }

    /// Snapshot everything collected so far into a [`Report`]. The
    /// collector keeps accumulating; call [`Recorder::reset`] to start a
    /// fresh window.
    pub fn report(&self) -> Report {
        match &self.inner {
            None => Report::default(),
            Some(shared) => {
                let st = shared.state.lock().unwrap();
                let mut counters: Vec<(String, u64)> = st
                    .counters
                    .iter()
                    .map(|(k, v)| (k.to_string(), *v))
                    .collect();
                let mut hists: Vec<HistRow> = st
                    .hists
                    .iter()
                    .map(|(k, h)| HistRow {
                        name: k.to_string(),
                        hist: h.clone(),
                    })
                    .collect();
                // Registry metrics share the report namespace with the
                // string-keyed ones, whichever API recorded them.
                shared.registry.fold_into(&mut counters, &mut hists);
                Report {
                    enabled: true,
                    epoch_unix_nanos: shared.epoch_unix_nanos,
                    counters,
                    hists,
                    span_stats: st
                        .span_stats
                        .iter()
                        .map(|(k, s)| (k.to_string(), s.clone()))
                        .collect(),
                    spans: st.spans.clone(),
                    events: st.events.clone(),
                    spans_dropped: st.spans_dropped,
                    events_dropped: st.events_dropped,
                    spans_flushed: st.spans_flushed,
                }
            }
        }
    }

    /// Drop everything collected so far (the epoch is retained, so
    /// timestamps stay monotonic across windows). The span sink, if any,
    /// is dropped with the rest of the state. Registry *values* are
    /// zeroed but registrations survive, so handles already resolved by
    /// callers keep feeding this recorder.
    pub fn reset(&self) {
        if let Some(shared) = &self.inner {
            *shared.state.lock().unwrap() = Collector::default();
            shared.registry.reset_values();
        }
    }

    /// Install a streaming destination for raw spans. When the raw-span
    /// buffer reaches [`MAX_SPANS`], the recorder flushes the buffer
    /// through the sink as one JSON chunk (see
    /// [`json::span_chunk_json`]) and keeps recording, instead of
    /// shedding records. Without a sink the old behaviour stands:
    /// overflow sheds and `obs.spans_shed` counts it. The write happens
    /// under the collector lock, so hand the recorder a cheap sink (a
    /// buffered file, a byte vector) rather than a blocking socket.
    ///
    /// No-op on a disabled recorder.
    pub fn set_span_sink(&self, sink: impl std::io::Write + Send + 'static) {
        if let Some(shared) = &self.inner {
            shared.state.lock().unwrap().sink = Some(Box::new(sink));
        }
    }

    /// Flush any buffered raw spans through the installed sink now (the
    /// final partial chunk of a run). Returns `true` only if the whole
    /// chunk was written and flushed; `false` without a sink, on an
    /// empty buffer, on a disabled recorder, or on any write error
    /// (including partial writes — see [`Collector::flush_spans`]).
    pub fn flush_spans(&self) -> bool {
        match &self.inner {
            None => false,
            Some(shared) => shared
                .state
                .lock()
                .unwrap()
                .flush_spans(shared.epoch_unix_nanos),
        }
    }
}

struct SpanLive {
    shared: Arc<Shared>,
    name: &'static str,
    thread: u64,
    depth: u16,
    start: Instant,
    note: u64,
    span_id: u64,
    parent: u64,
    trace: u64,
    /// Thread-ambient `(trace, span)` to restore on drop.
    saved: (u64, u64),
}

/// RAII span guard returned by [`Recorder::span`]. Dropping it records
/// the span; an inert guard (disabled recorder) does nothing.
pub struct Span {
    live: Option<SpanLive>,
}

impl Span {
    /// Attach a payload to the span record (items routed, segments
    /// visited, worker index, …). Last call wins.
    #[inline]
    pub fn note(&mut self, value: u64) {
        if let Some(live) = &mut self.live {
            live.note = value;
        }
    }

    /// Whether this guard is actually recording.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }

    /// Capture this span's causal identity for hand-off to another
    /// thread or queue: work opened with
    /// [`Recorder::span_ctx`](crate::Recorder::span_ctx) on the returned
    /// context becomes this span's child in the same trace, wherever it
    /// runs. Inert guards return [`TraceCtx::NONE`].
    #[inline]
    pub fn ctx(&self) -> TraceCtx {
        match &self.live {
            None => TraceCtx::NONE,
            Some(live) => TraceCtx {
                trace_id: live.trace,
                parent_span_id: live.span_id,
            },
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let dur = live.start.elapsed();
        DEPTH.with(|d| d.set(live.depth));
        CURRENT.with(|c| c.set(live.saved));
        let rec = SpanRecord {
            name: live.name,
            thread: live.thread,
            depth: live.depth,
            start_ns: live
                .start
                .duration_since(live.shared.epoch)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64,
            dur_ns: dur.as_nanos().min(u128::from(u64::MAX)) as u64,
            note: live.note,
            span_id: live.span_id,
            parent: live.parent,
            trace: live.trace,
        };
        let epoch_unix_nanos = live.shared.epoch_unix_nanos;
        let mut st = live.shared.state.lock().unwrap();
        let stat = st.span_stats.entry(live.name).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(rec.dur_ns);
        stat.max_ns = stat.max_ns.max(rec.dur_ns);
        if st.spans.len() >= MAX_SPANS {
            // Prefer streaming a chunk out over shedding; flush_spans
            // makes room unless there is no (working) sink.
            st.flush_spans(epoch_unix_nanos);
        }
        if st.spans.len() < MAX_SPANS {
            st.spans.push(rec);
        } else {
            // Shed loudly: the counter surfaces in every report and the
            // JSON export flags the run as truncated.
            st.spans_dropped += 1;
            *st.counters.entry("obs.spans_shed").or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let mut s = rec.span("noop");
            assert!(!s.is_recording());
            s.note(7);
        }
        rec.count("c", 3);
        rec.record("h", 9);
        rec.event("e", 1);
        let rep = rec.report();
        assert!(!rep.enabled);
        assert!(rep.counters.is_empty() && rep.spans.is_empty() && rep.events.is_empty());
    }

    #[test]
    fn counters_histograms_events_accumulate() {
        let rec = Recorder::enabled();
        rec.count("pips", 2);
        rec.count("pips", 3);
        rec.record("lat_ns", 100);
        rec.record("lat_ns", 200);
        rec.event("iter", 42);
        let rep = rec.report();
        assert_eq!(rep.counter("pips"), Some(5));
        let h = rep.hist("lat_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(rep.events.len(), 1);
        assert_eq!(rep.events[0].value, 42);
    }

    #[test]
    fn spans_nest_per_thread() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("outer");
            {
                let mut b = rec.span("inner");
                b.note(11);
            }
            let _c = rec.span("sibling");
        }
        let rep = rec.report();
        let inner = rep.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = rep.spans.iter().find(|s| s.name == "outer").unwrap();
        let sibling = rep.spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(sibling.depth, 1);
        assert_eq!(inner.note, 11);
        assert!(outer.dur_ns >= inner.dur_ns);
        // Depth unwound fully.
        DEPTH.with(|d| assert_eq!(d.get(), 0));
    }

    #[test]
    fn ambient_spans_inherit_trace_and_parent() {
        let rec = Recorder::enabled();
        {
            let root = rec.span_root("request");
            let root_ctx = root.ctx();
            assert!(root_ctx.trace_id != 0 && root_ctx.parent_span_id != 0);
            {
                let child = rec.span("inner");
                let grand = rec.span("leaf");
                assert_eq!(child.ctx().trace_id, root_ctx.trace_id);
                assert_eq!(grand.ctx().trace_id, root_ctx.trace_id);
            }
            let sibling = rec.span("sibling");
            assert_eq!(sibling.ctx().trace_id, root_ctx.trace_id);
        }
        // With the root closed, new spans are untraced roots again.
        let after = rec.span("after");
        assert_eq!(after.ctx().trace_id, 0);
        drop(after);
        let rep = rec.report();
        let by_name = |n: &str| rep.spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("request");
        let inner = by_name("inner");
        let leaf = by_name("leaf");
        let sibling = by_name("sibling");
        assert_eq!(root.parent, 0);
        assert_eq!(inner.parent, root.span_id);
        assert_eq!(leaf.parent, inner.span_id);
        assert_eq!(
            sibling.parent, root.span_id,
            "ambient position restored LIFO"
        );
        for s in [root, inner, leaf, sibling] {
            assert_eq!(s.trace, root.trace);
            assert!(s.span_id != 0);
        }
        assert_eq!(by_name("after").trace, 0);
        CURRENT.with(|c| assert_eq!(c.get(), (0, 0), "ambient state fully unwound"));
    }

    #[test]
    fn span_ctx_links_across_threads() {
        let rec = Recorder::enabled();
        let ctx = {
            let root = rec.span_root("submit");
            root.ctx()
        };
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let _exec = rec.span_ctx("exec", ctx);
                    let _nested = rec.span("nested"); // ambient under exec
                });
            }
        });
        let rep = rec.report();
        let root = rep.spans.iter().find(|s| s.name == "submit").unwrap();
        for exec in rep.spans.iter().filter(|s| s.name == "exec") {
            assert_eq!(exec.trace, root.trace);
            assert_eq!(exec.parent, root.span_id);
            assert_ne!(exec.thread, root.thread, "executed on a worker thread");
            let nested = rep
                .spans
                .iter()
                .find(|s| s.name == "nested" && s.thread == exec.thread)
                .unwrap();
            assert_eq!(nested.trace, root.trace);
            assert_eq!(nested.parent, exec.span_id);
        }
    }

    #[test]
    fn distinct_roots_get_distinct_traces() {
        let rec = Recorder::enabled();
        let a = rec.span_root("a").ctx();
        let b = rec.span_root("b").ctx();
        assert_ne!(a.trace_id, b.trace_id);
        assert!(TraceCtx::NONE.is_none() && !a.is_none());
    }

    #[test]
    fn scoped_threads_report_into_one_aggregate() {
        let rec = Recorder::enabled();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let mut s = rec.span("worker");
                    s.note(w);
                    rec.count("work", 1);
                });
            }
        });
        let rep = rec.report();
        assert_eq!(rep.counter("work"), Some(4));
        assert_eq!(rep.span_count("worker"), 4);
        let threads: std::collections::HashSet<u64> = rep.spans.iter().map(|s| s.thread).collect();
        assert_eq!(threads.len(), 4, "each worker gets its own thread id");
    }

    #[test]
    fn span_cap_sheds_raw_records_but_keeps_stats() {
        let rec = Recorder::enabled();
        for _ in 0..(MAX_SPANS + 10) {
            let _s = rec.span("tick");
        }
        let rep = rec.report();
        assert_eq!(rep.spans.len(), MAX_SPANS);
        assert_eq!(rep.spans_dropped, 10);
        assert_eq!(rep.span_count("tick"), (MAX_SPANS + 10) as u64);
        // Shedding is not silent: it shows up as a counter too.
        assert_eq!(rep.counter("obs.spans_shed"), Some(10));
    }

    /// A `Write` sink tests can inspect after the recorder is done with it.
    #[derive(Clone, Default)]
    struct VecSink(std::sync::Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for VecSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Always-failing sink, for the error-reversion path.
    struct BrokenSink;

    impl std::io::Write for BrokenSink {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("sink closed"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn span_sink_flushes_chunks_instead_of_shedding() {
        let rec = Recorder::enabled();
        let sink = VecSink::default();
        rec.set_span_sink(sink.clone());
        for _ in 0..(MAX_SPANS + 10) {
            let _s = rec.span("tick");
        }
        let rep = rec.report();
        // The overflow streamed out as a chunk; nothing was shed.
        assert_eq!(rep.spans_dropped, 0);
        assert_eq!(rep.counter("obs.spans_shed"), None);
        assert_eq!(rep.counter("obs.span_chunks"), Some(1));
        assert_eq!(rep.spans_flushed, MAX_SPANS as u64);
        assert_eq!(rep.spans.len(), 10);
        assert_eq!(rep.span_count("tick"), (MAX_SPANS + 10) as u64);

        // An explicit flush drains the partial tail as a second chunk.
        assert!(rec.flush_spans());
        let rep = rec.report();
        assert_eq!(rep.spans.len(), 0);
        assert_eq!(rep.spans_flushed, (MAX_SPANS + 10) as u64);
        assert_eq!(rep.counter("obs.span_chunks"), Some(2));

        // Each chunk is one parseable JSON line with sequential ids.
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).expect("chunk parses");
            assert_eq!(v.get("chunk").and_then(|c| c.as_f64()), Some(i as f64));
            let spans = v.get("spans").and_then(|s| s.as_arr()).unwrap();
            assert_eq!(spans.len(), if i == 0 { MAX_SPANS } else { 10 });
            assert_eq!(spans[0].get("name").and_then(|n| n.as_str()), Some("tick"));
        }
    }

    #[test]
    fn broken_span_sink_reverts_to_shedding() {
        let rec = Recorder::enabled();
        rec.set_span_sink(BrokenSink);
        for _ in 0..(MAX_SPANS + 10) {
            let _s = rec.span("tick");
        }
        let rep = rec.report();
        assert_eq!(rep.counter("obs.span_sink_errors"), Some(1));
        assert_eq!(rep.spans_flushed, 0);
        assert_eq!(rep.spans_dropped, 10);
        assert_eq!(rep.counter("obs.spans_shed"), Some(10));
        // The sink is gone; an explicit flush is a no-op.
        assert!(!rec.flush_spans());
    }

    /// A sink that accepts a few bytes and then dies mid-chunk — the
    /// partial-write case: `write_all` makes progress, then errors.
    struct PartialSink {
        budget: usize,
    }

    impl std::io::Write for PartialSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.budget == 0 {
                return Err(std::io::Error::other("disk full"));
            }
            let n = buf.len().min(self.budget);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A sink whose writes succeed but whose final `flush` fails — the
    /// other half of the partial-write asymmetry.
    struct FlushFailSink;

    impl std::io::Write for FlushFailSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("flush failed"))
        }
    }

    #[test]
    fn partial_write_reports_failure_not_success() {
        let rec = Recorder::enabled();
        rec.set_span_sink(PartialSink { budget: 10 });
        {
            let _s = rec.span("tick");
        }
        assert!(
            !rec.flush_spans(),
            "a chunk that only partially reached the sink must not count as flushed"
        );
        let rep = rec.report();
        assert_eq!(rep.counter("obs.span_sink_errors"), Some(1));
        assert_eq!(rep.spans_flushed, 0);
        assert_eq!(rep.spans.len(), 1, "the un-exported span is retained");
        // The sink is gone; a second flush is a plain no-op and must not
        // double-count the error.
        assert!(!rec.flush_spans());
        assert_eq!(rec.report().counter("obs.span_sink_errors"), Some(1));
    }

    #[test]
    fn failed_flush_after_successful_write_reports_failure() {
        let rec = Recorder::enabled();
        rec.set_span_sink(FlushFailSink);
        {
            let _s = rec.span("tick");
        }
        assert!(
            !rec.flush_spans(),
            "write ok + flush error is still a failure"
        );
        let rep = rec.report();
        assert_eq!(rep.counter("obs.span_sink_errors"), Some(1));
        assert_eq!(rep.spans_flushed, 0);
        assert_eq!(rep.spans.len(), 1);
    }

    #[test]
    fn enabled_recorder_stamps_a_wall_clock_epoch() {
        let rec = Recorder::enabled();
        assert!(rec.epoch_unix_nanos() > 0);
        assert_eq!(Recorder::disabled().epoch_unix_nanos(), 0);
        assert_eq!(rec.report().epoch_unix_nanos, rec.epoch_unix_nanos());
    }

    #[test]
    fn flush_spans_without_sink_is_a_noop() {
        let rec = Recorder::enabled();
        let _s = rec.span("tick");
        drop(_s);
        assert!(!rec.flush_spans());
        assert_eq!(rec.report().spans.len(), 1);
    }

    #[test]
    fn reset_clears_but_keeps_recording() {
        let rec = Recorder::enabled();
        rec.count("a", 1);
        rec.reset();
        rec.count("b", 2);
        let rep = rec.report();
        assert_eq!(rep.counter("a"), None);
        assert_eq!(rep.counter("b"), Some(2));
    }

    #[test]
    fn from_env_respects_flag_values() {
        // Sequential within one test to avoid env races with other tests.
        std::env::set_var(OBS_ENV, "1");
        assert!(Recorder::from_env().is_enabled());
        std::env::set_var(OBS_ENV, "0");
        assert!(!Recorder::from_env().is_enabled());
        std::env::remove_var(OBS_ENV);
        assert!(!Recorder::from_env().is_enabled());
    }
}
