//! # jroute-obs — a hermetic tracing/metrics layer for the router stack
//!
//! The paper's §3.5 debug support (`trace`/`reverseTrace`, BoardScope) is
//! about *seeing* what the run-time router did to the device; this crate
//! is the same idea applied to the router's own internals. It provides:
//!
//! * [`Recorder`] — a cloneable handle that is either **disabled** (every
//!   operation is a branch on a `None` and nothing else — no clock reads,
//!   no allocation, no locking) or **enabled** (an `Arc`-shared collector
//!   guarded by a mutex, safe to use from `std::thread::scope` workers);
//! * [`Span`] — an RAII guard measuring one operation with monotonic
//!   timing; spans nest per thread, so the finished records form a tree
//!   (`route` → `maze.search` → …) that [`Report::span_tree`] renders;
//! * typed counters and log2-bucketed [`Histogram`]s with p50/p90/p99
//!   summaries ([`hist`]);
//! * a human-readable [`Report`] table and a hand-rolled JSON exporter
//!   ([`json`]) writing `target/obs-json/OBS_<run>.json` in the same
//!   style as the `harness::bench` reports.
//!
//! The crate is zero-dependency and `forbid(unsafe_code)`, matching the
//! workspace's hermetic-build policy.
//!
//! ```
//! use jroute_obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! {
//!     let mut outer = rec.span("request");
//!     let _inner = rec.span("lookup");
//!     rec.count("cache.miss", 1);
//!     rec.record("payload.bytes", 512);
//!     outer.note(1); // arbitrary payload, e.g. items handled
//! }
//! let report = rec.report();
//! assert_eq!(report.counter("cache.miss"), Some(1));
//! assert_eq!(report.span_count("lookup"), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hist;
pub mod json;
pub mod report;
pub mod rotate;

pub use hist::Histogram;
pub use report::{HistRow, Report, SpanStat};
pub use rotate::RotatingFileSink;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Raw-span retention cap: beyond this the tree view saturates (aggregate
/// per-name statistics keep counting) and `spans_dropped` records how
/// many records were shed. Bounds memory on long bench runs.
pub const MAX_SPANS: usize = 16_384;

/// Event retention cap, same policy as [`MAX_SPANS`].
pub const MAX_EVENTS: usize = 16_384;

/// Environment variable consulted by [`Recorder::from_env`].
pub const OBS_ENV: &str = "JROUTE_OBS";

/// One finished span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, e.g. `"router.route"`.
    pub name: &'static str,
    /// Discriminates recording threads (dense ids in creation order).
    pub thread: u64,
    /// Nesting depth within the recording thread at start time.
    pub depth: u16,
    /// Start, in nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Caller-supplied payload (see [`Span::note`]); 0 by default.
    pub note: u64,
}

/// One point-in-time event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Static event name, e.g. `"pathfinder.overused"`.
    pub name: &'static str,
    /// Nanoseconds since the recorder was created.
    pub at_ns: u64,
    /// Event value (an iteration's congestion count, a worker id, …).
    pub value: u64,
}

#[derive(Default)]
struct Collector {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    span_stats: BTreeMap<&'static str, SpanStat>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    spans_dropped: u64,
    events_dropped: u64,
    /// Streaming destination for raw spans: when set, a full span buffer
    /// is flushed through it as a JSON chunk instead of shedding.
    sink: Option<Box<dyn std::io::Write + Send>>,
    /// Raw span records already streamed out (they are no longer in
    /// `spans` but were observed and exported).
    spans_flushed: u64,
    /// Chunks written so far (also the next chunk's sequence number).
    chunk_seq: u64,
}

impl Collector {
    /// Stream the buffered raw spans through the sink as one JSON chunk.
    /// A sink write error permanently reverts the recorder to shedding
    /// (counted under `obs.span_sink_errors`); spans are never lost
    /// silently either way.
    fn flush_spans(&mut self) -> bool {
        if self.spans.is_empty() {
            return false;
        }
        let Some(sink) = self.sink.as_mut() else {
            return false;
        };
        let chunk = json::span_chunk_json(self.chunk_seq, &self.spans);
        match sink.write_all(chunk.as_bytes()).and_then(|()| sink.flush()) {
            Ok(()) => {
                self.chunk_seq += 1;
                self.spans_flushed += self.spans.len() as u64;
                *self.counters.entry("obs.span_chunks").or_insert(0) += 1;
                self.spans.clear();
                true
            }
            Err(_) => {
                self.sink = None;
                *self.counters.entry("obs.span_sink_errors").or_insert(0) += 1;
                false
            }
        }
    }
}

struct Shared {
    epoch: Instant,
    state: Mutex<Collector>,
}

thread_local! {
    static DEPTH: Cell<u16> = const { Cell::new(0) };
    static THREAD_ID: Cell<u64> = const { Cell::new(u64::MAX) };
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        if id.get() == u64::MAX {
            id.set(NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

/// Handle to the observability collector. Cloning is cheap (an `Arc`
/// clone when enabled, a copy of `None` when disabled) and all clones
/// feed the same collector, which is how `std::thread::scope` workers
/// report into the run's aggregate.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Recorder({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Recorder {
    /// A recorder on which every operation is a no-op. This is the
    /// default state: hot router paths pay one `Option` branch and
    /// nothing else (verified by the E2 bench-regression gate).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A live recorder with a fresh collector.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Shared {
                epoch: Instant::now(),
                state: Mutex::new(Collector::default()),
            })),
        }
    }

    /// Enabled iff `JROUTE_OBS` is set to `1`, `true`, `on` or `yes`.
    pub fn from_env() -> Self {
        match std::env::var(OBS_ENV) {
            Ok(v) if matches!(v.trim(), "1" | "true" | "on" | "yes") => Self::enabled(),
            _ => Self::disabled(),
        }
    }

    /// Whether this recorder collects anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a span. Disabled recorders return an inert guard without
    /// reading the clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { live: None },
            Some(shared) => {
                let depth = DEPTH.with(|d| {
                    let v = d.get();
                    d.set(v.saturating_add(1));
                    v
                });
                Span {
                    live: Some(SpanLive {
                        shared: Arc::clone(shared),
                        name,
                        thread: thread_id(),
                        depth,
                        start: Instant::now(),
                        note: 0,
                    }),
                }
            }
        }
    }

    /// Add `delta` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(shared) = &self.inner {
            if delta != 0 {
                *shared
                    .state
                    .lock()
                    .unwrap()
                    .counters
                    .entry(name)
                    .or_insert(0) += delta;
            }
        }
    }

    /// Record `value` into the histogram `name`.
    #[inline]
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(shared) = &self.inner {
            shared
                .state
                .lock()
                .unwrap()
                .hists
                .entry(name)
                .or_default()
                .record(value);
        }
    }

    /// Record a duration (as nanoseconds) into the histogram `name`. By
    /// convention latency histogram names end in `_ns`.
    #[inline]
    pub fn record_duration(&self, name: &'static str, d: Duration) {
        self.record(name, d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Record a point-in-time event with a value.
    #[inline]
    pub fn event(&self, name: &'static str, value: u64) {
        if let Some(shared) = &self.inner {
            let at_ns = shared.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let mut st = shared.state.lock().unwrap();
            if st.events.len() < MAX_EVENTS {
                st.events.push(EventRecord { name, at_ns, value });
            } else {
                st.events_dropped += 1;
            }
        }
    }

    /// Snapshot everything collected so far into a [`Report`]. The
    /// collector keeps accumulating; call [`Recorder::reset`] to start a
    /// fresh window.
    pub fn report(&self) -> Report {
        match &self.inner {
            None => Report::default(),
            Some(shared) => {
                let st = shared.state.lock().unwrap();
                Report {
                    enabled: true,
                    counters: st
                        .counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), *v))
                        .collect(),
                    hists: st
                        .hists
                        .iter()
                        .map(|(k, h)| HistRow {
                            name: k.to_string(),
                            hist: h.clone(),
                        })
                        .collect(),
                    span_stats: st
                        .span_stats
                        .iter()
                        .map(|(k, s)| (k.to_string(), s.clone()))
                        .collect(),
                    spans: st.spans.clone(),
                    events: st.events.clone(),
                    spans_dropped: st.spans_dropped,
                    events_dropped: st.events_dropped,
                    spans_flushed: st.spans_flushed,
                }
            }
        }
    }

    /// Drop everything collected so far (the epoch is retained, so
    /// timestamps stay monotonic across windows). The span sink, if any,
    /// is dropped with the rest of the state.
    pub fn reset(&self) {
        if let Some(shared) = &self.inner {
            *shared.state.lock().unwrap() = Collector::default();
        }
    }

    /// Install a streaming destination for raw spans. When the raw-span
    /// buffer reaches [`MAX_SPANS`], the recorder flushes the buffer
    /// through the sink as one JSON chunk (see
    /// [`json::span_chunk_json`]) and keeps recording, instead of
    /// shedding records. Without a sink the old behaviour stands:
    /// overflow sheds and `obs.spans_shed` counts it. The write happens
    /// under the collector lock, so hand the recorder a cheap sink (a
    /// buffered file, a byte vector) rather than a blocking socket.
    ///
    /// No-op on a disabled recorder.
    pub fn set_span_sink(&self, sink: impl std::io::Write + Send + 'static) {
        if let Some(shared) = &self.inner {
            shared.state.lock().unwrap().sink = Some(Box::new(sink));
        }
    }

    /// Flush any buffered raw spans through the installed sink now (the
    /// final partial chunk of a run). Returns `true` if a chunk was
    /// written. No-op without a sink, on an empty buffer, or on a
    /// disabled recorder.
    pub fn flush_spans(&self) -> bool {
        match &self.inner {
            None => false,
            Some(shared) => shared.state.lock().unwrap().flush_spans(),
        }
    }
}

struct SpanLive {
    shared: Arc<Shared>,
    name: &'static str,
    thread: u64,
    depth: u16,
    start: Instant,
    note: u64,
}

/// RAII span guard returned by [`Recorder::span`]. Dropping it records
/// the span; an inert guard (disabled recorder) does nothing.
pub struct Span {
    live: Option<SpanLive>,
}

impl Span {
    /// Attach a payload to the span record (items routed, segments
    /// visited, worker index, …). Last call wins.
    #[inline]
    pub fn note(&mut self, value: u64) {
        if let Some(live) = &mut self.live {
            live.note = value;
        }
    }

    /// Whether this guard is actually recording.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let dur = live.start.elapsed();
        DEPTH.with(|d| d.set(live.depth));
        let rec = SpanRecord {
            name: live.name,
            thread: live.thread,
            depth: live.depth,
            start_ns: live
                .start
                .duration_since(live.shared.epoch)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64,
            dur_ns: dur.as_nanos().min(u128::from(u64::MAX)) as u64,
            note: live.note,
        };
        let mut st = live.shared.state.lock().unwrap();
        let stat = st.span_stats.entry(live.name).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(rec.dur_ns);
        stat.max_ns = stat.max_ns.max(rec.dur_ns);
        if st.spans.len() >= MAX_SPANS {
            // Prefer streaming a chunk out over shedding; flush_spans
            // makes room unless there is no (working) sink.
            st.flush_spans();
        }
        if st.spans.len() < MAX_SPANS {
            st.spans.push(rec);
        } else {
            // Shed loudly: the counter surfaces in every report and the
            // JSON export flags the run as truncated.
            st.spans_dropped += 1;
            *st.counters.entry("obs.spans_shed").or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let mut s = rec.span("noop");
            assert!(!s.is_recording());
            s.note(7);
        }
        rec.count("c", 3);
        rec.record("h", 9);
        rec.event("e", 1);
        let rep = rec.report();
        assert!(!rep.enabled);
        assert!(rep.counters.is_empty() && rep.spans.is_empty() && rep.events.is_empty());
    }

    #[test]
    fn counters_histograms_events_accumulate() {
        let rec = Recorder::enabled();
        rec.count("pips", 2);
        rec.count("pips", 3);
        rec.record("lat_ns", 100);
        rec.record("lat_ns", 200);
        rec.event("iter", 42);
        let rep = rec.report();
        assert_eq!(rep.counter("pips"), Some(5));
        let h = rep.hist("lat_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(rep.events.len(), 1);
        assert_eq!(rep.events[0].value, 42);
    }

    #[test]
    fn spans_nest_per_thread() {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("outer");
            {
                let mut b = rec.span("inner");
                b.note(11);
            }
            let _c = rec.span("sibling");
        }
        let rep = rec.report();
        let inner = rep.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = rep.spans.iter().find(|s| s.name == "outer").unwrap();
        let sibling = rep.spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(sibling.depth, 1);
        assert_eq!(inner.note, 11);
        assert!(outer.dur_ns >= inner.dur_ns);
        // Depth unwound fully.
        DEPTH.with(|d| assert_eq!(d.get(), 0));
    }

    #[test]
    fn scoped_threads_report_into_one_aggregate() {
        let rec = Recorder::enabled();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let mut s = rec.span("worker");
                    s.note(w);
                    rec.count("work", 1);
                });
            }
        });
        let rep = rec.report();
        assert_eq!(rep.counter("work"), Some(4));
        assert_eq!(rep.span_count("worker"), 4);
        let threads: std::collections::HashSet<u64> = rep.spans.iter().map(|s| s.thread).collect();
        assert_eq!(threads.len(), 4, "each worker gets its own thread id");
    }

    #[test]
    fn span_cap_sheds_raw_records_but_keeps_stats() {
        let rec = Recorder::enabled();
        for _ in 0..(MAX_SPANS + 10) {
            let _s = rec.span("tick");
        }
        let rep = rec.report();
        assert_eq!(rep.spans.len(), MAX_SPANS);
        assert_eq!(rep.spans_dropped, 10);
        assert_eq!(rep.span_count("tick"), (MAX_SPANS + 10) as u64);
        // Shedding is not silent: it shows up as a counter too.
        assert_eq!(rep.counter("obs.spans_shed"), Some(10));
    }

    /// A `Write` sink tests can inspect after the recorder is done with it.
    #[derive(Clone, Default)]
    struct VecSink(std::sync::Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for VecSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Always-failing sink, for the error-reversion path.
    struct BrokenSink;

    impl std::io::Write for BrokenSink {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("sink closed"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn span_sink_flushes_chunks_instead_of_shedding() {
        let rec = Recorder::enabled();
        let sink = VecSink::default();
        rec.set_span_sink(sink.clone());
        for _ in 0..(MAX_SPANS + 10) {
            let _s = rec.span("tick");
        }
        let rep = rec.report();
        // The overflow streamed out as a chunk; nothing was shed.
        assert_eq!(rep.spans_dropped, 0);
        assert_eq!(rep.counter("obs.spans_shed"), None);
        assert_eq!(rep.counter("obs.span_chunks"), Some(1));
        assert_eq!(rep.spans_flushed, MAX_SPANS as u64);
        assert_eq!(rep.spans.len(), 10);
        assert_eq!(rep.span_count("tick"), (MAX_SPANS + 10) as u64);

        // An explicit flush drains the partial tail as a second chunk.
        assert!(rec.flush_spans());
        let rep = rec.report();
        assert_eq!(rep.spans.len(), 0);
        assert_eq!(rep.spans_flushed, (MAX_SPANS + 10) as u64);
        assert_eq!(rep.counter("obs.span_chunks"), Some(2));

        // Each chunk is one parseable JSON line with sequential ids.
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).expect("chunk parses");
            assert_eq!(v.get("chunk").and_then(|c| c.as_f64()), Some(i as f64));
            let spans = v.get("spans").and_then(|s| s.as_arr()).unwrap();
            assert_eq!(spans.len(), if i == 0 { MAX_SPANS } else { 10 });
            assert_eq!(spans[0].get("name").and_then(|n| n.as_str()), Some("tick"));
        }
    }

    #[test]
    fn broken_span_sink_reverts_to_shedding() {
        let rec = Recorder::enabled();
        rec.set_span_sink(BrokenSink);
        for _ in 0..(MAX_SPANS + 10) {
            let _s = rec.span("tick");
        }
        let rep = rec.report();
        assert_eq!(rep.counter("obs.span_sink_errors"), Some(1));
        assert_eq!(rep.spans_flushed, 0);
        assert_eq!(rep.spans_dropped, 10);
        assert_eq!(rep.counter("obs.spans_shed"), Some(10));
        // The sink is gone; an explicit flush is a no-op.
        assert!(!rec.flush_spans());
    }

    #[test]
    fn flush_spans_without_sink_is_a_noop() {
        let rec = Recorder::enabled();
        let _s = rec.span("tick");
        drop(_s);
        assert!(!rec.flush_spans());
        assert_eq!(rec.report().spans.len(), 1);
    }

    #[test]
    fn reset_clears_but_keeps_recording() {
        let rec = Recorder::enabled();
        rec.count("a", 1);
        rec.reset();
        rec.count("b", 2);
        let rep = rec.report();
        assert_eq!(rep.counter("a"), None);
        assert_eq!(rep.counter("b"), Some(2));
    }

    #[test]
    fn from_env_respects_flag_values() {
        // Sequential within one test to avoid env races with other tests.
        std::env::set_var(OBS_ENV, "1");
        assert!(Recorder::from_env().is_enabled());
        std::env::set_var(OBS_ENV, "0");
        assert!(!Recorder::from_env().is_enabled());
        std::env::remove_var(OBS_ENV);
        assert!(!Recorder::from_env().is_enabled());
    }
}
