//! Log2-bucketed histograms.
//!
//! Values (latencies in nanoseconds, sizes in nodes/segments) are counted
//! into 65 power-of-two buckets, which keeps recording O(1) and the
//! memory footprint fixed while still answering the questions the
//! experiments ask: medians, tail percentiles, means. Bucket `0` holds
//! zeros; bucket `i >= 1` holds values in `[2^(i-1), 2^i - 1]`.

/// Number of buckets: zero plus one per possible leading-one position.
pub const BUCKETS: usize = 65;

/// A fixed-size log2 histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Representative value for a bucket: the midpoint of its value range.
fn bucket_mid(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        let lo = 1u64 << (i - 1);
        let hi = lo.wrapping_shl(1).wrapping_sub(1).max(lo);
        lo / 2 + hi / 2
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assemble a histogram from raw parts — how the sharded registry
    /// folds its per-shard atomics into a summary on read. `min` uses
    /// `u64::MAX` for "nothing recorded", matching [`Histogram::default`].
    pub(crate) fn from_parts(
        buckets: [u64; BUCKETS],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Self {
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// The histogram of values recorded since `earlier` was snapshotted,
    /// assuming `earlier` is a prefix of this histogram's history (same
    /// metric, older snapshot). Min/max are re-derived from the bucket
    /// deltas as bucket bounds, since exact extremes of a window are not
    /// recoverable from two cumulative snapshots.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut buckets = [0u64; BUCKETS];
        let mut min = u64::MAX;
        let mut max = 0u64;
        for (i, slot) in buckets.iter_mut().enumerate() {
            let d = self.buckets[i].saturating_sub(earlier.buckets[i]);
            *slot = d;
            if d > 0 {
                // Bucket bounds: bucket 0 is exactly {0}, bucket i >= 1
                // covers [2^(i-1), 2^i - 1].
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = if i == 0 {
                    0
                } else {
                    lo.wrapping_shl(1).wrapping_sub(1).max(lo)
                };
                min = min.min(lo);
                max = max.max(hi);
            }
        }
        if min != u64::MAX {
            // The window's values are a subset of the cumulative ones, so
            // its extremes are bounded by the cumulative extremes.
            min = min.max(self.min);
            max = max.min(self.max);
        }
        Histogram {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
        }
    }

    /// Count one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merge another histogram into this one (per-thread collectors fold
    /// into the aggregate this way).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// containing the q-th recorded value, clamped to the observed
    /// min/max (so p0/p100 are exact).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn summary_statistics_track_recorded_values() {
        let mut h = Histogram::new();
        for v in [0u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.sum(), 11_110);
        assert!((h.mean() - 2222.0).abs() < 0.5);
        // p50 lands in the bucket of 100 = [64, 127].
        let p50 = h.p50();
        assert!((64..=127).contains(&p50), "p50 = {p50}");
        // Tail percentiles are clamped to the observed max.
        assert!(h.p99() <= 10_000);
        assert!(h.p99() >= 1000, "p99 = {}", h.p99());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn merge_folds_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        a.record(7);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn delta_since_recovers_the_window() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(100);
        let snap = h.clone();
        h.record(1000);
        h.record(2000);
        let d = h.delta_since(&snap);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 3000);
        // Window extremes are bucket bounds clamped by the cumulative
        // extremes: 1000 lives in [512, 1023], 2000 in [1024, 2047].
        assert!((512..=1000).contains(&d.min()), "min = {}", d.min());
        assert!((1024..=2000).contains(&d.max()), "max = {}", d.max());
        assert!(d.p50() >= d.min() && d.p99() <= d.max());
        // An empty window is an empty histogram.
        let e = h.delta_since(&h.clone());
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), 0);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p99(), 42);
    }
}
