//! Report snapshots: aggregation, the human-readable table and the span
//! tree rendering.

use crate::hist::Histogram;
use crate::{EventRecord, SpanRecord};

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Spans finished under this name.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

impl SpanStat {
    /// Mean span duration in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A named histogram row in a report.
#[derive(Debug, Clone)]
pub struct HistRow {
    /// Histogram name.
    pub name: String,
    /// The histogram itself.
    pub hist: Histogram,
}

/// A point-in-time snapshot of everything a [`crate::Recorder`]
/// collected.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Whether the source recorder was enabled.
    pub enabled: bool,
    /// Wall-clock time of the recorder's epoch (nanoseconds since the
    /// Unix epoch; 0 when disabled). Span `start_ns` values are relative
    /// to it, so `epoch_unix_nanos + start_ns` aligns traces from
    /// separate processes or replays on one wall-clock axis.
    pub epoch_unix_nanos: u64,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub hists: Vec<HistRow>,
    /// Per-span-name aggregates, sorted by name.
    pub span_stats: Vec<(String, SpanStat)>,
    /// Raw finished spans (bounded by [`crate::MAX_SPANS`]).
    pub spans: Vec<SpanRecord>,
    /// Raw events (bounded by [`crate::MAX_EVENTS`]).
    pub events: Vec<EventRecord>,
    /// Raw spans shed once the cap was hit.
    pub spans_dropped: u64,
    /// Events shed once the cap was hit.
    pub events_dropped: u64,
    /// Raw spans streamed out through a span sink in full chunks (they
    /// are not in `spans` but were observed and exported).
    pub spans_flushed: u64,
}

impl Report {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Insert or overwrite a counter (used to publish externally-held
    /// gauges — e.g. `RouterStats` — into a snapshot before export).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v = value,
            None => {
                self.counters.push((name.to_string(), value));
                self.counters.sort();
            }
        }
    }

    /// Histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|r| r.name == name).map(|r| &r.hist)
    }

    /// Aggregate stats for a span name.
    pub fn span_stat(&self, name: &str) -> Option<&SpanStat> {
        self.span_stats
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, s)| s)
    }

    /// How many spans finished under `name`.
    pub fn span_count(&self, name: &str) -> u64 {
        self.span_stat(name).map(|s| s.count).unwrap_or(0)
    }

    /// Render the per-thread span tree: spans in start order, indented by
    /// nesting depth, with durations and notes. The quickstart of §3.5
    /// debugging for the router's own behaviour.
    pub fn span_tree(&self) -> String {
        let mut out = String::new();
        let mut threads: Vec<u64> = self.spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        for t in threads {
            let mut spans: Vec<&SpanRecord> = self.spans.iter().filter(|s| s.thread == t).collect();
            spans.sort_by_key(|s| (s.start_ns, s.depth));
            out.push_str(&format!("thread {t}:\n"));
            for s in spans {
                out.push_str(&format!(
                    "{:indent$}{} {} ({})\n",
                    "",
                    s.name,
                    fmt_ns(s.dur_ns as f64),
                    if s.note != 0 {
                        format!("note={}", s.note)
                    } else {
                        "-".to_string()
                    },
                    indent = 2 + 2 * s.depth as usize,
                ));
            }
        }
        if self.spans_dropped > 0 {
            out.push_str(&format!(
                "({} spans dropped past the cap)\n",
                self.spans_dropped
            ));
        }
        out
    }
}

pub(crate) fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl std::fmt::Display for Report {
    /// The human-readable table: counters, histogram summaries and span
    /// aggregates.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.enabled {
            return writeln!(f, "obs: recorder disabled (set JROUTE_OBS=1)");
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, v) in &self.counters {
                writeln!(f, "  {name:<32} {v:>12}")?;
            }
        }
        if !self.hists.is_empty() {
            writeln!(
                f,
                "histograms:\n  {:<32} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "min", "p50", "p90", "p99", "max"
            )?;
            for row in &self.hists {
                let h = &row.hist;
                let ns = row.name.ends_with("_ns");
                let v = |x: u64| if ns { fmt_ns(x as f64) } else { x.to_string() };
                writeln!(
                    f,
                    "  {:<32} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    row.name,
                    h.count(),
                    v(h.min()),
                    v(h.p50()),
                    v(h.p90()),
                    v(h.p99()),
                    v(h.max()),
                )?;
            }
        }
        if !self.span_stats.is_empty() {
            writeln!(
                f,
                "spans:\n  {:<32} {:>8} {:>12} {:>12} {:>12}",
                "name", "count", "total", "mean", "max"
            )?;
            for (name, s) in &self.span_stats {
                writeln!(
                    f,
                    "  {:<32} {:>8} {:>12} {:>12} {:>12}",
                    name,
                    s.count,
                    fmt_ns(s.total_ns as f64),
                    fmt_ns(s.mean_ns()),
                    fmt_ns(s.max_ns as f64),
                )?;
            }
        }
        if !self.events.is_empty() {
            writeln!(f, "events: {} recorded", self.events.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> Report {
        let rec = Recorder::enabled();
        {
            let _a = rec.span("a");
            let mut b = rec.span("b");
            b.note(3);
        }
        rec.count("n", 7);
        rec.record("lat_ns", 1500);
        rec.event("e", 1);
        rec.report()
    }

    #[test]
    fn display_contains_all_sections() {
        let text = sample().to_string();
        assert!(text.contains("counters:"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("spans:"));
        assert!(text.contains("lat_ns"));
        assert!(text.contains(" n "), "counter row present:\n{text}");
    }

    #[test]
    fn span_tree_indents_children() {
        let tree = sample().span_tree();
        let a_line = tree
            .lines()
            .find(|l| l.trim_start().starts_with("a "))
            .unwrap();
        let b_line = tree
            .lines()
            .find(|l| l.trim_start().starts_with("b "))
            .unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(b_line) > indent(a_line), "tree:\n{tree}");
        assert!(b_line.contains("note=3"));
    }

    #[test]
    fn set_counter_overwrites_and_inserts() {
        let mut rep = sample();
        rep.set_counter("n", 100);
        rep.set_counter("fresh", 5);
        assert_eq!(rep.counter("n"), Some(100));
        assert_eq!(rep.counter("fresh"), Some(5));
    }

    #[test]
    fn disabled_report_displays_a_hint() {
        let rep = Report::default();
        assert!(rep.to_string().contains("disabled"));
    }
}
