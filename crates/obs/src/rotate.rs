//! Rotating-file span sink with size caps.
//!
//! Long-running scenario soaks stream raw spans through
//! [`Recorder::set_span_sink`](crate::Recorder::set_span_sink) instead of
//! shedding them, but a single append-mode file grows without bound — a
//! thousand-step churn soak emits span chunks for hours. This sink caps
//! the damage twice over: each file holds at most `max_bytes` of chunk
//! data before the sink rotates to the next numbered file, and at most
//! `max_files` rotated files are kept on disk (the oldest is deleted as
//! each new one opens). Total disk use is therefore bounded by roughly
//! `max_bytes * max_files` no matter how long the soak runs.
//!
//! Files are named `<base>.<seq>.jsonl` with a monotonically increasing
//! sequence number, so surviving files sort chronologically and each one
//! is self-describing newline-delimited JSON (one
//! [`span_chunk_json`](crate::json::span_chunk_json) chunk per line) that
//! [`json::parse`](crate::json::parse) reads back line by line.
//!
//! Write errors propagate to the caller; installed behind a [`Recorder`]
//! that means the broken-sink fallback applies — the recorder drops the
//! sink, reverts to shedding, and counts `obs.span_sink_errors` — so a
//! full disk degrades telemetry instead of the soak.
//!
//! [`Recorder`]: crate::Recorder

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A `Write` sink that spreads its input over capped, numbered files.
#[derive(Debug)]
pub struct RotatingFileSink {
    dir: PathBuf,
    base: String,
    max_bytes: u64,
    max_files: usize,
    current: Option<File>,
    /// Bytes written to the current file.
    written: u64,
    /// Sequence number of the *next* file to open.
    seq: u64,
}

impl RotatingFileSink {
    /// Sink writing `<dir>/<base>.<seq>.jsonl` files of at most
    /// `max_bytes` each, keeping at most `max_files` on disk. The
    /// directory is created; the first file is opened lazily on first
    /// write. `max_bytes` and `max_files` are clamped to at least 1.
    pub fn new(
        dir: impl Into<PathBuf>,
        base: impl Into<String>,
        max_bytes: u64,
        max_files: usize,
    ) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(RotatingFileSink {
            dir,
            base: base.into(),
            max_bytes: max_bytes.max(1),
            max_files: max_files.max(1),
            current: None,
            written: 0,
            seq: 0,
        })
    }

    fn path_of(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{}.{seq}.jsonl", self.base))
    }

    /// Paths of the files this sink has written and not yet deleted, in
    /// sequence order. Survives the sink: computed from its counters, so
    /// it stays valid after the recorder has consumed the sink.
    pub fn files_written(dir: &Path, base: &str, max_files: usize) -> Vec<PathBuf> {
        let mut out: Vec<(u64, PathBuf)> = Vec::new();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let prefix = format!("{base}.");
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            let Some(seq) = rest.strip_suffix(".jsonl") else {
                continue;
            };
            if let Ok(seq) = seq.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
        out.sort_by_key(|&(seq, _)| seq);
        if out.len() > max_files {
            let cut = out.len() - max_files;
            out.drain(..cut);
        }
        out.into_iter().map(|(_, p)| p).collect()
    }

    /// Close the current file and open the next in sequence, deleting
    /// the file that falls off the retention window.
    fn rotate(&mut self) -> io::Result<&mut File> {
        if let Some(f) = self.current.take() {
            drop(f);
        }
        let seq = self.seq;
        self.current = Some(File::create(self.path_of(seq))?);
        self.seq += 1;
        self.written = 0;
        // Retention: with file `seq` now open, the window holds
        // `seq - max_files + 1 ..= seq`; file `seq - max_files` just
        // fell out of it. Best-effort delete — a missing file is gone
        // already.
        if let Some(dead) = seq.checked_sub(self.max_files as u64) {
            let _ = std::fs::remove_file(self.path_of(dead));
        }
        Ok(self.current.as_mut().expect("just opened"))
    }
}

impl Write for RotatingFileSink {
    /// Whole-buffer writes: the recorder hands the sink one span chunk
    /// per call, and a chunk is never split across files. Rotation
    /// happens *before* a write that would push the current file past
    /// `max_bytes` (a single chunk larger than the cap still lands in
    /// one file of its own).
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let needs_rotation = match &self.current {
            None => true,
            Some(_) => self.written > 0 && self.written + buf.len() as u64 > self.max_bytes,
        };
        let file = if needs_rotation {
            self.rotate()?
        } else {
            self.current.as_mut().expect("current file exists")
        };
        file.write_all(buf)?;
        self.written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        match &mut self.current {
            Some(f) => f.flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, Recorder, MAX_SPANS};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("jroute-obs-rotate-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn rotates_exactly_at_the_byte_cap() {
        let dir = tmp_dir("boundary");
        let mut sink = RotatingFileSink::new(&dir, "spans", 100, 10).unwrap();
        let chunk40 = vec![b'a'; 40];
        // 40 + 40 = 80 <= 100: same file. The third 40-byte chunk would
        // make 120 > 100, so it must open file 1.
        sink.write_all(&chunk40).unwrap();
        sink.write_all(&chunk40).unwrap();
        sink.write_all(&chunk40).unwrap();
        // A chunk that exactly reaches the cap stays in the same file...
        sink.write_all(&[b'b'; 60]).unwrap(); // file 1: 40 + 60 = 100
                                              // ...and the next byte rotates.
        sink.write_all(b"c").unwrap();
        sink.flush().unwrap();
        let files = RotatingFileSink::files_written(&dir, "spans", 10);
        assert_eq!(files.len(), 3);
        assert_eq!(std::fs::metadata(&files[0]).unwrap().len(), 80);
        assert_eq!(std::fs::metadata(&files[1]).unwrap().len(), 100);
        assert_eq!(std::fs::metadata(&files[2]).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_chunk_gets_its_own_file() {
        let dir = tmp_dir("oversize");
        let mut sink = RotatingFileSink::new(&dir, "spans", 16, 4).unwrap();
        sink.write_all(&[b'x'; 100]).unwrap(); // larger than the cap
        sink.write_all(b"y").unwrap(); // must not share the file
        let files = RotatingFileSink::files_written(&dir, "spans", 4);
        assert_eq!(files.len(), 2);
        assert_eq!(std::fs::metadata(&files[0]).unwrap().len(), 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_deletes_the_oldest_file() {
        let dir = tmp_dir("retention");
        let mut sink = RotatingFileSink::new(&dir, "spans", 8, 3).unwrap();
        for i in 0u8..6 {
            // Each 8-byte chunk fills a file exactly; every write after
            // the first rotates.
            sink.write_all(&[i; 8]).unwrap();
        }
        let files = RotatingFileSink::files_written(&dir, "spans", usize::MAX);
        assert_eq!(files.len(), 3, "only the newest three files survive");
        let names: Vec<String> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec!["spans.3.jsonl", "spans.4.jsonl", "spans.5.jsonl"]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorder_streams_parseable_chunks_through_the_sink() {
        let dir = tmp_dir("recorder");
        let rec = Recorder::enabled();
        rec.set_span_sink(RotatingFileSink::new(&dir, "soak", 1 << 20, 4).unwrap());
        for _ in 0..(MAX_SPANS + 7) {
            let _s = rec.span("tick");
        }
        assert!(rec.flush_spans());
        let rep = rec.report();
        assert_eq!(rep.spans_dropped, 0, "sink flushes instead of shedding");
        assert_eq!(rep.spans_flushed, (MAX_SPANS + 7) as u64);
        let files = RotatingFileSink::files_written(&dir, "soak", 4);
        assert!(!files.is_empty());
        let mut chunks = 0usize;
        let mut spans = 0usize;
        for f in &files {
            for line in std::fs::read_to_string(f).unwrap().lines() {
                let v = json::parse(line).expect("chunk line parses");
                chunks += 1;
                spans += v.get("spans").and_then(|s| s.as_arr()).unwrap().len();
            }
        }
        assert_eq!(chunks, 2);
        assert_eq!(spans, MAX_SPANS + 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broken_rotating_sink_reverts_the_recorder_to_shedding() {
        let dir = tmp_dir("broken");
        let rec = Recorder::enabled();
        let sink = RotatingFileSink::new(&dir, "soak", 64, 2).unwrap();
        // Pull the directory out from under the sink: the next rotation
        // (first write) fails, and the recorder must fall back.
        std::fs::remove_dir_all(&dir).unwrap();
        rec.set_span_sink(sink);
        for _ in 0..(MAX_SPANS + 5) {
            let _s = rec.span("tick");
        }
        let rep = rec.report();
        assert_eq!(rep.counter("obs.span_sink_errors"), Some(1));
        assert_eq!(rep.spans_flushed, 0);
        assert_eq!(rep.spans_dropped, 5);
        assert_eq!(rep.counter("obs.spans_shed"), Some(5));
        assert!(!rec.flush_spans(), "sink was dropped after the error");
    }
}
