//! Hand-rolled JSON export and a minimal parser.
//!
//! Export matches the `harness::bench` report style: a small, stable,
//! machine-readable document under `target/obs-json/OBS_<run>.json`. The
//! parser implements just enough of JSON to validate those documents and
//! to diff `BENCH_*.json` medians in the bench-regression comparator —
//! objects, arrays, strings (with the escapes our writer emits), numbers,
//! booleans and null.

use crate::report::Report;
use std::path::PathBuf;

// ----------------------------------------------------------------------
// Writing
// ----------------------------------------------------------------------

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize a report to its canonical JSON document.
pub fn to_json(report: &Report, run: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"run\": \"{}\",\n", escape(run)));
    s.push_str(&format!("  \"enabled\": {},\n", report.enabled));
    s.push_str(&format!(
        "  \"epoch_unix_nanos\": {},\n",
        report.epoch_unix_nanos
    ));

    s.push_str("  \"counters\": {");
    let counters: Vec<String> = report
        .counters
        .iter()
        .map(|(k, v)| format!("\"{}\": {}", escape(k), v))
        .collect();
    s.push_str(&counters.join(", "));
    s.push_str("},\n");

    s.push_str("  \"histograms\": {\n");
    let hists: Vec<String> = report
        .hists
        .iter()
        .map(|row| {
            let h = &row.hist;
            format!(
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"p50\": {}, \
                 \"p90\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.1}}}",
                escape(&row.name),
                h.count(),
                h.sum(),
                h.min(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max(),
                h.mean(),
            )
        })
        .collect();
    s.push_str(&hists.join(",\n"));
    s.push_str("\n  },\n");

    s.push_str("  \"spans\": {\n");
    let spans: Vec<String> = report
        .span_stats
        .iter()
        .map(|(name, st)| {
            format!(
                "    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {:.1}, \
                 \"max_ns\": {}}}",
                escape(name),
                st.count,
                st.total_ns,
                st.mean_ns(),
                st.max_ns,
            )
        })
        .collect();
    s.push_str(&spans.join(",\n"));
    s.push_str("\n  },\n");

    s.push_str("  \"events\": [\n");
    let events: Vec<String> = report
        .events
        .iter()
        .map(|e| {
            format!(
                "    {{\"name\": \"{}\", \"at_ns\": {}, \"value\": {}}}",
                escape(e.name),
                e.at_ns,
                e.value
            )
        })
        .collect();
    s.push_str(&events.join(",\n"));
    s.push_str("\n  ],\n");
    s.push_str(&format!("  \"spans_dropped\": {},\n", report.spans_dropped));
    s.push_str(&format!("  \"spans_flushed\": {},\n", report.spans_flushed));
    s.push_str(&format!(
        "  \"events_dropped\": {},\n",
        report.events_dropped
    ));
    // A truncated document's raw span/event lists are incomplete (the
    // aggregates above are not); consumers must not treat them as total.
    s.push_str(&format!(
        "  \"truncated\": {}\n",
        report.spans_dropped > 0 || report.events_dropped > 0
    ));
    s.push_str("}\n");
    s
}

/// Serialize one chunk of raw spans for a streaming span sink: a single
/// self-contained JSON line (trailing `\n`) so a plain append-mode file
/// sink yields newline-delimited JSON that [`parse`] can read back line
/// by line. Each chunk's header repeats the recorder's wall-clock epoch
/// (`epoch_unix_nanos`), so any surviving rotated file is time-alignable
/// on its own.
pub fn span_chunk_json(seq: u64, epoch_unix_nanos: u64, spans: &[crate::SpanRecord]) -> String {
    let mut s = String::with_capacity(96 + spans.len() * 128);
    s.push_str(&format!(
        "{{\"chunk\": {seq}, \"epoch_unix_nanos\": {epoch_unix_nanos}, \"spans\": ["
    ));
    for (i, sp) in spans.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"name\": \"{}\", \"thread\": {}, \"depth\": {}, \
             \"start_ns\": {}, \"dur_ns\": {}, \"note\": {}, \
             \"span_id\": {}, \"parent\": {}, \"trace\": {}}}",
            escape(sp.name),
            sp.thread,
            sp.depth,
            sp.start_ns,
            sp.dur_ns,
            sp.note,
            sp.span_id,
            sp.parent,
            sp.trace
        ));
    }
    s.push_str("]}\n");
    s
}

/// Default output directory: `$OBS_JSON_DIR`, else
/// `$CARGO_TARGET_DIR/obs-json`, else `<workspace root>/target/obs-json`
/// (found by walking up to the outermost `Cargo.toml`, mirroring
/// `harness::bench`).
pub fn default_dir() -> PathBuf {
    if let Ok(d) = std::env::var("OBS_JSON_DIR") {
        return PathBuf::from(d);
    }
    if let Ok(t) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(t).join("obs-json");
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = cwd
        .ancestors()
        .filter(|a| a.join("Cargo.toml").exists())
        .last()
        .unwrap_or(&cwd)
        .to_path_buf();
    root.join("target").join("obs-json")
}

/// Write `OBS_<run>.json` into `dir`, returning the path written.
pub fn export_to(report: &Report, run: &str, dir: &std::path::Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("OBS_{run}.json"));
    std::fs::write(&path, to_json(report, run))?;
    Ok(path)
}

/// Write `OBS_<run>.json` into [`default_dir`], returning the path.
pub fn export(report: &Report, run: &str) -> std::io::Result<PathBuf> {
    export_to(report, run, &default_dir())
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns `None` on any syntax error or trailing
/// garbage.
pub fn parse(text: &str) -> Option<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn lit(&mut self, s: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' => self.lit("true").map(|_| Value::Bool(true)),
            b'f' => self.lit("false").map(|_| Value::Bool(false)),
            b'n' => self.lit("null").map(|_| Value::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Value::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Value::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        if start == self.pos {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Value::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_report() -> Report {
        let rec = Recorder::enabled();
        {
            let mut s = rec.span("router.route");
            s.note(2);
        }
        rec.count("router.pips_set", 4);
        rec.record("maze.search_ns", 12_345);
        rec.event("pathfinder.overused", 9);
        rec.report()
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let rep = sample_report();
        let text = to_json(&rep, "unit \"test\"");
        let doc = parse(&text).expect("valid JSON");
        assert_eq!(doc.get("run").unwrap().as_str(), Some("unit \"test\""));
        assert_eq!(doc.get("enabled"), Some(&Value::Bool(true)));
        // Wall-clock epoch in the header (parsed as f64, so only its
        // presence and sign are checked exactly).
        assert!(doc.get("epoch_unix_nanos").unwrap().as_f64().unwrap() > 0.0);
        let counters = doc.get("counters").unwrap();
        assert_eq!(counters.get("router.pips_set").unwrap().as_f64(), Some(4.0));
        let hist = doc
            .get("histograms")
            .unwrap()
            .get("maze.search_ns")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(hist.get("max").unwrap().as_f64(), Some(12_345.0));
        let span = doc.get("spans").unwrap().get("router.route").unwrap();
        assert_eq!(span.get("count").unwrap().as_f64(), Some(1.0));
        let events = doc.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("value").unwrap().as_f64(), Some(9.0));
        assert_eq!(doc.get("truncated"), Some(&Value::Bool(false)));
    }

    #[test]
    fn shed_spans_flag_the_export_as_truncated() {
        let rec = Recorder::enabled();
        for _ in 0..(crate::MAX_SPANS + 3) {
            rec.span("tick");
        }
        let rep = rec.report();
        let doc = parse(&to_json(&rep, "cap")).expect("valid JSON");
        assert_eq!(doc.get("truncated"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("spans_dropped").unwrap().as_f64(), Some(3.0));
        let counters = doc.get("counters").unwrap();
        assert_eq!(counters.get("obs.spans_shed").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn export_to_writes_the_named_file() {
        let dir = std::env::temp_dir().join("jroute-obs-json-test");
        let path = export_to(&sample_report(), "smoke", &dir).unwrap();
        assert!(path.ends_with("OBS_smoke.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(parse(&body).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parser_handles_the_bench_report_shape() {
        let text = r#"{
  "bench": "e1_census",
  "results": [
    {"id": "e1/a", "samples": 3, "iters_per_sample": 10,
     "ns_per_iter": {"min": 1.5, "median": 2.0, "mean": 2.1, "max": 3.0}}
  ]
}"#;
        let doc = parse(text).unwrap();
        let results = doc.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        let med = results[0]
            .get("ns_per_iter")
            .unwrap()
            .get("median")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(med, 2.0);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_none());
        assert!(parse("{").is_none());
        assert!(parse("{}x").is_none());
        assert!(parse("{\"a\": }").is_none());
        assert!(parse("[1, 2,]").is_none());
        assert!(parse("nul").is_none());
    }

    #[test]
    fn parser_accepts_scalars_and_nesting() {
        assert_eq!(parse("null"), Some(Value::Null));
        assert_eq!(parse(" -12.5e2 "), Some(Value::Num(-1250.0)));
        assert_eq!(
            parse(r#"{"a": [1, {"b": "A\n"}]}"#)
                .unwrap()
                .get("a")
                .unwrap()
                .as_arr()
                .unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("A\n")
        );
    }
}
