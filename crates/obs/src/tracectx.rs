//! Causal trace context.
//!
//! A [`TraceCtx`] names the position of a piece of work inside a causal
//! tree: which *trace* (one per originating request) it belongs to and
//! which *span* is its parent. Spans opened on the same thread inherit
//! both ambiently from the enclosing [`Span`](crate::Span), so most code
//! never touches a `TraceCtx`; the struct exists to carry causality
//! across the places the per-thread ambient stack cannot reach —
//! work-stealing deques, retry parking lots, and `Replace`
//! chain-transfers, where the thread that *finishes* a request is not
//! the thread that *submitted* it.
//!
//! The protocol is two calls:
//!
//! * [`Span::ctx`](crate::Span::ctx) captures a span's identity as a
//!   `TraceCtx` (store it on the work item);
//! * [`Recorder::span_ctx`](crate::Recorder::span_ctx) re-opens the
//!   causal chain on whatever thread picked the work item up.
//!
//! Identifiers are plain `u64`s allocated from per-recorder atomic
//! counters; `0` means "none" in both positions, so a zeroed
//! [`TraceCtx::NONE`] marks untraced work and costs nothing to carry.

/// Causal coordinates carried across thread and queue boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceCtx {
    /// The trace (causal tree) this work belongs to; `0` = untraced.
    pub trace_id: u64,
    /// The span to parent new work under; `0` = root (no parent).
    pub parent_span_id: u64,
}

impl TraceCtx {
    /// The empty context: untraced work with no parent.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span_id: 0,
    };

    /// Whether this context carries any causal information.
    #[inline]
    pub fn is_none(&self) -> bool {
        self.trace_id == 0 && self.parent_span_id == 0
    }
}
