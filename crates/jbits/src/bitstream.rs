//! The configuration bitstream: per-tile PIP state and LUT contents.
//!
//! This is the JBits-class layer: a *manual*, bit-level interface to the
//! device configuration. It validates that a PIP physically exists (you
//! cannot set a bit the silicon doesn't have) but performs **no**
//! contention or routing checks — those belong to JRoute (paper §3.4).
//!
//! State is stored sparsely (per-tile sorted vectors of on-PIPs): real RTR
//! designs turn on a vanishing fraction of the millions of PIPs, and the
//! sparse form makes readback, diffing and tracing cheap.

use crate::error::JBitsError;
use crate::frame::{lut_frame, pip_frame, FrameTracker};
use std::sync::Arc;
use virtex::segment::Tap;
use virtex::{Device, RowCol, Segment, Wire};

/// Observer hook for configuration writes.
///
/// JBits stays dependency-free, so instead of depending on an
/// observability crate the bitstream accepts an optional callback object;
/// higher layers (the `jroute` router's recorder) install one to count
/// PIP traffic. Callbacks fire only for writes that actually change a
/// bit, after the change is applied. With no observer installed the cost
/// is a branch on a `None`.
pub trait ConfigObserver: Send + Sync {
    /// A PIP transitioned off → on at `rc`.
    fn pip_set(&self, rc: RowCol, pip: Pip);
    /// A PIP transitioned on → off at `rc`.
    fn pip_cleared(&self, rc: RowCol, pip: Pip);
}

/// One programmable interconnect point at a tile: drive `to` from `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pip {
    /// Driving wire (local name).
    pub from: Wire,
    /// Driven wire (local name).
    pub to: Wire,
}

impl Pip {
    /// PIP driving `to` from `from`.
    #[inline]
    pub const fn new(from: Wire, to: Wire) -> Self {
        Pip { from, to }
    }
}

impl virtex::Codec for Pip {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.to.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Pip {
            from: Wire::decode(input)?,
            to: Wire::decode(input)?,
        })
    }
}

impl std::fmt::Display for Pip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}->{}", self.from.name(), self.to.name())
    }
}

/// Per-tile configuration: on-PIPs (sorted) and LUT contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct TileConfig {
    /// Sorted by (to, from) so "who drives `to`" is a contiguous range.
    pub(crate) pips: Vec<Pip>,
    /// 16-bit LUT equations: [S0-F, S0-G, S1-F, S1-G].
    pub(crate) luts: [u16; 4],
}

impl TileConfig {
    #[inline]
    fn find(&self, pip: Pip) -> Result<usize, usize> {
        self.pips
            .binary_search_by(|p| (p.to, p.from).cmp(&(pip.to, pip.from)))
    }
}

/// The full device configuration.
pub struct Bitstream {
    device: Device,
    tiles: Vec<TileConfig>,
    frames: FrameTracker,
    on_pips: usize,
    observer: Option<Arc<dyn ConfigObserver>>,
}

impl Bitstream {
    /// A blank (erased) configuration for `device`.
    pub fn new(device: &Device) -> Self {
        Bitstream {
            device: *device,
            tiles: vec![TileConfig::default(); device.dims().tiles()],
            frames: FrameTracker::new(),
            on_pips: 0,
            observer: None,
        }
    }

    /// Install (or replace) the configuration-write observer. Pass
    /// `None` to detach.
    pub fn set_observer(&mut self, observer: Option<Arc<dyn ConfigObserver>>) {
        self.observer = observer;
    }

    /// Whether an observer is currently attached.
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// The device this configuration belongs to.
    #[inline]
    pub fn device(&self) -> &Device {
        &self.device
    }

    #[inline]
    fn tile(&self, rc: RowCol) -> Result<&TileConfig, JBitsError> {
        if !self.device.dims().contains(rc) {
            return Err(JBitsError::BadTile { rc });
        }
        Ok(&self.tiles[self.device.dims().tile_index(rc)])
    }

    fn validate_pip(&self, rc: RowCol, from: Wire, to: Wire) -> Result<(), JBitsError> {
        if !self.device.dims().contains(rc) {
            return Err(JBitsError::BadTile { rc });
        }
        if !self.device.wire_exists(rc, from) {
            return Err(JBitsError::NoSuchWire { rc, wire: from });
        }
        if !self.device.wire_exists(rc, to) {
            return Err(JBitsError::NoSuchWire { rc, wire: to });
        }
        if !self.device.arch().pip_exists(rc, from, to) {
            return Err(JBitsError::NoSuchPip { rc, from, to });
        }
        Ok(())
    }

    /// Turn a PIP on. Returns `true` if the bit changed.
    pub fn set_pip(&mut self, rc: RowCol, from: Wire, to: Wire) -> Result<bool, JBitsError> {
        self.validate_pip(rc, from, to)?;
        let idx = self.device.dims().tile_index(rc);
        let pip = Pip::new(from, to);
        match self.tiles[idx].find(pip) {
            Ok(_) => Ok(false),
            Err(pos) => {
                self.tiles[idx].pips.insert(pos, pip);
                self.frames.touch(pip_frame(rc, to));
                self.on_pips += 1;
                if let Some(o) = &self.observer {
                    o.pip_set(rc, pip);
                }
                Ok(true)
            }
        }
    }

    /// Turn a PIP off. Returns `true` if the bit changed.
    pub fn clear_pip(&mut self, rc: RowCol, from: Wire, to: Wire) -> Result<bool, JBitsError> {
        self.validate_pip(rc, from, to)?;
        let idx = self.device.dims().tile_index(rc);
        match self.tiles[idx].find(Pip::new(from, to)) {
            Ok(pos) => {
                self.tiles[idx].pips.remove(pos);
                self.frames.touch(pip_frame(rc, to));
                self.on_pips -= 1;
                if let Some(o) = &self.observer {
                    o.pip_cleared(rc, Pip::new(from, to));
                }
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// Whether the PIP is currently on.
    pub fn get_pip(&self, rc: RowCol, from: Wire, to: Wire) -> Result<bool, JBitsError> {
        self.validate_pip(rc, from, to)?;
        Ok(self.tile(rc)?.find(Pip::new(from, to)).is_ok())
    }

    /// All on-PIPs at a tile, sorted by (to, from).
    pub fn pips_at(&self, rc: RowCol) -> &[Pip] {
        match self.tile(rc) {
            Ok(t) => &t.pips,
            Err(_) => &[],
        }
    }

    /// On-PIPs at `rc` whose target is `to` (the drivers configured for
    /// that wire at that tile).
    pub fn drivers_at(&self, rc: RowCol, to: Wire) -> impl Iterator<Item = Pip> + '_ {
        self.pips_at(rc).iter().copied().filter(move |p| p.to == to)
    }

    /// Whether any on-PIP anywhere drives the canonical segment `seg`.
    ///
    /// Scans the segment's drive-in taps; used by `is_on`-style queries
    /// and by tracing (routers keep their own occupancy index for speed).
    pub fn is_segment_driven(&self, seg: Segment) -> bool {
        self.segment_driver(seg).is_some()
    }

    /// The PIP currently driving `seg`, if any. If several PIPs drive it
    /// (contention — JRoute prevents this, raw JBits writes may not), the
    /// first in tap order is returned.
    pub fn segment_driver(&self, seg: Segment) -> Option<(RowCol, Pip)> {
        let mut taps: Vec<Tap> = Vec::with_capacity(4);
        self.device.arch().drive_taps(seg, &mut taps);
        for tap in taps {
            if let Some(p) = self.drivers_at(tap.rc, tap.wire).next() {
                return Some((tap.rc, p));
            }
        }
        None
    }

    /// Every PIP currently driving `seg`, across all of its drive-in taps.
    pub fn segment_drivers(&self, seg: Segment) -> Vec<(RowCol, Pip)> {
        let mut taps: Vec<Tap> = Vec::with_capacity(4);
        self.device.arch().drive_taps(seg, &mut taps);
        let mut out = Vec::new();
        for tap in taps {
            out.extend(self.drivers_at(tap.rc, tap.wire).map(|p| (tap.rc, p)));
        }
        out
    }

    /// Set a LUT equation. `slice` in 0..2, `lut` 0 = F, 1 = G.
    pub fn set_lut(
        &mut self,
        rc: RowCol,
        slice: u8,
        lut: u8,
        value: u16,
    ) -> Result<(), JBitsError> {
        if !self.device.dims().contains(rc) {
            return Err(JBitsError::BadTile { rc });
        }
        if slice >= 2 || lut >= 2 {
            return Err(JBitsError::BadLut { slice, lut });
        }
        let idx = self.device.dims().tile_index(rc);
        let slot = (slice * 2 + lut) as usize;
        if self.tiles[idx].luts[slot] != value {
            self.tiles[idx].luts[slot] = value;
            self.frames.touch(lut_frame(rc, slice, lut));
        }
        Ok(())
    }

    /// Read a LUT equation back.
    pub fn get_lut(&self, rc: RowCol, slice: u8, lut: u8) -> Result<u16, JBitsError> {
        if slice >= 2 || lut >= 2 {
            return Err(JBitsError::BadLut { slice, lut });
        }
        Ok(self.tile(rc)?.luts[(slice * 2 + lut) as usize])
    }

    /// Total number of on-PIPs in the configuration.
    #[inline]
    pub fn on_pip_count(&self) -> usize {
        self.on_pips
    }

    /// The partial-reconfiguration frame tracker (dirty frames since the
    /// last [`FrameTracker::take`]).
    #[inline]
    pub fn frames(&self) -> &FrameTracker {
        &self.frames
    }

    /// Mutable access to the frame tracker (to end a reconfiguration
    /// transaction with `take()`).
    #[inline]
    pub fn frames_mut(&mut self) -> &mut FrameTracker {
        &mut self.frames
    }

    pub(crate) fn tiles(&self) -> &[TileConfig] {
        &self.tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Device, Dir, Family};

    fn bs() -> Bitstream {
        Bitstream::new(&Device::new(Family::Xcv50))
    }

    #[test]
    fn pip_codec_round_trips() {
        use virtex::Codec;
        for pip in [
            Pip::new(wire::S1_YQ, wire::out(1)),
            Pip::new(wire::out(0), wire::single(Dir::East, 2)),
            Pip::new(Wire(0), Wire(429)),
        ] {
            assert_eq!(Pip::from_bytes(&pip.to_bytes()), Some(pip));
        }
        assert_eq!(Pip::from_bytes(&[1, 0, 0xFF, 0xFF]), None, "bad wire id");
        assert_eq!(Pip::from_bytes(&[1, 0, 2]), None, "truncated");
    }

    #[test]
    fn set_get_clear_round_trip() {
        let mut b = bs();
        let rc = RowCol::new(5, 7);
        assert!(!b.get_pip(rc, wire::S1_YQ, wire::out(1)).unwrap());
        assert!(b.set_pip(rc, wire::S1_YQ, wire::out(1)).unwrap());
        assert!(b.get_pip(rc, wire::S1_YQ, wire::out(1)).unwrap());
        assert!(
            !b.set_pip(rc, wire::S1_YQ, wire::out(1)).unwrap(),
            "idempotent set"
        );
        assert_eq!(b.on_pip_count(), 1);
        assert!(b.clear_pip(rc, wire::S1_YQ, wire::out(1)).unwrap());
        assert!(!b.get_pip(rc, wire::S1_YQ, wire::out(1)).unwrap());
        assert_eq!(b.on_pip_count(), 0);
    }

    #[test]
    fn nonexistent_pips_are_rejected() {
        let mut b = bs();
        let rc = RowCol::new(5, 7);
        // S1_YQ only reaches OUT[7] and OUT[1] in this architecture.
        let err = b.set_pip(rc, wire::S1_YQ, wire::out(4)).unwrap_err();
        assert!(matches!(err, JBitsError::NoSuchPip { .. }));
        // Off-chip tile.
        let err = b
            .set_pip(RowCol::new(99, 0), wire::S1_YQ, wire::out(1))
            .unwrap_err();
        assert!(matches!(err, JBitsError::BadTile { .. }));
        // Wire that doesn't exist at the edge.
        let err = b
            .set_pip(
                RowCol::new(15, 0),
                wire::out(0),
                wire::single(Dir::North, 2),
            )
            .unwrap_err();
        assert!(matches!(err, JBitsError::NoSuchWire { .. }));
    }

    #[test]
    fn segment_driver_found_via_drive_taps() {
        let mut b = bs();
        let rc = RowCol::new(5, 7);
        b.set_pip(rc, wire::out(1), wire::single(Dir::East, 5))
            .unwrap();
        let seg = b
            .device()
            .canonicalize(rc, wire::single(Dir::East, 5))
            .unwrap();
        assert!(b.is_segment_driven(seg));
        let (drc, pip) = b.segment_driver(seg).unwrap();
        assert_eq!(drc, rc);
        assert_eq!(pip, Pip::new(wire::out(1), wire::single(Dir::East, 5)));
        // An undriven segment.
        let other = b
            .device()
            .canonicalize(rc, wire::single(Dir::East, 6))
            .unwrap();
        assert!(!b.is_segment_driven(other));
    }

    #[test]
    fn contention_is_visible_to_segment_drivers() {
        // JBits is deliberately permissive: two drivers of one segment can
        // be configured; segment_drivers exposes both so JRoute can refuse.
        let mut b = bs();
        let rc = RowCol::new(6, 6);
        let dev = *b.device();
        let target = wire::single(Dir::North, 2);
        let mut drivers = Vec::new();
        dev.arch().pips_into(rc, target, &mut drivers);
        assert!(
            drivers.len() >= 2,
            "need two distinct drivers for this test"
        );
        b.set_pip(rc, drivers[0], target).unwrap();
        b.set_pip(rc, drivers[1], target).unwrap();
        let seg = dev.canonicalize(rc, target).unwrap();
        assert_eq!(b.segment_drivers(seg).len(), 2);
    }

    #[test]
    fn bidir_hex_driver_found_at_far_end() {
        let mut b = bs();
        let dev = *b.device();
        // Drive bi-directional hex HEX_N[0]@(2,2) at its endpoint (8,2).
        let end_rc = RowCol::new(8, 2);
        let end = wire::hex_end(Dir::North, 0);
        let mut drivers = Vec::new();
        dev.arch().pips_into(end_rc, end, &mut drivers);
        let from = *drivers
            .iter()
            .find(|w| matches!(w.kind(), virtex::WireKind::Out(_)))
            .expect("an OMUX can drive a bidir hex end");
        b.set_pip(end_rc, from, end).unwrap();
        let seg = dev.canonicalize(end_rc, end).unwrap();
        assert_eq!(seg.rc, RowCol::new(2, 2));
        assert!(b.is_segment_driven(seg));
        assert_eq!(b.segment_driver(seg).unwrap().0, end_rc);
    }

    #[test]
    fn lut_config_round_trips_and_dirties_frames() {
        let mut b = bs();
        let rc = RowCol::new(1, 2);
        b.frames_mut().take();
        b.set_lut(rc, 0, 1, 0xBEEF).unwrap();
        assert_eq!(b.get_lut(rc, 0, 1).unwrap(), 0xBEEF);
        assert_eq!(b.frames().dirty_count(), 1);
        // Writing the same value is free.
        b.frames_mut().take();
        b.set_lut(rc, 0, 1, 0xBEEF).unwrap();
        assert!(b.frames().is_clean());
        assert!(b.set_lut(rc, 2, 0, 0).is_err());
    }

    #[test]
    fn frame_accounting_tracks_touched_columns() {
        let mut b = bs();
        b.frames_mut().take();
        b.set_pip(RowCol::new(5, 7), wire::S1_YQ, wire::out(1))
            .unwrap();
        b.set_pip(RowCol::new(9, 7), wire::S1_YQ, wire::out(1))
            .unwrap(); // same frame
        assert_eq!(
            b.frames().dirty_count(),
            1,
            "same column + word share a frame"
        );
        b.set_pip(RowCol::new(5, 8), wire::S1_YQ, wire::out(1))
            .unwrap();
        assert_eq!(b.frames().dirty_count(), 2);
    }

    #[test]
    fn observer_sees_only_real_transitions() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Tally {
            set: AtomicUsize,
            cleared: AtomicUsize,
        }
        impl ConfigObserver for Tally {
            fn pip_set(&self, _rc: RowCol, _pip: Pip) {
                self.set.fetch_add(1, Ordering::Relaxed);
            }
            fn pip_cleared(&self, _rc: RowCol, _pip: Pip) {
                self.cleared.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut b = bs();
        let tally = Arc::new(Tally::default());
        b.set_observer(Some(tally.clone()));
        assert!(b.has_observer());
        let rc = RowCol::new(5, 7);
        b.set_pip(rc, wire::S1_YQ, wire::out(1)).unwrap();
        b.set_pip(rc, wire::S1_YQ, wire::out(1)).unwrap(); // no-op: already on
        b.clear_pip(rc, wire::S1_YQ, wire::out(1)).unwrap();
        b.clear_pip(rc, wire::S1_YQ, wire::out(1)).unwrap(); // no-op: already off
        assert_eq!(tally.set.load(Ordering::Relaxed), 1);
        assert_eq!(tally.cleared.load(Ordering::Relaxed), 1);
        // Detach: further writes are unobserved.
        b.set_observer(None);
        b.set_pip(rc, wire::S1_YQ, wire::out(1)).unwrap();
        assert_eq!(tally.set.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drivers_at_filters_by_target() {
        let mut b = bs();
        let rc = RowCol::new(5, 7);
        b.set_pip(rc, wire::S1_YQ, wire::out(1)).unwrap();
        b.set_pip(rc, wire::S1_YQ, wire::out(7)).unwrap();
        assert_eq!(b.drivers_at(rc, wire::out(1)).count(), 1);
        assert_eq!(b.drivers_at(rc, wire::out(7)).count(), 1);
        assert_eq!(b.drivers_at(rc, wire::out(2)).count(), 0);
        assert_eq!(b.pips_at(rc).len(), 2);
    }
}
