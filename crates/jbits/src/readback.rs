//! Readback: snapshotting a live configuration and diffing snapshots.
//!
//! BoardScope [2] reads the configuration back from hardware to display
//! circuit state; our equivalent captures the simulated configuration.
//! Diffs are the basis of debugging (what changed?) and of verifying that
//! an unroute returned the device to its prior state.

use crate::bitstream::{Bitstream, Pip};
use virtex::{Dims, RowCol};

/// An immutable snapshot of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    dims: Dims,
    tiles: Vec<(Vec<Pip>, [u16; 4])>,
}

/// One difference between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are named self-describingly
pub enum Change {
    /// PIP present in `after` but not `before`.
    PipAdded { rc: RowCol, pip: Pip },
    /// PIP present in `before` but not `after`.
    PipRemoved { rc: RowCol, pip: Pip },
    /// LUT value changed.
    LutChanged {
        rc: RowCol,
        slice: u8,
        lut: u8,
        before: u16,
        after: u16,
    },
}

/// Capture the current configuration.
pub fn snapshot(bits: &Bitstream) -> Snapshot {
    Snapshot {
        dims: bits.device().dims(),
        tiles: bits
            .tiles()
            .iter()
            .map(|t| (t.pips.clone(), t.luts))
            .collect(),
    }
}

/// All changes needed to go from `before` to `after`.
///
/// Panics if the snapshots are from different device geometries.
pub fn diff(before: &Snapshot, after: &Snapshot) -> Vec<Change> {
    assert_eq!(before.dims, after.dims, "snapshots from different devices");
    let mut changes = Vec::new();
    for (idx, (b, a)) in before.tiles.iter().zip(&after.tiles).enumerate() {
        if b == a {
            continue;
        }
        let rc = before.dims.tile_at(idx);
        // Both PIP lists are sorted; merge-walk them.
        let (mut i, mut j) = (0, 0);
        let key = |p: &Pip| (p.to, p.from);
        while i < b.0.len() || j < a.0.len() {
            match (b.0.get(i), a.0.get(j)) {
                (Some(pb), Some(pa)) if key(pb) == key(pa) => {
                    i += 1;
                    j += 1;
                }
                (Some(pb), Some(pa)) if key(pb) < key(pa) => {
                    changes.push(Change::PipRemoved { rc, pip: *pb });
                    i += 1;
                }
                (Some(_), Some(pa)) => {
                    changes.push(Change::PipAdded { rc, pip: *pa });
                    j += 1;
                }
                (Some(pb), None) => {
                    changes.push(Change::PipRemoved { rc, pip: *pb });
                    i += 1;
                }
                (None, Some(pa)) => {
                    changes.push(Change::PipAdded { rc, pip: *pa });
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        for slot in 0..4u8 {
            let (vb, va) = (b.1[slot as usize], a.1[slot as usize]);
            if vb != va {
                changes.push(Change::LutChanged {
                    rc,
                    slice: slot / 2,
                    lut: slot % 2,
                    before: vb,
                    after: va,
                });
            }
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Device, Dir, Family};

    #[test]
    fn identical_snapshots_diff_empty() {
        let mut b = Bitstream::new(&Device::new(Family::Xcv50));
        b.set_pip(RowCol::new(5, 7), wire::S1_YQ, wire::out(1))
            .unwrap();
        let s1 = snapshot(&b);
        let s2 = snapshot(&b);
        assert_eq!(s1, s2);
        assert!(diff(&s1, &s2).is_empty());
    }

    #[test]
    fn diff_reports_adds_removes_and_luts() {
        let mut b = Bitstream::new(&Device::new(Family::Xcv50));
        let rc = RowCol::new(5, 7);
        b.set_pip(rc, wire::S1_YQ, wire::out(1)).unwrap();
        let before = snapshot(&b);

        b.clear_pip(rc, wire::S1_YQ, wire::out(1)).unwrap();
        b.set_pip(rc, wire::out(1), wire::single(Dir::East, 5))
            .unwrap();
        b.set_lut(rc, 1, 0, 0x00FF).unwrap();
        let after = snapshot(&b);

        let changes = diff(&before, &after);
        assert_eq!(changes.len(), 3);
        assert!(changes.contains(&Change::PipRemoved {
            rc,
            pip: Pip::new(wire::S1_YQ, wire::out(1))
        }));
        assert!(changes.contains(&Change::PipAdded {
            rc,
            pip: Pip::new(wire::out(1), wire::single(Dir::East, 5))
        }));
        assert!(changes.contains(&Change::LutChanged {
            rc,
            slice: 1,
            lut: 0,
            before: 0,
            after: 0x00FF
        }));
    }

    #[test]
    fn diff_is_antisymmetric() {
        let mut b = Bitstream::new(&Device::new(Family::Xcv50));
        let before = snapshot(&b);
        b.set_pip(RowCol::new(2, 2), wire::S0_YQ, wire::out(3))
            .unwrap();
        let after = snapshot(&b);
        let fwd = diff(&before, &after);
        let rev = diff(&after, &before);
        assert_eq!(fwd.len(), 1);
        assert_eq!(rev.len(), 1);
        assert!(matches!(fwd[0], Change::PipAdded { .. }));
        assert!(matches!(rev[0], Change::PipRemoved { .. }));
    }
}
