//! Errors raised by the configuration substrate.

use virtex::{RowCol, Wire};

/// Error type for bitstream operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are named self-describingly
pub enum JBitsError {
    /// The tile coordinate is off the device.
    BadTile { rc: RowCol },
    /// The named wire does not exist at that tile.
    NoSuchWire { rc: RowCol, wire: Wire },
    /// No PIP connects `from` to `to` at `rc` in this architecture.
    NoSuchPip { rc: RowCol, from: Wire, to: Wire },
    /// LUT selector out of range.
    BadLut { slice: u8, lut: u8 },
}

impl std::fmt::Display for JBitsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JBitsError::BadTile { rc } => write!(f, "tile {rc} is off the device"),
            JBitsError::NoSuchWire { rc, wire } => {
                write!(f, "wire {} does not exist at {rc}", wire.name())
            }
            JBitsError::NoSuchPip { rc, from, to } => {
                write!(f, "no PIP {} -> {} at {rc}", from.name(), to.name())
            }
            JBitsError::BadLut { slice, lut } => {
                write!(f, "no LUT (slice {slice}, lut {lut})")
            }
        }
    }
}

impl std::error::Error for JBitsError {}
