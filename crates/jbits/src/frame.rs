//! Configuration-frame accounting.
//!
//! Real Virtex configuration memory is organised in vertical *frames*: the
//! atomic unit of (partial) reconfiguration is one frame, which spans a
//! full column of the device. The exact bit layout is proprietary; what
//! run-time reconfiguration cost models need is only (a) frames are
//! column-granular and (b) touching any bit in a frame dirties the whole
//! frame. We therefore address a frame as `(column, word)` where `word`
//! buckets the per-tile configuration bits.
//!
//! This is the substrate for experiment E5 (paper §3.3: unrouting and
//! replacing one core avoids "having to reconfigure the entire design"):
//! the cost of a reconfiguration step is the number of distinct dirty
//! frames.

use std::collections::BTreeSet;
use virtex::{Dims, RowCol, Wire};

/// Bits-per-word bucketing of the local wire id space into frames.
pub const WORDS_PER_TILE: u16 = (virtex::wire::NUM_LOCAL_WIRES as u16).div_ceil(32);

/// Extra per-tile words holding LUT configuration.
pub const LUT_WORDS_PER_TILE: u16 = 2;

/// Address of one configuration frame: a column of the device times a
/// word index within each tile's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameAddr {
    /// Device column the frame spans.
    pub col: u16,
    /// Word index within each tile of the column.
    pub word: u16,
}

/// Frame containing the PIP whose *target* wire is `to` at tile `rc`.
///
/// PIP bits are bucketed by target wire (each target's mux select bits sit
/// together, as in real devices).
#[inline]
pub fn pip_frame(rc: RowCol, to: Wire) -> FrameAddr {
    FrameAddr {
        col: rc.col,
        word: to.0 / 32,
    }
}

/// Frame containing a LUT's configuration bits.
#[inline]
pub fn lut_frame(rc: RowCol, slice: u8, lut: u8) -> FrameAddr {
    FrameAddr {
        col: rc.col,
        word: WORDS_PER_TILE + (slice * 2 + lut) as u16 / 2,
    }
}

/// Total number of frames in a full-device configuration.
pub fn total_frames(dims: Dims) -> usize {
    dims.cols as usize * (WORDS_PER_TILE + LUT_WORDS_PER_TILE) as usize
}

/// Records which frames have been dirtied since the last
/// [`FrameTracker::take`]; the partial-reconfiguration cost model.
#[derive(Debug, Default, Clone)]
pub struct FrameTracker {
    dirty: BTreeSet<FrameAddr>,
}

impl FrameTracker {
    /// Clean tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark a frame dirty.
    #[inline]
    pub fn touch(&mut self, frame: FrameAddr) {
        self.dirty.insert(frame);
    }

    /// Number of distinct dirty frames.
    #[inline]
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Whether anything is dirty.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Drain and return the dirty set (ends the current reconfiguration
    /// "transaction").
    pub fn take(&mut self) -> BTreeSet<FrameAddr> {
        std::mem::take(&mut self.dirty)
    }

    /// Iterate the dirty frames in address order.
    pub fn iter(&self) -> impl Iterator<Item = &FrameAddr> {
        self.dirty.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::wire;

    #[test]
    fn pips_with_same_target_word_share_a_frame() {
        let rc = RowCol::new(3, 7);
        let a = pip_frame(rc, Wire(0));
        let b = pip_frame(rc, Wire(31));
        let c = pip_frame(rc, Wire(32));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.col, 7);
    }

    #[test]
    fn frames_are_column_granular() {
        // Same target, same column, different row: same frame (the frame
        // spans the column).
        let a = pip_frame(RowCol::new(0, 5), wire::out(0));
        let b = pip_frame(RowCol::new(9, 5), wire::out(0));
        assert_eq!(a, b);
        // Different column: different frame.
        let c = pip_frame(RowCol::new(0, 6), wire::out(0));
        assert_ne!(a, c);
    }

    #[test]
    fn lut_frames_do_not_collide_with_pip_frames() {
        let rc = RowCol::new(0, 0);
        let lut = lut_frame(rc, 1, 1);
        assert!(lut.word >= WORDS_PER_TILE);
        assert!(Wire::all().all(|w| pip_frame(rc, w).word < WORDS_PER_TILE));
    }

    #[test]
    fn tracker_counts_distinct_frames() {
        let mut t = FrameTracker::new();
        assert!(t.is_clean());
        t.touch(pip_frame(RowCol::new(0, 0), wire::out(0)));
        t.touch(pip_frame(RowCol::new(5, 0), wire::out(1))); // same frame
        t.touch(pip_frame(RowCol::new(0, 3), wire::out(0)));
        assert_eq!(t.dirty_count(), 2);
        let taken = t.take();
        assert_eq!(taken.len(), 2);
        assert!(t.is_clean());
    }

    #[test]
    fn total_frames_scales_with_columns() {
        let small = total_frames(Dims::new(16, 24));
        let large = total_frames(Dims::new(64, 96));
        assert_eq!(large, small * 4);
    }
}
