//! # jbits — a JBits-class configuration substrate for the simulated
//! Virtex device
//!
//! JBits [1] is the bit-level Java interface to Xilinx configuration
//! bitstreams on which JRoute is built: it can set and read individual
//! configuration bits but performs no routing, no contention checking and
//! no net bookkeeping. This crate plays exactly that role for the
//! simulated device in [`virtex`]:
//!
//! * [`bitstream::Bitstream`] — per-tile PIP state and LUT contents, with
//!   physical-existence validation only;
//! * [`frame`] — column-granular configuration frames, the cost unit of
//!   partial run-time reconfiguration;
//! * [`readback`] — snapshots and diffs (the BoardScope [2] substrate).
//!
//! Everything above this layer (auto-routing, ports, unrouting,
//! contention protection) lives in the `jroute` crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitstream;
pub mod error;
pub mod frame;
pub mod readback;

pub use bitstream::{Bitstream, ConfigObserver, Pip};
pub use error::JBitsError;
pub use frame::{FrameAddr, FrameTracker};
pub use readback::{diff, snapshot, Change, Snapshot};
