//! Functional (vsim) tests of the core library: the configured bitstreams
//! must actually compute. This is the strongest evidence the whole stack
//! (architecture model, bitstream, router, cores) is coherent.

use jroute::{EndPoint, Router};
use jroute_cores::{
    relocate, replace_with, ConstAdder, ConstMultiplier, Counter, Register, RtpCore, StimulusBank,
};
use virtex::{Device, Family, RowCol};
use vsim::{LogicSource, Simulator};

fn router() -> Router {
    Router::new(&Device::new(Family::Xcv50))
}

/// Force a stimulus bank to a value.
fn force_value(sim: &mut Simulator<'_>, stim: &StimulusBank, value: u64) {
    for bit in 0..stim.width() {
        let pin = stim.driver_pin(bit);
        sim.force(
            LogicSource::Yq {
                rc: pin.rc,
                slice: 1,
            },
            (value >> bit) & 1 == 1,
        );
    }
}

fn read_x_bits(sim: &Simulator<'_>, sites: &[RowCol]) -> u64 {
    sites.iter().enumerate().fold(0u64, |acc, (i, rc)| {
        acc | (sim.read(LogicSource::X { rc: *rc, slice: 0 }).unwrap() as u64) << i
    })
}

fn read_xq_bits(sim: &Simulator<'_>, sites: &[RowCol]) -> u64 {
    sites.iter().enumerate().fold(0u64, |acc, (i, rc)| {
        acc | (sim.read(LogicSource::Xq { rc: *rc, slice: 0 }).unwrap() as u64) << i
    })
}

#[test]
fn const_adder_adds_for_every_input() {
    let mut r = router();
    let mut stim = StimulusBank::new(4, RowCol::new(2, 2));
    let mut adder = ConstAdder::new(4, 5, RowCol::new(2, 6));
    stim.implement(&mut r).unwrap();
    adder.implement(&mut r).unwrap();
    // Bus-connect stimulus outputs to adder inputs, port to port.
    let src: Vec<EndPoint> = stim.out_ports().iter().map(|&p| p.into()).collect();
    let dst: Vec<EndPoint> = adder.a_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&src, &dst).unwrap();

    let sites: Vec<RowCol> = (0..4).map(|b| adder.sum_site(b)).collect();
    for a in 0..16u64 {
        let mut sim = Simulator::new(r.bits());
        force_value(&mut sim, &stim, a);
        let sum = read_x_bits(&sim, &sites);
        assert_eq!(sum, (a + 5) & 0xF, "a={a}");
    }
}

#[test]
fn counter_counts() {
    let mut r = router();
    let mut ctr = Counter::new(4, 0, RowCol::new(3, 3));
    ctr.implement(&mut r).unwrap();
    let sites: Vec<RowCol> = (0..4).map(|b| ctr.bit_site(b)).collect();
    let mut sim = Simulator::new(r.bits());
    assert_eq!(read_xq_bits(&sim, &sites), 0);
    for expect in 1..=20u64 {
        sim.step().unwrap();
        assert_eq!(
            read_xq_bits(&sim, &sites),
            expect & 0xF,
            "after {expect} edges"
        );
    }
}

#[test]
fn constant_multiplier_multiplies_and_survives_replacement() {
    let mut r = router();
    let mut stim = StimulusBank::new(4, RowCol::new(2, 2));
    let mut mul = ConstMultiplier::new(3, 8, RowCol::new(2, 8));
    stim.implement(&mut r).unwrap();
    mul.implement(&mut r).unwrap();
    let src: Vec<EndPoint> = stim.out_ports().iter().map(|&p| p.into()).collect();
    let dst: Vec<EndPoint> = mul.a_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&src, &dst).unwrap();

    let sites: Vec<RowCol> = (0..8).map(|b| mul.product_site(b)).collect();
    for a in 0..16u64 {
        let mut sim = Simulator::new(r.bits());
        force_value(&mut sim, &stim, a);
        assert_eq!(read_x_bits(&sim, &sites), a * 3, "a={a}, K=3");
    }

    // §3.3: replace the constant without re-specifying connections.
    replace_with(&mut mul, &mut r, |m| m.set_constant(11)).unwrap();
    for a in 0..16u64 {
        let mut sim = Simulator::new(r.bits());
        force_value(&mut sim, &stim, a);
        assert_eq!(read_x_bits(&sim, &sites), a * 11, "a={a}, K=11");
    }
}

#[test]
fn register_chain_is_a_shift_register() {
    let mut r = router();
    let mut stim = StimulusBank::new(1, RowCol::new(2, 2));
    let mut r1 = Register::new(1, 0, RowCol::new(2, 5));
    let mut r2 = Register::new(1, 0, RowCol::new(2, 9));
    stim.implement(&mut r).unwrap();
    r1.implement(&mut r).unwrap();
    r2.implement(&mut r).unwrap();
    r.route(&stim.out_ports()[0].into(), &r1.d_ports()[0].into())
        .unwrap();
    r.route(&r1.q_ports()[0].into(), &r2.d_ports()[0].into())
        .unwrap();

    let mut sim = Simulator::new(r.bits());
    let q1 = LogicSource::Xq {
        rc: r1.bit_site(0),
        slice: 0,
    };
    let q2 = LogicSource::Xq {
        rc: r2.bit_site(0),
        slice: 0,
    };
    force_value(&mut sim, &stim, 1);
    sim.step().unwrap();
    assert_eq!(sim.read(q1), Ok(true));
    assert_eq!(sim.read(q2), Ok(false));
    sim.step().unwrap();
    assert_eq!(sim.read(q2), Ok(true));
    // Drop the input; the zero shifts through.
    force_value(&mut sim, &stim, 0);
    sim.step().unwrap();
    assert_eq!(sim.read(q1), Ok(false));
    assert_eq!(sim.read(q2), Ok(true));
    sim.step().unwrap();
    assert_eq!(sim.read(q2), Ok(false));
}

#[test]
fn core_relocation_reconnects_automatically() {
    let mut r = router();
    let mut stim = StimulusBank::new(4, RowCol::new(2, 2));
    let mut adder = ConstAdder::new(4, 1, RowCol::new(2, 6));
    stim.implement(&mut r).unwrap();
    adder.implement(&mut r).unwrap();
    let src: Vec<EndPoint> = stim.out_ports().iter().map(|&p| p.into()).collect();
    let dst: Vec<EndPoint> = adder.a_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&src, &dst).unwrap();

    // Move the adder five columns east; connections re-made via port
    // memory + rebinding.
    relocate(&mut adder, &mut r, RowCol::new(8, 11)).unwrap();
    assert!(
        r.remembered().is_empty(),
        "all remembered connections should re-route: {:?}",
        r.remembered()
    );
    let sites: Vec<RowCol> = (0..4).map(|b| adder.sum_site(b)).collect();
    assert_eq!(sites[0], RowCol::new(8, 11));
    for a in [0u64, 7, 15] {
        let mut sim = Simulator::new(r.bits());
        force_value(&mut sim, &stim, a);
        assert_eq!(
            read_x_bits(&sim, &sites),
            (a + 1) & 0xF,
            "a={a} after relocation"
        );
    }
}

#[test]
fn paper_section4_counter_from_adder_composition() {
    // §4: "a counter can be made from a constant adder with the output
    // fed back to one input ports and the other input set to a value of
    // one" — compose Register(q) -> Adder(+1) -> Register(d).
    let mut r = router();
    let mut reg = Register::new(4, 0, RowCol::new(2, 3));
    let mut add = ConstAdder::new(4, 1, RowCol::new(2, 9));
    reg.implement(&mut r).unwrap();
    add.implement(&mut r).unwrap();
    let q: Vec<EndPoint> = reg.q_ports().iter().map(|&p| p.into()).collect();
    let a: Vec<EndPoint> = add.a_ports().iter().map(|&p| p.into()).collect();
    let sum: Vec<EndPoint> = add.sum_ports().iter().map(|&p| p.into()).collect();
    let d: Vec<EndPoint> = reg.d_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&q, &a).unwrap();
    r.route_bus(&sum, &d).unwrap();

    let sites: Vec<RowCol> = (0..4).map(|b| reg.bit_site(b)).collect();
    let mut sim = Simulator::new(r.bits());
    for expect in 1..=18u64 {
        sim.step().unwrap();
        assert_eq!(
            read_xq_bits(&sim, &sites),
            expect & 0xF,
            "after {expect} edges"
        );
    }
}

#[test]
fn accumulator_accumulates() {
    use jroute_cores::Accumulator;
    let mut r = router();
    let mut stim = StimulusBank::new(4, RowCol::new(2, 2));
    let mut acc = Accumulator::new(6, 0, RowCol::new(2, 7));
    stim.implement(&mut r).unwrap();
    acc.implement(&mut r).unwrap();
    let src: Vec<EndPoint> = stim.out_ports().iter().map(|&p| p.into()).collect();
    // Accumulator input is 6 bits; feed the low 4 from the stimulus and
    // leave the top two undriven (they read 0).
    let dst: Vec<EndPoint> = acc.a_ports()[..4].iter().map(|&p| p.into()).collect();
    r.route_bus(&src, &dst).unwrap();

    let sites: Vec<RowCol> = (0..6).map(|b| acc.bit_site(b)).collect();
    let mut sim = Simulator::new(r.bits());
    force_value(&mut sim, &stim, 5);
    let mut expect = 0u64;
    for step in 1..=8u64 {
        sim.step().unwrap();
        expect = (expect + 5) & 0x3F;
        assert_eq!(
            read_xq_bits(&sim, &sites),
            expect,
            "after {step} steps of +5"
        );
    }
}

#[test]
fn lfsr_cycles_with_maximal_period() {
    use jroute_cores::Lfsr;
    let mut r = router();
    let mut lfsr = Lfsr::new(4, 0, RowCol::new(3, 3));
    lfsr.implement(&mut r).unwrap();
    let sites: Vec<RowCol> = (0..4).map(|b| lfsr.bit_site(b)).collect();
    let mut sim = Simulator::new(r.bits());
    let mut seen = std::collections::HashSet::new();
    let start = read_xq_bits(&sim, &sites);
    assert_eq!(start, 0, "resets to all-zero (valid for the XNOR form)");
    let mut state = start;
    for _ in 0..15 {
        assert!(seen.insert(state), "state {state:#x} repeated early");
        sim.step().unwrap();
        state = read_xq_bits(&sim, &sites);
        assert_ne!(state, 0xF, "all-ones is the XNOR lock-up state");
    }
    assert_eq!(state, start, "period 15 for a maximal 4-bit XNOR LFSR");
    assert_eq!(seen.len(), 15);
}

#[test]
fn floorplan_drives_core_placement_end_to_end() {
    use jroute_cores::{Floorplan, Lfsr};
    let dev = Device::new(Family::Xcv50);
    let mut r = Router::new(&dev);
    let mut fp = Floorplan::new(dev.dims());
    // Place three LFSRs wherever the floorplanner finds room and check
    // they all run independently.
    let mut cores = Vec::new();
    for id in 0..3u32 {
        let origin = fp.place(id, 4, 1).expect("room for a 4x1 core");
        let mut core = Lfsr::new(4, 0, origin);
        core.implement(&mut r).unwrap();
        cores.push(core);
    }
    let mut sim = Simulator::new(r.bits());
    sim.run(5).unwrap();
    for core in &cores {
        let sites: Vec<RowCol> = (0..4).map(|b| core.bit_site(b)).collect();
        let v = read_xq_bits(&sim, &sites);
        assert_ne!(v, 0, "LFSR at {:?} is sequencing", core.origin());
    }
    // All three occupy disjoint regions by construction.
    assert_eq!(fp.occupied_clbs(), 12);
}
