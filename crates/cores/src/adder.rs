//! Constant adder: `sum = a + K`.
//!
//! The paper's §4 example builds a counter from *"a constant adder with
//! the output fed back"*; this is that adder. One CLB per bit, stacked
//! vertically; each bit's F-LUT computes the sum and the G-LUT the carry
//! (the constant bit folded into both masks). Carries ripple through
//! general routing, and all external connection points are ports.

use crate::core_trait::{CoreState, RtpCore};
use crate::util::lut_mask;
use jroute::{EndPoint, Pin, PortDir, PortId, Result, Router};
use virtex::wire::{self, slice_in_pin, slice_out_pin};
use virtex::RowCol;

/// A `width`-bit constant adder core.
#[derive(Debug)]
pub struct ConstAdder {
    width: usize,
    constant: u64,
    origin: RowCol,
    state: CoreState,
}

impl ConstAdder {
    /// Adder computing `a + constant` over `width` bits at `origin`.
    pub fn new(width: usize, constant: u64, origin: RowCol) -> Self {
        assert!(width > 0 && width <= 64);
        ConstAdder {
            width,
            constant,
            origin,
            state: CoreState::new(),
        }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The run-time parameter: the constant addend.
    pub fn constant(&self) -> u64 {
        self.constant
    }

    /// Change the constant (takes effect at the next `implement`; use
    /// [`crate::replace_with`] for the full §3.3 replace flow).
    pub fn set_constant(&mut self, constant: u64) {
        self.constant = constant;
    }

    fn rc(&self, bit: usize) -> RowCol {
        RowCol::new(self.origin.row + bit as u16, self.origin.col)
    }

    /// Input port group `"a"`, one port per bit.
    pub fn a_ports(&self) -> &[PortId] {
        self.state.get_ports("a")
    }

    /// Output port group `"sum"`, one port per bit.
    pub fn sum_ports(&self) -> &[PortId] {
        self.state.get_ports("sum")
    }

    /// Carry-in port group (width 1).
    pub fn cin_port(&self) -> PortId {
        self.state.get_ports("cin")[0]
    }

    /// Carry-out port group (width 1).
    pub fn cout_port(&self) -> PortId {
        self.state.get_ports("cout")[0]
    }

    /// The tile and slice of bit `bit` (for `vsim` inspection: the sum is
    /// combinational on `X`).
    pub fn sum_site(&self, bit: usize) -> RowCol {
        self.rc(bit)
    }
}

impl RtpCore for ConstAdder {
    fn name(&self) -> &str {
        "const_adder"
    }

    fn footprint(&self) -> (u16, u16) {
        (self.width as u16, 1)
    }

    fn origin(&self) -> RowCol {
        self.origin
    }

    fn set_origin(&mut self, rc: RowCol) {
        self.origin = rc;
    }

    fn implement(&mut self, router: &mut Router) -> Result<()> {
        // LUTs: F = a ^ cin ^ k, G = majority(a, cin, k), with a on
        // input 1 (address bit 0) and cin on input 2 (address bit 1).
        for bit in 0..self.width {
            let rc = self.rc(bit);
            let k = (self.constant >> bit) & 1 == 1;
            let sum = lut_mask(|addr| {
                let a = addr & 1 == 1;
                let c = (addr >> 1) & 1 == 1;
                a ^ c ^ k
            });
            let carry = lut_mask(|addr| {
                let a = addr & 1 == 1;
                let c = (addr >> 1) & 1 == 1;
                (a & c) | (a & k) | (c & k)
            });
            router.bits_mut().set_lut(rc, 0, 0, sum)?;
            self.state.record_lut(rc, 0, 0);
            router.bits_mut().set_lut(rc, 0, 1, carry)?;
            self.state.record_lut(rc, 0, 1);
        }
        // Internal carry chain: Y of bit i feeds F2 and G2 of bit i+1.
        for bit in 0..self.width - 1 {
            let y: EndPoint = Pin::at(self.rc(bit), wire::slice_out(0, slice_out_pin::Y)).into();
            let next = self.rc(bit + 1);
            let sinks: Vec<EndPoint> = vec![
                Pin::at(next, wire::slice_in(0, slice_in_pin::F2)).into(),
                Pin::at(next, wire::slice_in(0, slice_in_pin::G2)).into(),
            ];
            router.route_fanout(&y, &sinks)?;
            self.state.record_internal_net(y);
        }
        // Ports: each `a` bit fans out to both LUTs' input 1.
        let a_targets: Vec<Vec<EndPoint>> = (0..self.width)
            .map(|bit| {
                let rc = self.rc(bit);
                vec![
                    Pin::at(rc, wire::slice_in(0, slice_in_pin::F1)).into(),
                    Pin::at(rc, wire::slice_in(0, slice_in_pin::G1)).into(),
                ]
            })
            .collect();
        self.state
            .define_or_rebind_group(router, "a", PortDir::Input, a_targets)?;
        let sum_targets: Vec<Vec<EndPoint>> = (0..self.width)
            .map(|bit| vec![Pin::at(self.rc(bit), wire::slice_out(0, slice_out_pin::X)).into()])
            .collect();
        self.state
            .define_or_rebind_group(router, "sum", PortDir::Output, sum_targets)?;
        let cin = self.rc(0);
        self.state.define_or_rebind_group(
            router,
            "cin",
            PortDir::Input,
            vec![vec![
                Pin::at(cin, wire::slice_in(0, slice_in_pin::F2)).into(),
                Pin::at(cin, wire::slice_in(0, slice_in_pin::G2)).into(),
            ]],
        )?;
        let cout = self.rc(self.width - 1);
        self.state.define_or_rebind_group(
            router,
            "cout",
            PortDir::Output,
            vec![vec![
                Pin::at(cout, wire::slice_out(0, slice_out_pin::Y)).into()
            ]],
        )?;
        self.state.set_placed(true);
        Ok(())
    }

    fn remove(&mut self, router: &mut Router) -> Result<()> {
        self.state.tear_down(router)
    }

    fn state(&self) -> &CoreState {
        &self.state
    }
}
