//! Stimulus bank: a bank of output pins used as external drivers.
//!
//! Real designs receive inputs from IOBs; IOB support is the paper's
//! future work (§6), so test benches and examples use this core instead:
//! it exposes one output port per bit, bound to a slice register output
//! whose value a `vsim` test can force.

use crate::core_trait::{CoreState, RtpCore};
use jroute::{Pin, PortDir, Result, Router};
use virtex::{wire, RowCol};

/// A bank of `width` drivable outputs, one CLB per bit (stacked
/// vertically), using slice 1's `YQ` pin.
#[derive(Debug)]
pub struct StimulusBank {
    width: usize,
    origin: RowCol,
    state: CoreState,
}

impl StimulusBank {
    /// Bank of `width` bits at `origin`.
    pub fn new(width: usize, origin: RowCol) -> Self {
        StimulusBank {
            width,
            origin,
            state: CoreState::new(),
        }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    fn rc(&self, bit: usize) -> RowCol {
        RowCol::new(self.origin.row + bit as u16, self.origin.col)
    }

    /// The physical pin driving bit `bit` — force
    /// `LogicSource::Yq {{ rc, slice: 1 }}` at this pin's tile in `vsim`
    /// to set the stimulus value.
    pub fn driver_pin(&self, bit: usize) -> Pin {
        Pin::at(self.rc(bit), wire::slice_out(1, wire::slice_out_pin::YQ))
    }

    /// The output port group (`"out"`), in bit order.
    pub fn out_ports(&self) -> &[jroute::PortId] {
        self.state.get_ports("out")
    }
}

impl RtpCore for StimulusBank {
    fn name(&self) -> &str {
        "stimulus"
    }

    fn footprint(&self) -> (u16, u16) {
        (self.width as u16, 1)
    }

    fn origin(&self) -> RowCol {
        self.origin
    }

    fn set_origin(&mut self, rc: RowCol) {
        self.origin = rc;
    }

    fn implement(&mut self, router: &mut Router) -> Result<()> {
        let targets = (0..self.width)
            .map(|bit| vec![self.driver_pin(bit).into()])
            .collect();
        self.state
            .define_or_rebind_group(router, "out", PortDir::Output, targets)?;
        self.state.set_placed(true);
        Ok(())
    }

    fn remove(&mut self, router: &mut Router) -> Result<()> {
        self.state.tear_down(router)
    }

    fn state(&self) -> &CoreState {
        &self.state
    }
}
