//! Constant multiplier: `p = a * K` by LUT-based distributed arithmetic.
//!
//! The paper's canonical run-time reconfiguration example (§3.3):
//! *"consider a constant multiplier. The system connects it to the
//! circuit and later requires a new constant. The core can be removed,
//! unrouted, and replaced with a new constant multiplier without having
//! to specify connections again."*
//!
//! A 4-bit input times a 4-bit constant fits one 4-input LUT per product
//! bit: output bit `j` is the LUT truth table `((a * K) >> j) & 1` over
//! the input nibble. Changing the constant is purely a LUT rewrite — the
//! classic run-time-parameterizable core.

use crate::core_trait::{CoreState, RtpCore};
use crate::util::lut_mask;
use jroute::{EndPoint, Pin, PortDir, PortId, Result, Router};
use virtex::wire::{self, slice_in_pin, slice_out_pin};
use virtex::RowCol;

/// Input width of the multiplier (fixed by the 4-input LUT).
pub const IN_WIDTH: usize = 4;

/// A `4 x 4 -> out_width` constant multiplier core.
#[derive(Debug)]
pub struct ConstMultiplier {
    constant: u8,
    out_width: usize,
    origin: RowCol,
    state: CoreState,
}

impl ConstMultiplier {
    /// Multiplier by `constant` (4 bits), producing `out_width` product
    /// bits (≤ 8), at `origin`.
    pub fn new(constant: u8, out_width: usize, origin: RowCol) -> Self {
        assert!(constant < 16, "constant is 4 bits");
        assert!(out_width > 0 && out_width <= 8);
        ConstMultiplier {
            constant,
            out_width,
            origin,
            state: CoreState::new(),
        }
    }

    /// The run-time parameter.
    pub fn constant(&self) -> u8 {
        self.constant
    }

    /// Change the constant (apply via [`crate::replace_with`]).
    pub fn set_constant(&mut self, constant: u8) {
        assert!(constant < 16);
        self.constant = constant;
    }

    /// Product width.
    pub fn out_width(&self) -> usize {
        self.out_width
    }

    fn rc(&self, bit: usize) -> RowCol {
        RowCol::new(self.origin.row + bit as u16, self.origin.col)
    }

    /// Input port group `"a"` (4 ports).
    pub fn a_ports(&self) -> &[PortId] {
        self.state.get_ports("a")
    }

    /// Product port group `"p"` (`out_width` ports).
    pub fn p_ports(&self) -> &[PortId] {
        self.state.get_ports("p")
    }

    /// Tile of product bit `bit` (combinational on `X`).
    pub fn product_site(&self, bit: usize) -> RowCol {
        self.rc(bit)
    }
}

impl RtpCore for ConstMultiplier {
    fn name(&self) -> &str {
        "const_multiplier"
    }

    fn footprint(&self) -> (u16, u16) {
        (self.out_width as u16, 1)
    }

    fn origin(&self) -> RowCol {
        self.origin
    }

    fn set_origin(&mut self, rc: RowCol) {
        self.origin = rc;
    }

    fn implement(&mut self, router: &mut Router) -> Result<()> {
        let k = self.constant as u16;
        for bit in 0..self.out_width {
            let rc = self.rc(bit);
            let mask = lut_mask(|a| ((a * k) >> bit) & 1 == 1);
            router.bits_mut().set_lut(rc, 0, 0, mask)?;
            self.state.record_lut(rc, 0, 0);
        }
        // Each input bit fans out to the same LUT input of every product
        // bit's tile.
        let a_targets: Vec<Vec<EndPoint>> = (0..IN_WIDTH)
            .map(|i| {
                (0..self.out_width)
                    .map(|bit| {
                        Pin::at(self.rc(bit), wire::slice_in(0, slice_in_pin::F1 + i as u8)).into()
                    })
                    .collect()
            })
            .collect();
        self.state
            .define_or_rebind_group(router, "a", PortDir::Input, a_targets)?;
        let p_targets: Vec<Vec<EndPoint>> = (0..self.out_width)
            .map(|bit| vec![Pin::at(self.rc(bit), wire::slice_out(0, slice_out_pin::X)).into()])
            .collect();
        self.state
            .define_or_rebind_group(router, "p", PortDir::Output, p_targets)?;
        self.state.set_placed(true);
        Ok(())
    }

    fn remove(&mut self, router: &mut Router) -> Result<()> {
        self.state.tear_down(router)
    }

    fn state(&self) -> &CoreState {
        &self.state
    }
}
