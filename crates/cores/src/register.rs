//! Register bank: a `width`-bit D register.

use crate::core_trait::{CoreState, RtpCore};
use crate::util::buffer_mask;
use jroute::{EndPoint, Pin, PortDir, PortId, Result, Router};
use virtex::wire::{self, slice_in_pin, slice_out_pin};
use virtex::RowCol;

/// A `width`-bit register clocked from a global clock net. One CLB per
/// bit; the F-LUT buffers `F1` into the F flip-flop.
#[derive(Debug)]
pub struct Register {
    width: usize,
    gclk: usize,
    origin: RowCol,
    state: CoreState,
}

impl Register {
    /// Register of `width` bits at `origin`, clocked by `GCLK[gclk]`.
    pub fn new(width: usize, gclk: usize, origin: RowCol) -> Self {
        assert!(width > 0);
        Register {
            width,
            gclk,
            origin,
            state: CoreState::new(),
        }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    fn rc(&self, bit: usize) -> RowCol {
        RowCol::new(self.origin.row + bit as u16, self.origin.col)
    }

    /// Input port group `"d"`.
    pub fn d_ports(&self) -> &[PortId] {
        self.state.get_ports("d")
    }

    /// Output port group `"q"`.
    pub fn q_ports(&self) -> &[PortId] {
        self.state.get_ports("q")
    }

    /// Tile of bit `bit` (`LogicSource::Xq {{ rc, slice: 0 }}`).
    pub fn bit_site(&self, bit: usize) -> RowCol {
        self.rc(bit)
    }
}

impl RtpCore for Register {
    fn name(&self) -> &str {
        "register"
    }

    fn footprint(&self) -> (u16, u16) {
        (self.width as u16, 1)
    }

    fn origin(&self) -> RowCol {
        self.origin
    }

    fn set_origin(&mut self, rc: RowCol) {
        self.origin = rc;
    }

    fn implement(&mut self, router: &mut Router) -> Result<()> {
        for bit in 0..self.width {
            let rc = self.rc(bit);
            router.bits_mut().set_lut(rc, 0, 0, buffer_mask(0))?;
            self.state.record_lut(rc, 0, 0);
            router.route_pip(
                rc,
                wire::gclk(self.gclk),
                wire::slice_in(0, slice_in_pin::CLK),
            )?;
        }
        self.state
            .record_internal_net(Pin::at(self.rc(0), wire::gclk(self.gclk)).into());
        let d_targets: Vec<Vec<EndPoint>> = (0..self.width)
            .map(|bit| vec![Pin::at(self.rc(bit), wire::slice_in(0, slice_in_pin::F1)).into()])
            .collect();
        self.state
            .define_or_rebind_group(router, "d", PortDir::Input, d_targets)?;
        let q_targets: Vec<Vec<EndPoint>> = (0..self.width)
            .map(|bit| vec![Pin::at(self.rc(bit), wire::slice_out(0, slice_out_pin::XQ)).into()])
            .collect();
        self.state
            .define_or_rebind_group(router, "q", PortDir::Output, q_targets)?;
        self.state.set_placed(true);
        Ok(())
    }

    fn remove(&mut self, router: &mut Router) -> Result<()> {
        self.state.tear_down(router)
    }

    fn state(&self) -> &CoreState {
        &self.state
    }
}
