//! Linear-feedback shift register (XNOR form) — a self-sequencing core
//! whose entire behaviour is routing plus two LUT masks, making it a good
//! probe of the router's cross-CLB feedback paths.
//!
//! Fibonacci XNOR LFSR over taps `(w-1, w-2)`: bit 0's next state is
//! `!(q[w-1] ^ q[w-2])`, every other bit shifts. The XNOR form
//! self-starts from the all-zeros reset state and cycles through
//! `2^w - 1` states (all-ones is the lock-up state).

use crate::core_trait::{CoreState, RtpCore};
use crate::util::{buffer_mask, lut_mask};
use jroute::{EndPoint, Pin, PortDir, PortId, Result, Router};
use virtex::wire::{self, slice_in_pin, slice_out_pin};
use virtex::RowCol;

/// A `width`-bit XNOR LFSR (width ≥ 2) clocked from a global clock net.
#[derive(Debug)]
pub struct Lfsr {
    width: usize,
    gclk: usize,
    origin: RowCol,
    state: CoreState,
}

impl Lfsr {
    /// LFSR of `width` bits at `origin`, clocked by `GCLK[gclk]`.
    pub fn new(width: usize, gclk: usize, origin: RowCol) -> Self {
        assert!((2..=32).contains(&width));
        Lfsr {
            width,
            gclk,
            origin,
            state: CoreState::new(),
        }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    fn rc(&self, bit: usize) -> RowCol {
        RowCol::new(self.origin.row + bit as u16, self.origin.col)
    }

    /// Output port group `"q"`: the register state.
    pub fn q_ports(&self) -> &[PortId] {
        self.state.get_ports("q")
    }

    /// Tile of state bit `bit` (`LogicSource::Xq {{ rc, slice: 0 }}`).
    pub fn bit_site(&self, bit: usize) -> RowCol {
        self.rc(bit)
    }
}

impl RtpCore for Lfsr {
    fn name(&self) -> &str {
        "lfsr"
    }

    fn footprint(&self) -> (u16, u16) {
        (self.width as u16, 1)
    }

    fn origin(&self) -> RowCol {
        self.origin
    }

    fn set_origin(&mut self, rc: RowCol) {
        self.origin = rc;
    }

    fn implement(&mut self, router: &mut Router) -> Result<()> {
        let w = self.width;
        for bit in 0..w {
            let rc = self.rc(bit);
            let mask = if bit == 0 {
                // next = !(tap1 ^ tap2) on inputs F1, F2.
                lut_mask(|a| ((a & 1) ^ ((a >> 1) & 1)) == 0)
            } else {
                buffer_mask(0) // next = previous bit on F1.
            };
            router.bits_mut().set_lut(rc, 0, 0, mask)?;
            self.state.record_lut(rc, 0, 0);
            router.route_pip(
                rc,
                wire::gclk(self.gclk),
                wire::slice_in(0, slice_in_pin::CLK),
            )?;
        }
        self.state
            .record_internal_net(Pin::at(self.rc(0), wire::gclk(self.gclk)).into());
        // Shift chain: q[i] -> F1 of bit i+1; the taps also feed bit 0.
        for bit in 0..w {
            let q: EndPoint = Pin::at(self.rc(bit), wire::slice_out(0, slice_out_pin::XQ)).into();
            let mut sinks: Vec<EndPoint> = Vec::new();
            if bit + 1 < w {
                sinks.push(Pin::at(self.rc(bit + 1), wire::slice_in(0, slice_in_pin::F1)).into());
            }
            if bit == w - 1 {
                sinks.push(Pin::at(self.rc(0), wire::slice_in(0, slice_in_pin::F1)).into());
            }
            if bit == w - 2 {
                sinks.push(Pin::at(self.rc(0), wire::slice_in(0, slice_in_pin::F2)).into());
            }
            if !sinks.is_empty() {
                router.route_fanout(&q, &sinks)?;
                self.state.record_internal_net(q);
            }
        }
        let q_targets: Vec<Vec<EndPoint>> = (0..w)
            .map(|bit| vec![Pin::at(self.rc(bit), wire::slice_out(0, slice_out_pin::XQ)).into()])
            .collect();
        self.state
            .define_or_rebind_group(router, "q", PortDir::Output, q_targets)?;
        self.state.set_placed(true);
        Ok(())
    }

    fn remove(&mut self, router: &mut Router) -> Result<()> {
        self.state.tear_down(router)
    }

    fn state(&self) -> &CoreState {
        &self.state
    }
}
