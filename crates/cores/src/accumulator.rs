//! Accumulator: `acc <= acc + a` each clock — the registered DSP
//! workhorse core (the paper's motivating RTR applications are
//! DSP-style data-flow designs).
//!
//! Per bit: the F-LUT computes `acc ^ a ^ cin` (three inputs) feeding the
//! F flip-flop; the G-LUT computes the majority carry. The accumulator
//! feedback (`XQ` back into input 1 of both LUTs) and the carry ripple
//! are routed through the fabric by the auto-router.

use crate::core_trait::{CoreState, RtpCore};
use crate::util::lut_mask;
use jroute::{EndPoint, Pin, PortDir, PortId, Result, Router};
use virtex::wire::{self, slice_in_pin, slice_out_pin};
use virtex::RowCol;

/// A `width`-bit accumulator clocked from a global clock net.
#[derive(Debug)]
pub struct Accumulator {
    width: usize,
    gclk: usize,
    origin: RowCol,
    state: CoreState,
}

impl Accumulator {
    /// Accumulator of `width` bits at `origin`, clocked by `GCLK[gclk]`.
    pub fn new(width: usize, gclk: usize, origin: RowCol) -> Self {
        assert!(width > 0 && width <= 32);
        Accumulator {
            width,
            gclk,
            origin,
            state: CoreState::new(),
        }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    fn rc(&self, bit: usize) -> RowCol {
        RowCol::new(self.origin.row + bit as u16, self.origin.col)
    }

    /// Input port group `"a"` (the addend).
    pub fn a_ports(&self) -> &[PortId] {
        self.state.get_ports("a")
    }

    /// Output port group `"acc"` (the registered accumulator value).
    pub fn acc_ports(&self) -> &[PortId] {
        self.state.get_ports("acc")
    }

    /// Tile of bit `bit` (`LogicSource::Xq {{ rc, slice: 0 }}`).
    pub fn bit_site(&self, bit: usize) -> RowCol {
        self.rc(bit)
    }
}

impl RtpCore for Accumulator {
    fn name(&self) -> &str {
        "accumulator"
    }

    fn footprint(&self) -> (u16, u16) {
        (self.width as u16, 1)
    }

    fn origin(&self) -> RowCol {
        self.origin
    }

    fn set_origin(&mut self, rc: RowCol) {
        self.origin = rc;
    }

    fn implement(&mut self, router: &mut Router) -> Result<()> {
        for bit in 0..self.width {
            let rc = self.rc(bit);
            // Address bits: 0 = acc (input 1), 1 = a (input 2),
            // 2 = cin (input 3). Bit 0 folds cin = 0.
            let sum = lut_mask(|addr| {
                let acc = addr & 1 == 1;
                let a = (addr >> 1) & 1 == 1;
                let cin = bit != 0 && (addr >> 2) & 1 == 1;
                acc ^ a ^ cin
            });
            let carry = lut_mask(|addr| {
                let acc = addr & 1 == 1;
                let a = (addr >> 1) & 1 == 1;
                let cin = bit != 0 && (addr >> 2) & 1 == 1;
                (acc & a) | (acc & cin) | (a & cin)
            });
            router.bits_mut().set_lut(rc, 0, 0, sum)?;
            self.state.record_lut(rc, 0, 0);
            router.bits_mut().set_lut(rc, 0, 1, carry)?;
            self.state.record_lut(rc, 0, 1);
            router.route_pip(
                rc,
                wire::gclk(self.gclk),
                wire::slice_in(0, slice_in_pin::CLK),
            )?;
            // Accumulator feedback into input 1 of both LUTs.
            let xq: EndPoint = Pin::at(rc, wire::slice_out(0, slice_out_pin::XQ)).into();
            router.route_fanout(
                &xq,
                &[
                    Pin::at(rc, wire::slice_in(0, slice_in_pin::F1)).into(),
                    Pin::at(rc, wire::slice_in(0, slice_in_pin::G1)).into(),
                ],
            )?;
            self.state.record_internal_net(xq);
        }
        // Carry ripple into input 3.
        for bit in 0..self.width - 1 {
            let y: EndPoint = Pin::at(self.rc(bit), wire::slice_out(0, slice_out_pin::Y)).into();
            let next = self.rc(bit + 1);
            router.route_fanout(
                &y,
                &[
                    Pin::at(next, wire::slice_in(0, slice_in_pin::F3)).into(),
                    Pin::at(next, wire::slice_in(0, slice_in_pin::G3)).into(),
                ],
            )?;
            self.state.record_internal_net(y);
        }
        self.state
            .record_internal_net(Pin::at(self.rc(0), wire::gclk(self.gclk)).into());
        // Ports.
        let a_targets: Vec<Vec<EndPoint>> = (0..self.width)
            .map(|bit| {
                let rc = self.rc(bit);
                vec![
                    Pin::at(rc, wire::slice_in(0, slice_in_pin::F2)).into(),
                    Pin::at(rc, wire::slice_in(0, slice_in_pin::G2)).into(),
                ]
            })
            .collect();
        self.state
            .define_or_rebind_group(router, "a", PortDir::Input, a_targets)?;
        let acc_targets: Vec<Vec<EndPoint>> = (0..self.width)
            .map(|bit| vec![Pin::at(self.rc(bit), wire::slice_out(0, slice_out_pin::XQ)).into()])
            .collect();
        self.state
            .define_or_rebind_group(router, "acc", PortDir::Output, acc_targets)?;
        self.state.set_placed(true);
        Ok(())
    }

    fn remove(&mut self, router: &mut Router) -> Result<()> {
        self.state.tear_down(router)
    }

    fn state(&self) -> &CoreState {
        &self.state
    }
}
