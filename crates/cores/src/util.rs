//! LUT mask construction helpers.

/// Build a 16-bit LUT mask from a truth function over the 4-bit address
/// (`addr` bit 0 = input 1, … bit 3 = input 4).
pub fn lut_mask(f: impl Fn(u16) -> bool) -> u16 {
    let mut mask = 0u16;
    for addr in 0..16u16 {
        if f(addr) {
            mask |= 1 << addr;
        }
    }
    mask
}

/// Identity of address bit `bit` (a LUT buffer of one input).
pub fn buffer_mask(bit: u8) -> u16 {
    lut_mask(|a| (a >> bit) & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_match_truth_tables() {
        assert_eq!(lut_mask(|_| false), 0);
        assert_eq!(lut_mask(|_| true), 0xFFFF);
        assert_eq!(buffer_mask(0), 0xAAAA);
        assert_eq!(buffer_mask(1), 0xCCCC);
        assert_eq!(buffer_mask(2), 0xF0F0);
        assert_eq!(buffer_mask(3), 0xFF00);
        // XOR of inputs 1 and 2.
        let xor = lut_mask(|a| ((a & 1) ^ ((a >> 1) & 1)) == 1);
        assert_eq!(xor, 0x6666);
    }
}
