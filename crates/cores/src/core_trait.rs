//! The run-time parameterizable core abstraction (paper §3.2, §4).
//!
//! *"Another goal when designing the JRoute API was to support a
//! hierarchical and reusable library of run-time parameterizable
//! cores."* A core occupies a rectangle of CLBs, configures LUTs and
//! internal routing, and exposes *ports* grouped per bus. The paper's
//! routing guidelines are followed: every port is in a group, the router
//! is called for each port's internal connection, and `get_ports(group)`
//! returns the group's ports in bit order.

use jroute::{EndPoint, PortDir, PortId, Result, RouteError, Router};
use std::collections::HashMap;
use virtex::RowCol;

/// A run-time parameterizable core.
pub trait RtpCore {
    /// Human-readable core type name.
    fn name(&self) -> &str;

    /// Footprint in CLBs: `(rows, cols)` from the origin (inclusive).
    fn footprint(&self) -> (u16, u16);

    /// Current placement origin (south-west corner).
    fn origin(&self) -> RowCol;

    /// Move the placement origin (takes effect at the next
    /// [`RtpCore::implement`]).
    fn set_origin(&mut self, rc: RowCol);

    /// Configure the core at its origin: LUTs, internal routing, and port
    /// (re)binding. Idempotent with respect to ports: the first call
    /// defines them, later calls rebind them (which auto-reconnects
    /// remembered connections, §3.3).
    fn implement(&mut self, router: &mut Router) -> Result<()>;

    /// Remove the core: unroute its internal nets and erase its LUTs.
    /// Port definitions survive (their bindings go stale until the next
    /// `implement`).
    fn remove(&mut self, router: &mut Router) -> Result<()>;

    /// Port bookkeeping shared by all cores.
    fn state(&self) -> &CoreState;
}

/// Shared implementation state: placement, port ids, internal nets, LUTs.
#[derive(Debug, Default)]
pub struct CoreState {
    /// Port ids per group, in bit order.
    ports: HashMap<String, Vec<PortId>>,
    /// Direction of each group.
    group_dirs: HashMap<String, PortDir>,
    /// Sources of internally routed nets (to unroute on removal).
    internal_nets: Vec<EndPoint>,
    /// LUTs configured (to erase on removal): `(rc, slice, lut)`.
    luts: Vec<(RowCol, u8, u8)>,
    /// Whether the core is currently implemented on the device.
    placed: bool,
}

impl CoreState {
    /// Fresh, unplaced core state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the core is currently configured on the device.
    pub fn is_placed(&self) -> bool {
        self.placed
    }

    pub(crate) fn set_placed(&mut self, placed: bool) {
        self.placed = placed;
    }

    /// The paper's `getPorts()` for this core.
    pub fn get_ports(&self, group: &str) -> &[PortId] {
        self.ports.get(group).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All group names with their directions.
    pub fn groups(&self) -> impl Iterator<Item = (&str, PortDir)> {
        self.group_dirs.iter().map(|(g, d)| (g.as_str(), *d))
    }

    /// Define the group's ports on first call, rebind them afterwards.
    /// `targets[i]` is bit `i`'s binding.
    pub(crate) fn define_or_rebind_group(
        &mut self,
        router: &mut Router,
        group: &str,
        dir: PortDir,
        targets: Vec<Vec<EndPoint>>,
    ) -> Result<()> {
        match self.ports.get(group) {
            Some(ids) => {
                if ids.len() != targets.len() {
                    // A core's bus width is fixed over its lifetime.
                    return Err(RouteError::BusWidthMismatch {
                        sources: ids.len(),
                        sinks: targets.len(),
                    });
                }
                for (id, t) in ids.clone().into_iter().zip(targets) {
                    router.rebind_port(id, t)?;
                }
            }
            None => {
                let ids: Vec<PortId> = targets
                    .into_iter()
                    .enumerate()
                    .map(|(bit, t)| router.define_port(format!("{group}[{bit}]"), group, dir, t))
                    .collect();
                self.ports.insert(group.to_string(), ids);
                self.group_dirs.insert(group.to_string(), dir);
            }
        }
        Ok(())
    }

    /// Record an internal net's source endpoint for later removal.
    pub(crate) fn record_internal_net(&mut self, source: EndPoint) {
        if !self.internal_nets.contains(&source) {
            self.internal_nets.push(source);
        }
    }

    /// Record a configured LUT for later erasure.
    pub(crate) fn record_lut(&mut self, rc: RowCol, slice: u8, lut: u8) {
        if !self.luts.contains(&(rc, slice, lut)) {
            self.luts.push((rc, slice, lut));
        }
    }

    /// Unroute internal nets and erase LUTs (the shared `remove` body).
    pub(crate) fn tear_down(&mut self, router: &mut Router) -> Result<()> {
        for src in self.internal_nets.drain(..) {
            match router.unroute(&src) {
                Ok(_) | Err(RouteError::NoSuchNet { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        for (rc, slice, lut) in self.luts.drain(..) {
            router
                .bits_mut()
                .set_lut(rc, slice, lut, 0)
                .map_err(RouteError::JBits)?;
        }
        self.placed = false;
        Ok(())
    }
}

/// Detach a core from its neighbours: unroute nets driven by its output
/// ports (remembered) and branches arriving at its input ports
/// (remembered via the upstream nets). Call before removing/relocating.
pub fn detach(core: &dyn RtpCore, router: &mut Router) -> Result<()> {
    let state = core.state();
    let groups: Vec<(String, PortDir)> = state.groups().map(|(g, d)| (g.to_string(), d)).collect();
    for (group, dir) in groups {
        for &id in state.get_ports(&group) {
            let ep: EndPoint = id.into();
            let r = match dir {
                PortDir::Output => router.unroute(&ep).map(|_| ()),
                PortDir::Input => router.unroute_sink(&ep).map(|_| ()),
            };
            match r {
                Ok(())
                | Err(RouteError::NoSuchNet { .. })
                | Err(RouteError::UnboundPort { .. }) => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(())
}

/// Relocate a core: detach, remove, move, re-implement. Rebinding the
/// ports inside `implement` automatically re-routes the remembered
/// connections — the paper's §3.3 core-relocation flow.
pub fn relocate(core: &mut dyn RtpCore, router: &mut Router, new_origin: RowCol) -> Result<()> {
    detach(core, router)?;
    core.remove(router)?;
    core.set_origin(new_origin);
    core.implement(router)
}

/// Replace-in-place flow for run-time parameter changes (§3.3's constant
/// multiplier example): detach, remove, apply `change`, re-implement.
pub fn replace_with<C: RtpCore>(
    core: &mut C,
    router: &mut Router,
    change: impl FnOnce(&mut C),
) -> Result<()> {
    detach(core, router)?;
    core.remove(router)?;
    change(core);
    core.implement(router)
}
