//! Counter: the paper's §4 composition example made concrete.
//!
//! *"a counter can be made from a constant adder with the output fed back
//! to one input ports and the other input set to a value of one."* This
//! core is that structure folded into one column: per bit, the F-LUT
//! computes `xq ^ cin`, the G-LUT the carry `xq & cin` (bit 0 folds
//! `cin = 1`), the F flip-flop holds the count bit, and the feedback from
//! `XQ` back into the LUT inputs is routed through the fabric by the
//! auto-router.

use crate::core_trait::{CoreState, RtpCore};
use crate::util::lut_mask;
use jroute::{EndPoint, Pin, PortDir, PortId, Result, Router};
use virtex::wire::{self, slice_in_pin, slice_out_pin};
use virtex::RowCol;

/// A `width`-bit synchronous up-counter clocked from a global clock net.
#[derive(Debug)]
pub struct Counter {
    width: usize,
    gclk: usize,
    origin: RowCol,
    state: CoreState,
}

impl Counter {
    /// Counter of `width` bits at `origin`, clocked by `GCLK[gclk]`.
    pub fn new(width: usize, gclk: usize, origin: RowCol) -> Self {
        assert!(width > 0 && width <= 32);
        Counter {
            width,
            gclk,
            origin,
            state: CoreState::new(),
        }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    fn rc(&self, bit: usize) -> RowCol {
        RowCol::new(self.origin.row + bit as u16, self.origin.col)
    }

    /// Output port group `"q"`: the count bits (registered).
    pub fn q_ports(&self) -> &[PortId] {
        self.state.get_ports("q")
    }

    /// Tile of count bit `bit`, for `vsim` inspection
    /// (`LogicSource::Xq {{ rc, slice: 0 }}`).
    pub fn bit_site(&self, bit: usize) -> RowCol {
        self.rc(bit)
    }
}

impl RtpCore for Counter {
    fn name(&self) -> &str {
        "counter"
    }

    fn footprint(&self) -> (u16, u16) {
        (self.width as u16, 1)
    }

    fn origin(&self) -> RowCol {
        self.origin
    }

    fn set_origin(&mut self, rc: RowCol) {
        self.origin = rc;
    }

    fn implement(&mut self, router: &mut Router) -> Result<()> {
        for bit in 0..self.width {
            let rc = self.rc(bit);
            // Address bit 0 = xq (input 1), address bit 1 = cin (input 2).
            let (sum, carry) = if bit == 0 {
                // cin folded to 1: toggle and pass-through.
                (lut_mask(|a| a & 1 == 0), lut_mask(|a| a & 1 == 1))
            } else {
                (
                    lut_mask(|a| ((a & 1) ^ ((a >> 1) & 1)) == 1),
                    lut_mask(|a| (a & 1 == 1) && ((a >> 1) & 1 == 1)),
                )
            };
            router.bits_mut().set_lut(rc, 0, 0, sum)?;
            self.state.record_lut(rc, 0, 0);
            router.bits_mut().set_lut(rc, 0, 1, carry)?;
            self.state.record_lut(rc, 0, 1);
            // Clock the F flip-flop.
            router.route_pip(
                rc,
                wire::gclk(self.gclk),
                wire::slice_in(0, slice_in_pin::CLK),
            )?;
            // Feedback: XQ back into both LUTs' input 1 (the §4 "output
            // fed back to one input" wiring, found by the auto-router).
            let xq: EndPoint = Pin::at(rc, wire::slice_out(0, slice_out_pin::XQ)).into();
            let fb_sinks: Vec<EndPoint> = vec![
                Pin::at(rc, wire::slice_in(0, slice_in_pin::F1)).into(),
                Pin::at(rc, wire::slice_in(0, slice_in_pin::G1)).into(),
            ];
            router.route_fanout(&xq, &fb_sinks)?;
            self.state.record_internal_net(xq);
        }
        // Carry ripple: Y of bit i to input 2 of bit i+1's LUTs.
        for bit in 0..self.width - 1 {
            let y: EndPoint = Pin::at(self.rc(bit), wire::slice_out(0, slice_out_pin::Y)).into();
            let next = self.rc(bit + 1);
            let sinks: Vec<EndPoint> = vec![
                Pin::at(next, wire::slice_in(0, slice_in_pin::F2)).into(),
                Pin::at(next, wire::slice_in(0, slice_in_pin::G2)).into(),
            ];
            router.route_fanout(&y, &sinks)?;
            self.state.record_internal_net(y);
        }
        // The clock net is also internal state to tear down.
        self.state
            .record_internal_net(Pin::at(self.rc(0), wire::gclk(self.gclk)).into());
        let q_targets: Vec<Vec<EndPoint>> = (0..self.width)
            .map(|bit| vec![Pin::at(self.rc(bit), wire::slice_out(0, slice_out_pin::XQ)).into()])
            .collect();
        self.state
            .define_or_rebind_group(router, "q", PortDir::Output, q_targets)?;
        self.state.set_placed(true);
        Ok(())
    }

    fn remove(&mut self, router: &mut Router) -> Result<()> {
        self.state.tear_down(router)
    }

    fn state(&self) -> &CoreState {
        &self.state
    }
}
