//! # jroute-cores — run-time parameterizable cores over the JRoute API
//!
//! The paper's §3.2/§4 story: with ports and auto-routing, *"a user can
//! create designs without knowledge of the routing architecture by using
//! port to port connections. The user only really needs a small set of
//! architecture-specific cores to start with."* This crate is that small
//! set:
//!
//! * [`StimulusBank`] — drivable outputs standing in for IOBs;
//! * [`ConstAdder`] — `a + K`, carry rippled through general routing;
//! * [`Counter`] — the paper's §4 example (constant adder + feedback);
//! * [`ConstMultiplier`] — the §3.3 replaceable constant multiplier
//!   (LUT-based distributed arithmetic);
//! * [`Register`] — a D register bank.
//!
//! Plus the RTR verbs of §3.3: [`relocate`] and [`replace_with`], which
//! exercise unroute → rebind → automatic reconnection.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accumulator;
pub mod adder;
pub mod core_trait;
pub mod counter;
pub mod floorplan;
pub mod lfsr;
pub mod multiplier;
pub mod register;
pub mod stimulus;
pub mod util;

pub use accumulator::Accumulator;
pub use adder::ConstAdder;
pub use core_trait::{detach, relocate, replace_with, CoreState, RtpCore};
pub use counter::Counter;
pub use floorplan::{Floorplan, Region, RegionId};
pub use lfsr::Lfsr;
pub use multiplier::{ConstMultiplier, IN_WIDTH};
pub use register::Register;
pub use stimulus::StimulusBank;
