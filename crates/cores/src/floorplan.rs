//! Run-time floorplanning: tracking which CLBs cores occupy.
//!
//! Paper §1: *"Since the placement of cores is one of the parameters that
//! can be configured at run-time, the routing is not predefined."*
//! Something has to pick those placements; this module is the run-time
//! placer: a CLB occupancy grid with first-fit region allocation, the
//! substrate RTR systems use to insert, remove and relocate cores while
//! the device runs.

use virtex::{Dims, RowCol};

/// Identifier of a placed region (caller-chosen, e.g. a core index).
pub type RegionId = u32;

/// A rectangular claim on the CLB array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// South-west corner.
    pub origin: RowCol,
    /// Rows extent.
    pub rows: u16,
    /// Columns extent.
    pub cols: u16,
}

impl Region {
    /// Whether two regions overlap.
    pub fn overlaps(&self, other: &Region) -> bool {
        let (r1a, r1b) = (self.origin.row, self.origin.row + self.rows);
        let (c1a, c1b) = (self.origin.col, self.origin.col + self.cols);
        let (r2a, r2b) = (other.origin.row, other.origin.row + other.rows);
        let (c2a, c2b) = (other.origin.col, other.origin.col + other.cols);
        r1a < r2b && r2a < r1b && c1a < c2b && c2a < c1b
    }

    /// Whether the region lies fully on a `dims` device.
    pub fn fits(&self, dims: Dims) -> bool {
        self.origin.row + self.rows <= dims.rows && self.origin.col + self.cols <= dims.cols
    }
}

/// The run-time floorplan: occupied regions on one device.
#[derive(Debug)]
pub struct Floorplan {
    dims: Dims,
    regions: Vec<(RegionId, Region)>,
}

impl Floorplan {
    /// Empty floorplan for a device of the given dimensions.
    pub fn new(dims: Dims) -> Self {
        Floorplan {
            dims,
            regions: Vec::new(),
        }
    }

    /// Occupied CLB count.
    pub fn occupied_clbs(&self) -> usize {
        self.regions
            .iter()
            .map(|(_, r)| r.rows as usize * r.cols as usize)
            .sum()
    }

    /// All current regions.
    pub fn regions(&self) -> impl Iterator<Item = (RegionId, Region)> + '_ {
        self.regions.iter().copied()
    }

    /// Whether `region` is free (on-chip and overlapping nothing).
    pub fn is_free(&self, region: Region) -> bool {
        region.fits(self.dims) && self.regions.iter().all(|(_, r)| !r.overlaps(&region))
    }

    /// Claim an explicit region. Fails (returns `false`) if occupied or
    /// off-chip.
    pub fn claim(&mut self, id: RegionId, region: Region) -> bool {
        if !self.is_free(region) {
            return false;
        }
        self.regions.push((id, region));
        true
    }

    /// Release every region owned by `id`. Returns how many were freed.
    pub fn release(&mut self, id: RegionId) -> usize {
        let before = self.regions.len();
        self.regions.retain(|(owner, _)| *owner != id);
        before - self.regions.len()
    }

    /// First-fit search: find a free `rows x cols` region, scanning
    /// row-major from the origin, and claim it for `id`.
    pub fn place(&mut self, id: RegionId, rows: u16, cols: u16) -> Option<RowCol> {
        for r in 0..self.dims.rows.saturating_sub(rows - 1) {
            for c in 0..self.dims.cols.saturating_sub(cols - 1) {
                let region = Region {
                    origin: RowCol::new(r, c),
                    rows,
                    cols,
                };
                if self.claim(id, region) {
                    return Some(region.origin);
                }
            }
        }
        None
    }

    /// Fraction of the device occupied, 0.0..=1.0.
    pub fn utilization(&self) -> f64 {
        self.occupied_clbs() as f64 / self.dims.tiles() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIMS: Dims = Dims::new(16, 24);

    #[test]
    fn overlap_detection_covers_edges() {
        let a = Region {
            origin: RowCol::new(2, 2),
            rows: 4,
            cols: 4,
        };
        let touching = Region {
            origin: RowCol::new(6, 2),
            rows: 2,
            cols: 2,
        };
        let inside = Region {
            origin: RowCol::new(3, 3),
            rows: 1,
            cols: 1,
        };
        let corner = Region {
            origin: RowCol::new(5, 5),
            rows: 3,
            cols: 3,
        };
        let apart = Region {
            origin: RowCol::new(10, 10),
            rows: 2,
            cols: 2,
        };
        assert!(!a.overlaps(&touching), "edge-adjacent is not overlap");
        assert!(a.overlaps(&inside));
        assert!(a.overlaps(&corner));
        assert!(!a.overlaps(&apart));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn first_fit_packs_left_to_right() {
        let mut fp = Floorplan::new(DIMS);
        let a = fp.place(0, 4, 4).unwrap();
        let b = fp.place(1, 4, 4).unwrap();
        assert_eq!(a, RowCol::new(0, 0));
        assert_eq!(b, RowCol::new(0, 4));
        assert_eq!(fp.occupied_clbs(), 32);
        assert!(fp.utilization() > 0.0);
    }

    #[test]
    fn claims_respect_occupancy_and_bounds() {
        let mut fp = Floorplan::new(DIMS);
        assert!(fp.claim(
            0,
            Region {
                origin: RowCol::new(0, 0),
                rows: 4,
                cols: 4
            }
        ));
        assert!(!fp.claim(
            1,
            Region {
                origin: RowCol::new(2, 2),
                rows: 4,
                cols: 4
            }
        ));
        assert!(
            !fp.claim(
                1,
                Region {
                    origin: RowCol::new(14, 22),
                    rows: 4,
                    cols: 4
                }
            ),
            "off-chip"
        );
        assert!(fp.claim(
            1,
            Region {
                origin: RowCol::new(4, 0),
                rows: 4,
                cols: 4
            }
        ));
    }

    #[test]
    fn release_frees_space_for_reuse() {
        let mut fp = Floorplan::new(DIMS);
        fp.place(0, 16, 24).unwrap(); // whole device
        assert!(fp.place(1, 1, 1).is_none());
        assert_eq!(fp.release(0), 1);
        assert_eq!(fp.place(1, 1, 1), Some(RowCol::new(0, 0)));
        assert_eq!(fp.release(9), 0, "unknown id frees nothing");
    }

    #[test]
    fn device_fills_up_exactly() {
        let mut fp = Floorplan::new(Dims::new(8, 8));
        let mut placed = 0;
        while fp.place(placed, 2, 2).is_some() {
            placed += 1;
        }
        assert_eq!(placed, 16, "8x8 holds exactly sixteen 2x2 cores");
        assert!((fp.utilization() - 1.0).abs() < 1e-9);
    }
}
