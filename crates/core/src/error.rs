//! Router errors.
//!
//! The paper's contract (§3.4): *"An exception is thrown in cases where
//! the user tries to make connections that create contention."* Rust
//! surfaces the same conditions as `Result`s.

use jbits::JBitsError;
use virtex::{RowCol, Segment, Wire};

/// Identifier of a routed net inside a [`crate::router::Router`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Errors returned by the JRoute API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are named self-describingly
pub enum RouteError {
    /// The connection would drive a wire that is already driven — the
    /// contention the router exists to prevent (paper §3.4).
    Contention {
        /// The segment that would be doubly driven.
        segment: Segment,
        /// Net currently owning the segment, when the router knows it.
        owner: Option<NetId>,
    },
    /// A resource on the requested path is already in use by another net.
    ResourceInUse {
        segment: Segment,
        owner: Option<NetId>,
    },
    /// The low-level configuration layer rejected the operation.
    JBits(JBitsError),
    /// Two consecutive path wires cannot be connected anywhere the first
    /// is visible.
    PathDisconnected { at: RowCol, from: Wire, to: Wire },
    /// The template router exhausted all combinations: *"The call would
    /// fail if there is no combination of resources that are available
    /// that follow the template."* (§3.1)
    TemplateExhausted,
    /// A template walk would leave the device.
    TemplateOffChip,
    /// The auto-router found no path from source to sink.
    Unroutable { from: Segment, to: Segment },
    /// An endpoint referenced a port that is not bound to any pins.
    UnboundPort { port: u32 },
    /// An endpoint resolved to no pins at all.
    EmptyEndpoint,
    /// Bus routing requires equally many sources and sinks (§3.1).
    BusWidthMismatch { sources: usize, sinks: usize },
    /// No net is rooted at / reaches the given segment.
    NoSuchNet { segment: Segment },
    /// The named wire does not exist at that tile.
    NoSuchWire { rc: RowCol, wire: Wire },
    /// A source endpoint must be a drivable wire (a logic output or an
    /// already-driven segment).
    NotASource { segment: Segment },
}

impl From<JBitsError> for RouteError {
    fn from(e: JBitsError) -> Self {
        RouteError::JBits(e)
    }
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Contention { segment, owner } => {
                write!(f, "contention on {segment}")?;
                if let Some(o) = owner {
                    write!(f, " (owned by net {})", o.0)?;
                }
                Ok(())
            }
            RouteError::ResourceInUse { segment, .. } => {
                write!(f, "resource {segment} is already in use")
            }
            RouteError::JBits(e) => write!(f, "configuration error: {e}"),
            RouteError::PathDisconnected { at, from, to } => {
                write!(
                    f,
                    "path break at {at}: {} cannot reach {}",
                    from.name(),
                    to.name()
                )
            }
            RouteError::TemplateExhausted => {
                f.write_str("no available resource combination follows the template")
            }
            RouteError::TemplateOffChip => f.write_str("template walks off the device"),
            RouteError::Unroutable { from, to } => {
                write!(f, "no route from {from} to {to}")
            }
            RouteError::UnboundPort { port } => write!(f, "port {port} is not bound to pins"),
            RouteError::EmptyEndpoint => f.write_str("endpoint resolves to no pins"),
            RouteError::BusWidthMismatch { sources, sinks } => {
                write!(f, "bus width mismatch: {sources} sources vs {sinks} sinks")
            }
            RouteError::NoSuchNet { segment } => write!(f, "no net at {segment}"),
            RouteError::NoSuchWire { rc, wire } => {
                write!(f, "wire {} does not exist at {rc}", wire.name())
            }
            RouteError::NotASource { segment } => {
                write!(f, "{segment} is not a drivable source")
            }
        }
    }
}

impl std::error::Error for RouteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouteError::JBits(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience result alias for router operations.
pub type Result<T> = std::result::Result<T, RouteError>;

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::wire;

    #[test]
    fn errors_display_usefully() {
        let seg = Segment {
            rc: RowCol::new(1, 2),
            wire: wire::out(3),
        };
        let e = RouteError::Contention {
            segment: seg,
            owner: Some(NetId(7)),
        };
        let s = e.to_string();
        assert!(s.contains("contention") && s.contains("net 7"), "{s}");
        let e = RouteError::BusWidthMismatch {
            sources: 8,
            sinks: 4,
        };
        assert!(e.to_string().contains("8 sources vs 4 sinks"));
    }

    #[test]
    fn jbits_errors_convert() {
        let e: RouteError = JBitsError::BadTile {
            rc: RowCol::new(0, 0),
        }
        .into();
        assert!(matches!(e, RouteError::JBits(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
