//! Telemetry-driven self-tuning of maze/PathFinder budgets.
//!
//! The scenario corpus closes the loop the parallel-routing literature
//! (arXiv:2407.00009) sketches: the router already *measures* its own
//! search behaviour through [`jroute_obs`] — open-list pushes/pops, a
//! `maze.nodes_expanded` histogram, bounded-search fallbacks and the
//! `pathfinder.bbox_growth` histogram of per-net search-box widening —
//! so a long-running service can *derive* its next configuration from
//! the last window instead of shipping one static guess.
//!
//! [`TunerReport`] condenses an [`obs::Report`](jroute_obs::Report) into
//! the handful of aggregates the tuning rules read, and
//! [`TunerReport::tune`] applies them to a [`PathFinderConfig`]:
//!
//! * **node budget** — successful searches never came close to the
//!   2-million-node default on the devices we route; capping
//!   [`MazeConfig::max_nodes`] a healthy multiple above the observed
//!   worst case makes hopeless searches (the ones that *do* hit the
//!   budget) give up orders of magnitude sooner, without touching any
//!   search that succeeds.
//! * **bbox margin** — when a window shows zero region fallbacks and no
//!   budget-driven growth, the boxes were wider than needed: shrinking
//!   [`PathFinderConfig::bbox_margin`] cuts nodes expanded per search.
//!   When fallbacks or growth do show up, the margin widens toward the
//!   observed growth so the next window routes inside its first box
//!   instead of paying a bounded failure plus a whole-device retry.
//!
//! * **Steiner fan-out threshold** — when the best-of-two Steiner
//!   builder wins often (`steiner.wins` vs `steiner.builds`), lowering
//!   [`TimingConfig::steiner_fanout`] lets more nets benefit; the
//!   threshold only ratchets *down* (clamped at [`MIN_STEINER_FANOUT`])
//!   and the builder keeps the greedy tree as an arm, so wirelength can
//!   never regress.
//! * **criticality exponent** — when the window's `pathfinder.crit`
//!   distribution saturates near the top of the fixed-point scale
//!   (p99 ≥ [`CRIT_SATURATED`]), too many sinks are being treated as
//!   critical to discriminate; raising [`TimingConfig::crit_exp`]
//!   (clamped at [`MAX_CRIT_EXP`]) sharpens the falloff. Exponent-only
//!   and upward-only: congestion cost still dominates non-critical
//!   sinks, so routability is untouched.
//!
//! All rules are deliberately one-sided ratchets with clamps: a tuned
//! config can never lose routability (bounded searches still fall back
//! to the whole device on failure; the budget never drops below a floor
//! comfortably above anything a successful search has used).

use crate::maze::{MazeConfig, CRIT_ONE};
use crate::pathfinder::{PathFinderConfig, TimingConfig};
use jroute_obs::Report;

/// Never tune the node budget below this floor, no matter how small the
/// observed searches were: a congested reroute can legitimately expand
/// far more than a quiet window's worst case.
pub const MIN_NODE_BUDGET: usize = 1 << 14;

/// Headroom multiplier between the observed worst-case expansion and the
/// tuned node budget.
pub const NODE_BUDGET_HEADROOM: usize = 16;

/// Margins are never tuned above this (a box this wide has stopped
/// pruning anything on the devices we route).
pub const MAX_BBOX_MARGIN: u16 = 12;

/// The Steiner fan-out threshold never ratchets below this: 2-sink nets
/// have no Steiner point to find and the builder would only burn a
/// second arm's worth of searches.
pub const MIN_STEINER_FANOUT: usize = 3;

/// The criticality exponent never ratchets above this (RWRoute's own
/// ceiling; beyond it everything but the single critical sink rounds to
/// zero and timing pressure disappears).
pub const MAX_CRIT_EXP: f32 = 3.0;

/// `pathfinder.crit` p99 at or above this (≈ 0.9 in [`CRIT_ONE`]
/// fixed-point) means the criticality distribution has saturated and the
/// exponent should sharpen.
pub const CRIT_SATURATED: u64 = (CRIT_ONE as u64 * 9) / 10;

/// Aggregates extracted from one observation window, ready for tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunerReport {
    /// Maze searches observed (`maze.searches`).
    pub searches: u64,
    /// Searches that failed — node budget or exhausted region
    /// (`maze.search_failures`).
    pub search_failures: u64,
    /// Open-list pushes (`maze.open_pushes`).
    pub open_pushes: u64,
    /// Open-list pops (`maze.open_pops`).
    pub open_pops: u64,
    /// Median of `maze.nodes_expanded`.
    pub expanded_p50: u64,
    /// 99th percentile of `maze.nodes_expanded`.
    pub expanded_p99: u64,
    /// Worst single search (`maze.nodes_expanded` max).
    pub expanded_max: u64,
    /// Bounded searches that had to retry unbounded
    /// (`pathfinder.bbox_fallbacks`).
    pub bbox_fallbacks: u64,
    /// Neighbours pruned by the region test (`maze.bbox_prunes`).
    pub bbox_prunes: u64,
    /// 99th percentile of `pathfinder.bbox_growth` — how much extra
    /// margin re-dirtied nets earned.
    pub growth_p99: u64,
    /// Largest single `pathfinder.bbox_growth` value.
    pub growth_max: u64,
    /// Best-of-two Steiner builds attempted (`steiner.builds`).
    pub steiner_builds: u64,
    /// Builds where the Steiner arm strictly beat the greedy arm
    /// (`steiner.wins`).
    pub steiner_wins: u64,
    /// 99th percentile of the per-sink criticality distribution
    /// (`pathfinder.crit`, in [`CRIT_ONE`] fixed-point units).
    pub crit_p99: u64,
}

impl TunerReport {
    /// Extract the tuning aggregates from a report. Returns `None` when
    /// the window recorded no maze searches — there is nothing to tune
    /// from, and a caller should keep its current config.
    pub fn from_report(rep: &Report) -> Option<Self> {
        let searches = rep.counter("maze.searches").unwrap_or(0);
        if searches == 0 {
            return None;
        }
        let expanded = rep.hist("maze.nodes_expanded");
        let growth = rep.hist("pathfinder.bbox_growth");
        Some(TunerReport {
            searches,
            search_failures: rep.counter("maze.search_failures").unwrap_or(0),
            open_pushes: rep.counter("maze.open_pushes").unwrap_or(0),
            open_pops: rep.counter("maze.open_pops").unwrap_or(0),
            expanded_p50: expanded.map_or(0, |h| h.p50()),
            expanded_p99: expanded.map_or(0, |h| h.p99()),
            expanded_max: expanded.map_or(0, |h| h.max()),
            bbox_fallbacks: rep.counter("pathfinder.bbox_fallbacks").unwrap_or(0),
            bbox_prunes: rep.counter("maze.bbox_prunes").unwrap_or(0),
            growth_p99: growth.map_or(0, |h| h.p99()),
            growth_max: growth.map_or(0, |h| h.max()),
            steiner_builds: rep.counter("steiner.builds").unwrap_or(0),
            steiner_wins: rep.counter("steiner.wins").unwrap_or(0),
            crit_p99: rep.hist("pathfinder.crit").map_or(0, |h| h.p99()),
        })
    }

    /// Mean open-list pushes per search — a cheap congestion proxy (a
    /// clean window pushes little beyond the path itself).
    pub fn pushes_per_search(&self) -> f64 {
        self.open_pushes as f64 / self.searches as f64
    }

    /// Fraction of bounded searches that fell back to the whole device.
    pub fn fallback_rate(&self) -> f64 {
        self.bbox_fallbacks as f64 / self.searches as f64
    }

    /// Tuned node budget: observed worst case times
    /// [`NODE_BUDGET_HEADROOM`], clamped to `[MIN_NODE_BUDGET,
    /// base.max_nodes]`. Never raises the budget above the base config —
    /// the caller's ceiling stands.
    pub fn node_budget(&self, base: &MazeConfig) -> usize {
        let want = (self.expanded_max as usize).saturating_mul(NODE_BUDGET_HEADROOM);
        want.clamp(MIN_NODE_BUDGET.min(base.max_nodes), base.max_nodes)
    }

    /// Tuned bounding-box margin. `None` in, `None` out (the caller
    /// disabled region pruning deliberately).
    pub fn bbox_margin(&self, base: Option<u16>) -> Option<u16> {
        let base = base?;
        let tuned = if self.bbox_fallbacks == 0 && self.growth_max == 0 {
            // Every bounded search succeeded in its first box and no net
            // earned extra patience: the boxes are wider than the
            // traffic needs. Tighten by one, keeping at least 1.
            base.saturating_sub(1).max(1)
        } else if self.fallback_rate() > 0.01 || self.growth_p99 > u64::from(base) {
            // Boxes are routinely too tight: pre-pay the growth the nets
            // ended up earning anyway, so the next window's first
            // attempt already covers the detours.
            let grown = u64::from(base)
                .max(self.growth_p99)
                .min(u64::from(MAX_BBOX_MARGIN));
            grown as u16
        } else {
            base
        };
        Some(tuned.min(MAX_BBOX_MARGIN))
    }

    /// Fraction of Steiner builds the Steiner arm won. Zero when no
    /// builds ran.
    pub fn steiner_win_rate(&self) -> f64 {
        if self.steiner_builds == 0 {
            return 0.0;
        }
        self.steiner_wins as f64 / self.steiner_builds as f64
    }

    /// Tuned Steiner fan-out threshold: ratchets down by one when the
    /// Steiner arm won at least half the window's builds (the builder is
    /// clearly paying for its second arm), clamped at
    /// [`MIN_STEINER_FANOUT`]. Never rises — the builder's greedy arm
    /// guarantees a lower threshold cannot cost wirelength.
    pub fn steiner_fanout(&self, base: usize) -> usize {
        if self.steiner_builds > 0 && self.steiner_wins * 2 >= self.steiner_builds {
            base.saturating_sub(1).max(MIN_STEINER_FANOUT)
        } else {
            base.max(MIN_STEINER_FANOUT)
        }
    }

    /// Tuned criticality exponent: sharpens by 0.25 when the window's
    /// criticality distribution saturated (p99 ≥ [`CRIT_SATURATED`]),
    /// clamped at [`MAX_CRIT_EXP`]. Never softens — a quiet window says
    /// nothing about how sharp the exponent needs to be.
    pub fn crit_exp(&self, base: f32) -> f32 {
        if self.crit_p99 >= CRIT_SATURATED {
            (base + 0.25).min(MAX_CRIT_EXP)
        } else {
            base
        }
    }

    /// Apply the timing-specific rules to one [`TimingConfig`].
    pub fn tune_timing(&self, base: &TimingConfig) -> TimingConfig {
        let mut t = base.clone();
        t.steiner_fanout = self.steiner_fanout(base.steiner_fanout);
        t.crit_exp = self.crit_exp(base.crit_exp);
        t
    }

    /// Apply all tuning rules to `base`, returning the next window's
    /// config. Routability is preserved by construction: bounded
    /// searches still retry unbounded on failure, and the node budget
    /// keeps [`NODE_BUDGET_HEADROOM`]× the observed worst case.
    pub fn tune(&self, base: &PathFinderConfig) -> PathFinderConfig {
        let mut cfg = base.clone();
        cfg.maze = self.tune_maze(&base.maze);
        cfg.bbox_margin = self.bbox_margin(base.bbox_margin);
        cfg.timing = base.timing.as_ref().map(|t| self.tune_timing(t));
        cfg
    }

    /// Apply only the maze-level rules (node budget) to `base`.
    pub fn tune_maze(&self, base: &MazeConfig) -> MazeConfig {
        let mut m = base.clone();
        m.max_nodes = self.node_budget(base);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jroute_obs::Recorder;

    /// Build a report through a live recorder, the same way the router
    /// stack does.
    fn window(
        searches: u64,
        failures: u64,
        expansions: &[u64],
        fallbacks: u64,
        growth: &[u64],
    ) -> Report {
        let rec = Recorder::enabled();
        rec.count("maze.searches", searches);
        rec.count("maze.search_failures", failures);
        rec.count("maze.open_pushes", searches * 120);
        rec.count("maze.open_pops", searches * 80);
        for &e in expansions {
            rec.record("maze.nodes_expanded", e);
        }
        rec.count("pathfinder.bbox_fallbacks", fallbacks);
        for &g in growth {
            rec.record("pathfinder.bbox_growth", g);
        }
        rec.report()
    }

    #[test]
    fn empty_window_yields_no_tuner() {
        assert_eq!(
            TunerReport::from_report(&Recorder::enabled().report()),
            None
        );
        assert_eq!(
            TunerReport::from_report(&Recorder::disabled().report()),
            None
        );
    }

    #[test]
    fn aggregates_mirror_the_report() {
        let rep = window(100, 3, &[50, 200, 900], 2, &[1, 4]);
        let t = TunerReport::from_report(&rep).unwrap();
        assert_eq!(t.searches, 100);
        assert_eq!(t.search_failures, 3);
        assert_eq!(t.expanded_max, 900);
        assert_eq!(t.bbox_fallbacks, 2);
        assert_eq!(t.growth_max, 4);
        assert!(t.pushes_per_search() > 100.0);
    }

    #[test]
    fn node_budget_keeps_headroom_and_respects_clamps() {
        let base = MazeConfig::default();
        // Worst case 900 → 16× headroom is far below the floor.
        let quiet = TunerReport::from_report(&window(10, 0, &[900], 0, &[])).unwrap();
        assert_eq!(quiet.node_budget(&base), MIN_NODE_BUDGET);
        // A heavy window lands between floor and ceiling.
        let heavy = TunerReport::from_report(&window(10, 0, &[40_000], 0, &[])).unwrap();
        assert_eq!(heavy.node_budget(&base), 40_000 * NODE_BUDGET_HEADROOM);
        // Never exceeds the base ceiling.
        let wild = TunerReport::from_report(&window(10, 0, &[u32::MAX as u64], 0, &[])).unwrap();
        assert_eq!(wild.node_budget(&base), base.max_nodes);
    }

    #[test]
    fn clean_windows_tighten_the_margin() {
        let t = TunerReport::from_report(&window(50, 0, &[100], 0, &[])).unwrap();
        assert_eq!(t.bbox_margin(Some(3)), Some(2));
        assert_eq!(t.bbox_margin(Some(1)), Some(1), "margin never hits zero");
        assert_eq!(t.bbox_margin(None), None, "disabled stays disabled");
    }

    #[test]
    fn fallback_heavy_windows_widen_the_margin() {
        // 10% fallback rate with growth p99 of 6: margin should widen to
        // cover the earned growth.
        let growth = [6u64; 99];
        let t = TunerReport::from_report(&window(100, 0, &[100], 10, &growth)).unwrap();
        let m = t.bbox_margin(Some(3)).unwrap();
        assert!(m > 3, "margin widened, got {m}");
        assert!(m <= MAX_BBOX_MARGIN);
        // A pathological growth tail is clamped.
        let wild = [200u64; 10];
        let t = TunerReport::from_report(&window(100, 0, &[100], 50, &wild)).unwrap();
        assert_eq!(t.bbox_margin(Some(3)), Some(MAX_BBOX_MARGIN));
    }

    #[test]
    fn tune_composes_both_rules() {
        let base = PathFinderConfig::default();
        let t = TunerReport::from_report(&window(50, 0, &[100], 0, &[])).unwrap();
        let tuned = t.tune(&base);
        assert_eq!(tuned.maze.max_nodes, MIN_NODE_BUDGET);
        assert_eq!(tuned.bbox_margin, Some(base.bbox_margin.unwrap() - 1));
        // Everything else passes through untouched.
        assert_eq!(tuned.max_iterations, base.max_iterations);
        assert_eq!(tuned.maze.heuristic_weight, base.maze.heuristic_weight);
        assert_eq!(tuned.incremental, base.incremental);
        assert_eq!(tuned.timing, None, "timing stays off when off");
    }

    #[test]
    fn steiner_threshold_ratchets_down_only_on_wins() {
        let rec = Recorder::enabled();
        rec.count("maze.searches", 100);
        rec.count("steiner.builds", 10);
        rec.count("steiner.wins", 6);
        let t = TunerReport::from_report(&rec.report()).unwrap();
        assert!(t.steiner_win_rate() > 0.5);
        assert_eq!(t.steiner_fanout(6), 5);
        assert_eq!(t.steiner_fanout(MIN_STEINER_FANOUT), MIN_STEINER_FANOUT);

        // A losing window holds the threshold; nothing ever raises it.
        let rec = Recorder::enabled();
        rec.count("maze.searches", 100);
        rec.count("steiner.builds", 10);
        rec.count("steiner.wins", 1);
        let t = TunerReport::from_report(&rec.report()).unwrap();
        assert_eq!(t.steiner_fanout(6), 6);
        let quiet = TunerReport::from_report(&window(10, 0, &[100], 0, &[])).unwrap();
        assert_eq!(quiet.steiner_fanout(6), 6, "no builds, no change");
    }

    #[test]
    fn crit_exp_sharpens_only_when_saturated() {
        let rec = Recorder::enabled();
        rec.count("maze.searches", 100);
        for _ in 0..100 {
            rec.record("pathfinder.crit", CRIT_ONE as u64 - 4);
        }
        let t = TunerReport::from_report(&rec.report()).unwrap();
        assert!(t.crit_p99 >= CRIT_SATURATED);
        assert_eq!(t.crit_exp(2.0), 2.25);
        assert_eq!(t.crit_exp(MAX_CRIT_EXP), MAX_CRIT_EXP, "clamped");

        let spread = TunerReport::from_report(&window(10, 0, &[100], 0, &[])).unwrap();
        assert_eq!(spread.crit_exp(2.0), 2.0, "unsaturated window holds");
    }

    #[test]
    fn tune_carries_timing_ratchets_through() {
        let mut base = PathFinderConfig::timing_driven();
        base.timing.as_mut().unwrap().steiner_fanout = 8;
        let rec = Recorder::enabled();
        rec.count("maze.searches", 100);
        rec.record("maze.nodes_expanded", 100);
        rec.count("steiner.builds", 4);
        rec.count("steiner.wins", 4);
        for _ in 0..50 {
            rec.record("pathfinder.crit", CRIT_ONE as u64);
        }
        let t = TunerReport::from_report(&rec.report()).unwrap();
        let tuned = t.tune(&base);
        let timing = tuned.timing.unwrap();
        assert_eq!(timing.steiner_fanout, 7);
        assert!(timing.crit_exp > base.timing.as_ref().unwrap().crit_exp);
        assert_eq!(
            timing.max_crit,
            base.timing.as_ref().unwrap().max_crit,
            "the cap is not tuned"
        );
    }
}
