//! Telemetry-driven self-tuning of maze/PathFinder budgets.
//!
//! The scenario corpus closes the loop the parallel-routing literature
//! (arXiv:2407.00009) sketches: the router already *measures* its own
//! search behaviour through [`jroute_obs`] — open-list pushes/pops, a
//! `maze.nodes_expanded` histogram, bounded-search fallbacks and the
//! `pathfinder.bbox_growth` histogram of per-net search-box widening —
//! so a long-running service can *derive* its next configuration from
//! the last window instead of shipping one static guess.
//!
//! [`TunerReport`] condenses an [`obs::Report`](jroute_obs::Report) into
//! the handful of aggregates the tuning rules read, and
//! [`TunerReport::tune`] applies them to a [`PathFinderConfig`]:
//!
//! * **node budget** — successful searches never came close to the
//!   2-million-node default on the devices we route; capping
//!   [`MazeConfig::max_nodes`] a healthy multiple above the observed
//!   worst case makes hopeless searches (the ones that *do* hit the
//!   budget) give up orders of magnitude sooner, without touching any
//!   search that succeeds.
//! * **bbox margin** — when a window shows zero region fallbacks and no
//!   budget-driven growth, the boxes were wider than needed: shrinking
//!   [`PathFinderConfig::bbox_margin`] cuts nodes expanded per search.
//!   When fallbacks or growth do show up, the margin widens toward the
//!   observed growth so the next window routes inside its first box
//!   instead of paying a bounded failure plus a whole-device retry.
//!
//! Both rules are deliberately one-sided ratchets with clamps: a tuned
//! config can never lose routability (bounded searches still fall back
//! to the whole device on failure; the budget never drops below a floor
//! comfortably above anything a successful search has used).

use crate::maze::MazeConfig;
use crate::pathfinder::PathFinderConfig;
use jroute_obs::Report;

/// Never tune the node budget below this floor, no matter how small the
/// observed searches were: a congested reroute can legitimately expand
/// far more than a quiet window's worst case.
pub const MIN_NODE_BUDGET: usize = 1 << 14;

/// Headroom multiplier between the observed worst-case expansion and the
/// tuned node budget.
pub const NODE_BUDGET_HEADROOM: usize = 16;

/// Margins are never tuned above this (a box this wide has stopped
/// pruning anything on the devices we route).
pub const MAX_BBOX_MARGIN: u16 = 12;

/// Aggregates extracted from one observation window, ready for tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunerReport {
    /// Maze searches observed (`maze.searches`).
    pub searches: u64,
    /// Searches that failed — node budget or exhausted region
    /// (`maze.search_failures`).
    pub search_failures: u64,
    /// Open-list pushes (`maze.open_pushes`).
    pub open_pushes: u64,
    /// Open-list pops (`maze.open_pops`).
    pub open_pops: u64,
    /// Median of `maze.nodes_expanded`.
    pub expanded_p50: u64,
    /// 99th percentile of `maze.nodes_expanded`.
    pub expanded_p99: u64,
    /// Worst single search (`maze.nodes_expanded` max).
    pub expanded_max: u64,
    /// Bounded searches that had to retry unbounded
    /// (`pathfinder.bbox_fallbacks`).
    pub bbox_fallbacks: u64,
    /// Neighbours pruned by the region test (`maze.bbox_prunes`).
    pub bbox_prunes: u64,
    /// 99th percentile of `pathfinder.bbox_growth` — how much extra
    /// margin re-dirtied nets earned.
    pub growth_p99: u64,
    /// Largest single `pathfinder.bbox_growth` value.
    pub growth_max: u64,
}

impl TunerReport {
    /// Extract the tuning aggregates from a report. Returns `None` when
    /// the window recorded no maze searches — there is nothing to tune
    /// from, and a caller should keep its current config.
    pub fn from_report(rep: &Report) -> Option<Self> {
        let searches = rep.counter("maze.searches").unwrap_or(0);
        if searches == 0 {
            return None;
        }
        let expanded = rep.hist("maze.nodes_expanded");
        let growth = rep.hist("pathfinder.bbox_growth");
        Some(TunerReport {
            searches,
            search_failures: rep.counter("maze.search_failures").unwrap_or(0),
            open_pushes: rep.counter("maze.open_pushes").unwrap_or(0),
            open_pops: rep.counter("maze.open_pops").unwrap_or(0),
            expanded_p50: expanded.map_or(0, |h| h.p50()),
            expanded_p99: expanded.map_or(0, |h| h.p99()),
            expanded_max: expanded.map_or(0, |h| h.max()),
            bbox_fallbacks: rep.counter("pathfinder.bbox_fallbacks").unwrap_or(0),
            bbox_prunes: rep.counter("maze.bbox_prunes").unwrap_or(0),
            growth_p99: growth.map_or(0, |h| h.p99()),
            growth_max: growth.map_or(0, |h| h.max()),
        })
    }

    /// Mean open-list pushes per search — a cheap congestion proxy (a
    /// clean window pushes little beyond the path itself).
    pub fn pushes_per_search(&self) -> f64 {
        self.open_pushes as f64 / self.searches as f64
    }

    /// Fraction of bounded searches that fell back to the whole device.
    pub fn fallback_rate(&self) -> f64 {
        self.bbox_fallbacks as f64 / self.searches as f64
    }

    /// Tuned node budget: observed worst case times
    /// [`NODE_BUDGET_HEADROOM`], clamped to `[MIN_NODE_BUDGET,
    /// base.max_nodes]`. Never raises the budget above the base config —
    /// the caller's ceiling stands.
    pub fn node_budget(&self, base: &MazeConfig) -> usize {
        let want = (self.expanded_max as usize).saturating_mul(NODE_BUDGET_HEADROOM);
        want.clamp(MIN_NODE_BUDGET.min(base.max_nodes), base.max_nodes)
    }

    /// Tuned bounding-box margin. `None` in, `None` out (the caller
    /// disabled region pruning deliberately).
    pub fn bbox_margin(&self, base: Option<u16>) -> Option<u16> {
        let base = base?;
        let tuned = if self.bbox_fallbacks == 0 && self.growth_max == 0 {
            // Every bounded search succeeded in its first box and no net
            // earned extra patience: the boxes are wider than the
            // traffic needs. Tighten by one, keeping at least 1.
            base.saturating_sub(1).max(1)
        } else if self.fallback_rate() > 0.01 || self.growth_p99 > u64::from(base) {
            // Boxes are routinely too tight: pre-pay the growth the nets
            // ended up earning anyway, so the next window's first
            // attempt already covers the detours.
            let grown = u64::from(base)
                .max(self.growth_p99)
                .min(u64::from(MAX_BBOX_MARGIN));
            grown as u16
        } else {
            base
        };
        Some(tuned.min(MAX_BBOX_MARGIN))
    }

    /// Apply all tuning rules to `base`, returning the next window's
    /// config. Routability is preserved by construction: bounded
    /// searches still retry unbounded on failure, and the node budget
    /// keeps [`NODE_BUDGET_HEADROOM`]× the observed worst case.
    pub fn tune(&self, base: &PathFinderConfig) -> PathFinderConfig {
        let mut cfg = base.clone();
        cfg.maze = self.tune_maze(&base.maze);
        cfg.bbox_margin = self.bbox_margin(base.bbox_margin);
        cfg
    }

    /// Apply only the maze-level rules (node budget) to `base`.
    pub fn tune_maze(&self, base: &MazeConfig) -> MazeConfig {
        let mut m = base.clone();
        m.max_nodes = self.node_budget(base);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jroute_obs::Recorder;

    /// Build a report through a live recorder, the same way the router
    /// stack does.
    fn window(
        searches: u64,
        failures: u64,
        expansions: &[u64],
        fallbacks: u64,
        growth: &[u64],
    ) -> Report {
        let rec = Recorder::enabled();
        rec.count("maze.searches", searches);
        rec.count("maze.search_failures", failures);
        rec.count("maze.open_pushes", searches * 120);
        rec.count("maze.open_pops", searches * 80);
        for &e in expansions {
            rec.record("maze.nodes_expanded", e);
        }
        rec.count("pathfinder.bbox_fallbacks", fallbacks);
        for &g in growth {
            rec.record("pathfinder.bbox_growth", g);
        }
        rec.report()
    }

    #[test]
    fn empty_window_yields_no_tuner() {
        assert_eq!(
            TunerReport::from_report(&Recorder::enabled().report()),
            None
        );
        assert_eq!(
            TunerReport::from_report(&Recorder::disabled().report()),
            None
        );
    }

    #[test]
    fn aggregates_mirror_the_report() {
        let rep = window(100, 3, &[50, 200, 900], 2, &[1, 4]);
        let t = TunerReport::from_report(&rep).unwrap();
        assert_eq!(t.searches, 100);
        assert_eq!(t.search_failures, 3);
        assert_eq!(t.expanded_max, 900);
        assert_eq!(t.bbox_fallbacks, 2);
        assert_eq!(t.growth_max, 4);
        assert!(t.pushes_per_search() > 100.0);
    }

    #[test]
    fn node_budget_keeps_headroom_and_respects_clamps() {
        let base = MazeConfig::default();
        // Worst case 900 → 16× headroom is far below the floor.
        let quiet = TunerReport::from_report(&window(10, 0, &[900], 0, &[])).unwrap();
        assert_eq!(quiet.node_budget(&base), MIN_NODE_BUDGET);
        // A heavy window lands between floor and ceiling.
        let heavy = TunerReport::from_report(&window(10, 0, &[40_000], 0, &[])).unwrap();
        assert_eq!(heavy.node_budget(&base), 40_000 * NODE_BUDGET_HEADROOM);
        // Never exceeds the base ceiling.
        let wild = TunerReport::from_report(&window(10, 0, &[u32::MAX as u64], 0, &[])).unwrap();
        assert_eq!(wild.node_budget(&base), base.max_nodes);
    }

    #[test]
    fn clean_windows_tighten_the_margin() {
        let t = TunerReport::from_report(&window(50, 0, &[100], 0, &[])).unwrap();
        assert_eq!(t.bbox_margin(Some(3)), Some(2));
        assert_eq!(t.bbox_margin(Some(1)), Some(1), "margin never hits zero");
        assert_eq!(t.bbox_margin(None), None, "disabled stays disabled");
    }

    #[test]
    fn fallback_heavy_windows_widen_the_margin() {
        // 10% fallback rate with growth p99 of 6: margin should widen to
        // cover the earned growth.
        let growth = [6u64; 99];
        let t = TunerReport::from_report(&window(100, 0, &[100], 10, &growth)).unwrap();
        let m = t.bbox_margin(Some(3)).unwrap();
        assert!(m > 3, "margin widened, got {m}");
        assert!(m <= MAX_BBOX_MARGIN);
        // A pathological growth tail is clamped.
        let wild = [200u64; 10];
        let t = TunerReport::from_report(&window(100, 0, &[100], 50, &wild)).unwrap();
        assert_eq!(t.bbox_margin(Some(3)), Some(MAX_BBOX_MARGIN));
    }

    #[test]
    fn tune_composes_both_rules() {
        let base = PathFinderConfig::default();
        let t = TunerReport::from_report(&window(50, 0, &[100], 0, &[])).unwrap();
        let tuned = t.tune(&base);
        assert_eq!(tuned.maze.max_nodes, MIN_NODE_BUDGET);
        assert_eq!(tuned.bbox_margin, Some(base.bbox_margin.unwrap() - 1));
        // Everything else passes through untouched.
        assert_eq!(tuned.max_iterations, base.max_iterations);
        assert_eq!(tuned.maze.heuristic_weight, base.maze.heuristic_weight);
        assert_eq!(tuned.incremental, base.incremental);
    }
}
