//! Parallel routing of independent nets.
//!
//! Paper §6 lists faster routing algorithms as future work; run-time
//! reconfiguration makes router latency part of application latency, so
//! this module implements the natural HPC extension: route many nets
//! concurrently (experiment E12).
//!
//! The scheme is *optimistic parallel routing with a lock-free claim
//! table*:
//!
//! 1. each round, worker threads route their share of the pending nets;
//!    the maze search treats segments claimed by **other** nets as
//!    blocked, reading the shared claim table live;
//! 2. as soon as a sink is reached the worker claims the new segments by
//!    compare-and-swap on the per-segment owner word. A lost CAS means
//!    another net grabbed the segment mid-search: the worker rolls back
//!    every claim it made for the net and defers it to the next round.
//!
//! There is no commit barrier — a net is committed the moment its last
//! claim lands, and its claims immediately steer every other in-flight
//! search away. The committed configuration is always contention-free —
//! the JRoute §3.4 invariant — and equivalent to some sequential routing
//! order (the order in which final claims landed).

use crate::maze::{self, MazeConfig, MazeScratch};
use crate::pathfinder::NetSpec;
use jbits::Pip;
use jroute_obs::Recorder;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use virtex::{Device, RowCol, SegIdx, SegVec, Segment};

/// Options for the parallel router.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker threads.
    pub threads: usize,
    /// Maze options shared by all workers.
    pub maze: MazeConfig,
    /// Give up after this many rounds without progress.
    pub max_stalled_rounds: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            maze: MazeConfig::default(),
            max_stalled_rounds: 3,
        }
    }
}

/// A net routed by the parallel router.
#[derive(Debug, Clone)]
pub struct ParallelNet {
    /// The net as requested.
    pub spec: NetSpec,
    /// PIPs in configuration order.
    pub pips: Vec<(RowCol, Pip)>,
    /// Segments the net occupies.
    pub segments: Vec<Segment>,
}

/// Outcome of a parallel routing run.
#[derive(Debug)]
pub struct ParallelResult {
    /// Routed nets, in input order (failures omitted).
    pub nets: Vec<ParallelNet>,
    /// Indices of nets that could not be routed.
    pub failed: Vec<usize>,
    /// Rounds executed.
    pub rounds: usize,
    /// Candidate paths discarded due to same-round conflicts.
    pub conflicts: usize,
}

/// Sentinel owner word for an unclaimed segment.
const FREE: u32 = u32::MAX;

/// Lock-free per-segment owner table shared by all workers.
///
/// Each slot holds the claiming net's index or [`FREE`]. Only the CAS's
/// atomicity matters — no other data is published through a claim — so
/// relaxed ordering is sufficient throughout.
///
/// The maze search probes `blocked_for` for every neighbour it touches,
/// so reads vastly outnumber claims. A compact occupancy bitmap (one bit
/// per segment, 512 segments per cache line) answers the common
/// "unclaimed" case without touching the owner table, which is dozens of
/// megabytes on the largest family members and would miss cache on
/// nearly every probe. The bitmap is advisory — a stale bit only costs
/// one owner-table read (set) or one failed claim CAS (clear); the CAS
/// on the owner word is what enforces exclusivity.
struct ClaimTable {
    table: SegVec<AtomicU32>,
    /// `bits[i / 64] & (1 << (i % 64))` mirrors `table[i] != FREE`.
    bits: Vec<AtomicU64>,
}

impl ClaimTable {
    fn new(space: virtex::SegSpace) -> Self {
        ClaimTable {
            table: SegVec::from_fn(space, || AtomicU32::new(FREE)),
            bits: (0..space.len().div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Whether `idx` is claimed by a net other than `id`.
    #[inline]
    fn blocked_for(&self, idx: SegIdx, id: u32) -> bool {
        let i = idx.as_usize();
        if self.bits[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) == 0 {
            return false;
        }
        let cur = self.table[idx].load(Ordering::Relaxed);
        cur != FREE && cur != id
    }

    /// Claim `idx` for `id`. Succeeds if the slot was free or already
    /// ours (a net may reach the same segment through several branches).
    #[inline]
    fn try_claim(&self, idx: SegIdx, id: u32) -> bool {
        match self.table[idx].compare_exchange(FREE, id, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                let i = idx.as_usize();
                self.bits[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
                true
            }
            Err(cur) => cur == id,
        }
    }

    /// Roll back a claim owned by `id` (no-op if not ours). A concurrent
    /// re-claim between the owner CAS and the bit clear can drop the
    /// new claimant's bit — benign, see the type docs.
    #[inline]
    fn release(&self, idx: SegIdx, id: u32) {
        if self.table[idx]
            .compare_exchange(id, FREE, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            let i = idx.as_usize();
            self.bits[i / 64].fetch_and(!(1 << (i % 64)), Ordering::Relaxed);
        }
    }
}

/// Per-net outcome of one routing attempt within a round.
enum Outcome {
    /// Routed and claimed; the net is committed.
    Committed(Box<ParallelNet>),
    /// Lost a claim race, found a needed segment claimed by another net,
    /// or the search came up empty (possibly blocked by in-flight claims
    /// that later roll back) — retry next round.
    Deferred,
    /// The net names a nonexistent wire — permanent.
    Failed,
}

/// Route one net, validating and claiming against the live claim table.
///
/// On success every segment of the net (including its source) is claimed
/// before returning, so the net is committed with no further
/// coordination. On deferral or failure all claims made here are rolled
/// back.
fn route_one(
    dev: &Device,
    spec: &NetSpec,
    id: u32,
    claims: &ClaimTable,
    cfg: &MazeConfig,
    scratch: &mut MazeScratch,
    obs: &Recorder,
) -> Outcome {
    let space = dev.seg_space();
    let Some(src_seg) = dev.canonicalize(spec.source.rc, spec.source.wire) else {
        return Outcome::Failed;
    };
    // Newly-claimed indices, for rollback on deferral.
    let mut newly: Vec<SegIdx> = Vec::new();
    let claim = |idx: SegIdx, newly: &mut Vec<SegIdx>| {
        if claims.try_claim(idx, id) {
            newly.push(idx);
            true
        } else {
            false
        }
    };
    let rollback = |newly: &[SegIdx]| {
        for &idx in newly {
            claims.release(idx, id);
        }
    };
    if !claim(space.index(src_seg), &mut newly) {
        return Outcome::Deferred; // source segment owned by another net
    }
    let mut net = ParallelNet {
        spec: spec.clone(),
        pips: Vec::new(),
        segments: Vec::new(),
    };
    let mut starts = vec![(src_seg, 0u32)];
    for sink in &spec.sinks {
        let Some(goal) = dev.canonicalize(sink.rc, sink.wire) else {
            rollback(&newly);
            return Outcome::Failed;
        };
        if claims.blocked_for(space.index(goal), id) {
            rollback(&newly);
            return Outcome::Deferred;
        }
        let r = maze::search_obs(
            dev,
            &starts,
            goal,
            cfg,
            |seg| claims.blocked_for(space.index(seg), id),
            |_| 0,
            scratch,
            obs,
        );
        let Some(r) = r else {
            // May be a true dead end or a transient block by claims that
            // later roll back — defer; the stall counter bounds retries.
            rollback(&newly);
            return Outcome::Deferred;
        };
        // Claim the new branch immediately: other workers' searches see
        // these segments as blocked from here on.
        for seg in &r.segments {
            if !claim(space.index(*seg), &mut newly) {
                // Another net won the segment mid-search.
                rollback(&newly);
                return Outcome::Deferred;
            }
        }
        for seg in &r.segments {
            starts.push((*seg, 0));
            net.segments.push(*seg);
        }
        net.pips.extend_from_slice(&r.pips);
    }
    Outcome::Committed(Box::new(net))
}

/// Route `specs` using `cfg.threads` workers.
///
/// The returned nets are mutually contention-free; `failed` lists nets
/// for which no route existed under the final committed state.
pub fn route_parallel(dev: &Device, specs: &[NetSpec], cfg: &ParallelConfig) -> ParallelResult {
    route_parallel_obs(dev, specs, cfg, &Recorder::disabled())
}

/// [`route_parallel`] with observability: a `parallel.route` span over the
/// whole run, one `parallel.worker` span per worker thread per round (note
/// = nets attempted), `parallel.conflicts` / `parallel.commits` counters,
/// and a `parallel.net_attempts` histogram capturing how many rounds each
/// net needed (retries = attempts − 1).
pub fn route_parallel_obs(
    dev: &Device,
    specs: &[NetSpec],
    cfg: &ParallelConfig,
    obs: &Recorder,
) -> ParallelResult {
    let mut run_span = obs.span("parallel.route");
    run_span.note(specs.len() as u64);
    debug_assert!(
        specs.len() < FREE as usize,
        "net index must fit the owner word"
    );
    let claims = ClaimTable::new(dev.seg_space());
    let mut done: Vec<Option<ParallelNet>> = vec![None; specs.len()];
    let mut pending: Vec<usize> = (0..specs.len()).collect();
    let mut failed: Vec<usize> = Vec::new();
    let mut rounds = 0usize;
    let mut conflicts = 0usize;
    let mut stalled = 0usize;
    let mut attempts: Vec<u64> = vec![0; specs.len()];
    let threads = cfg.threads.max(1);

    while !pending.is_empty() && stalled < cfg.max_stalled_rounds {
        rounds += 1;
        let mut round_span = obs.span("parallel.round");
        round_span.note(pending.len() as u64);
        for &i in &pending {
            attempts[i] += 1;
        }
        // Fan the pending nets out over the workers. Each worker claims
        // segments as it routes, so nets commit mid-round and later
        // searches (on every thread) steer around them.
        let claims_ref = &claims;
        let chunk = pending.len().div_ceil(threads);
        let mut results: Vec<(usize, Outcome)> = Vec::with_capacity(pending.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in pending.chunks(chunk) {
                let part: Vec<usize> = part.to_vec();
                let worker_obs = obs.clone();
                handles.push(scope.spawn(move || {
                    let mut span = worker_obs.span("parallel.worker");
                    span.note(part.len() as u64);
                    let mut scratch = MazeScratch::new(dev);
                    part.into_iter()
                        .map(|i| {
                            (
                                i,
                                route_one(
                                    dev,
                                    &specs[i],
                                    i as u32,
                                    claims_ref,
                                    &cfg.maze,
                                    &mut scratch,
                                    &worker_obs,
                                ),
                            )
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                results.extend(h.join().expect("router worker panicked"));
            }
        });
        results.sort_by_key(|(i, _)| *i);

        let mut next_pending = Vec::new();
        let mut progressed = false;
        for (i, res) in results {
            match res {
                Outcome::Committed(net) => {
                    done[i] = Some(*net);
                    obs.count("parallel.commits", 1);
                    progressed = true;
                }
                Outcome::Deferred => {
                    conflicts += 1;
                    obs.count("parallel.conflicts", 1);
                    next_pending.push(i);
                }
                Outcome::Failed => {
                    failed.push(i);
                    obs.count("parallel.nets_failed", 1);
                    progressed = true;
                }
            }
        }
        stalled = if progressed { 0 } else { stalled + 1 };
        pending = next_pending;
    }
    failed.extend(pending);
    failed.sort_unstable();
    for &n in attempts.iter().filter(|&&n| n > 0) {
        obs.record("parallel.net_attempts", n);
    }
    obs.count("parallel.rounds", rounds as u64);
    run_span.note(rounds as u64);
    ParallelResult {
        nets: done.into_iter().flatten().collect(),
        failed,
        rounds,
        conflicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Pin;
    use virtex::{wire, Device, Family};

    fn dev() -> Device {
        Device::new(Family::Xcv50)
    }

    fn grid_specs(n: usize) -> Vec<NetSpec> {
        (0..n)
            .map(|i| {
                let r = (2 + (i * 3) % 12) as u16;
                let c = (2 + (i * 5) % 16) as u16;
                NetSpec::new(
                    Pin::new(r, c, wire::S0_YQ),
                    vec![Pin::new(r + 2, c + 4, wire::S0_F3)],
                )
            })
            .collect()
    }

    #[test]
    fn parallel_routes_everything_sequential_can() {
        let dev = dev();
        let specs = grid_specs(10);
        let cfg = ParallelConfig {
            threads: 4,
            ..Default::default()
        };
        let r = route_parallel(&dev, &specs, &cfg);
        assert!(r.failed.is_empty(), "failed: {:?}", r.failed);
        assert_eq!(r.nets.len(), 10);
    }

    #[test]
    fn committed_nets_are_mutually_disjoint() {
        let dev = dev();
        let specs = grid_specs(12);
        let cfg = ParallelConfig {
            threads: 3,
            ..Default::default()
        };
        let r = route_parallel(&dev, &specs, &cfg);
        let mut seen = std::collections::HashSet::new();
        for net in &r.nets {
            for seg in &net.segments {
                assert!(seen.insert(*seg), "segment {seg} used twice");
            }
        }
    }

    #[test]
    fn single_thread_matches_multi_thread_coverage() {
        let dev = dev();
        let specs = grid_specs(8);
        let seq = route_parallel(
            &dev,
            &specs,
            &ParallelConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let par = route_parallel(
            &dev,
            &specs,
            &ParallelConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.nets.len(), par.nets.len());
        assert_eq!(seq.failed, par.failed);
    }

    #[test]
    fn result_applies_cleanly_to_a_bitstream() {
        let dev = dev();
        let specs = grid_specs(6);
        let r = route_parallel(
            &dev,
            &specs,
            &ParallelConfig {
                threads: 2,
                ..Default::default()
            },
        );
        let mut bits = jbits::Bitstream::new(&dev);
        for net in &r.nets {
            for &(rc, pip) in &net.pips {
                bits.set_pip(rc, pip.from, pip.to).unwrap();
            }
        }
        for net in &r.nets {
            for seg in &net.segments {
                assert!(bits.segment_drivers(*seg).len() <= 1);
            }
        }
    }
}
