//! Parallel routing of independent nets.
//!
//! Paper §6 lists faster routing algorithms as future work; run-time
//! reconfiguration makes router latency part of application latency, so
//! this module implements the natural HPC extension: route many nets
//! concurrently (experiment E12).
//!
//! The scheme is *optimistic parallel routing with sequential commit*:
//!
//! 1. each round, worker threads route their share of the pending nets
//!    against an immutable snapshot of the committed occupancy (maze
//!    search is read-only and dominates runtime);
//! 2. the main thread commits candidate paths in net order; a path that
//!    touches a segment committed earlier in the same round is discarded
//!    and its net deferred to the next round.
//!
//! The committed configuration is therefore always contention-free — the
//! JRoute §3.4 invariant — and the result is equivalent to some
//! sequential routing order.

use crate::error::{Result, RouteError};
use crate::maze::{self, MazeConfig, MazeScratch};
use crate::pathfinder::NetSpec;
use jbits::Pip;
use jroute_obs::Recorder;
use virtex::{Device, RowCol, Segment};

/// Options for the parallel router.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker threads.
    pub threads: usize,
    /// Maze options shared by all workers.
    pub maze: MazeConfig,
    /// Give up after this many rounds without progress.
    pub max_stalled_rounds: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            maze: MazeConfig::default(),
            max_stalled_rounds: 3,
        }
    }
}

/// A net routed by the parallel router.
#[derive(Debug, Clone)]
pub struct ParallelNet {
    /// The net as requested.
    pub spec: NetSpec,
    /// PIPs in configuration order.
    pub pips: Vec<(RowCol, Pip)>,
    /// Segments the net occupies.
    pub segments: Vec<Segment>,
}

/// Outcome of a parallel routing run.
#[derive(Debug)]
pub struct ParallelResult {
    /// Routed nets, in input order (failures omitted).
    pub nets: Vec<ParallelNet>,
    /// Indices of nets that could not be routed.
    pub failed: Vec<usize>,
    /// Rounds executed.
    pub rounds: usize,
    /// Candidate paths discarded due to same-round conflicts.
    pub conflicts: usize,
}

/// Dense occupancy bitmap over the segment space.
#[derive(Clone)]
struct Occupancy {
    words: Vec<u64>,
}

impl Occupancy {
    fn new(space: usize) -> Self {
        Occupancy { words: vec![0; space.div_ceil(64)] }
    }

    #[inline]
    fn get(&self, idx: usize) -> bool {
        self.words[idx / 64] & (1 << (idx % 64)) != 0
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        self.words[idx / 64] |= 1 << (idx % 64);
    }
}

/// Route one net against a fixed occupancy snapshot.
fn route_one(
    dev: &Device,
    spec: &NetSpec,
    snapshot: &Occupancy,
    cfg: &MazeConfig,
    scratch: &mut MazeScratch,
    obs: &Recorder,
) -> Result<ParallelNet> {
    let dims = dev.dims();
    let src_seg = dev
        .canonicalize(spec.source.rc, spec.source.wire)
        .ok_or(RouteError::NoSuchWire { rc: spec.source.rc, wire: spec.source.wire })?;
    let mut net = ParallelNet { spec: spec.clone(), pips: Vec::new(), segments: Vec::new() };
    let mut starts = vec![(src_seg, 0u32)];
    // Segments claimed by this net within this search (self-reuse is fine).
    let mut own: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for sink in &spec.sinks {
        let goal = dev
            .canonicalize(sink.rc, sink.wire)
            .ok_or(RouteError::NoSuchWire { rc: sink.rc, wire: sink.wire })?;
        if snapshot.get(goal.index(dims)) {
            return Err(RouteError::ResourceInUse { segment: goal, owner: None });
        }
        let r = maze::search_obs(
            dev,
            &starts,
            goal,
            cfg,
            |seg| {
                let idx = seg.index(dims);
                snapshot.get(idx) && !own.contains(&idx)
            },
            |_| 0,
            scratch,
            obs,
        )
        .ok_or(RouteError::Unroutable { from: src_seg, to: goal })?;
        for seg in &r.segments {
            starts.push((*seg, 0));
            own.insert(seg.index(dims));
            net.segments.push(*seg);
        }
        net.pips.extend_from_slice(&r.pips);
    }
    Ok(net)
}

/// Route `specs` using `cfg.threads` workers.
///
/// The returned nets are mutually contention-free; `failed` lists nets
/// for which no route existed under the final committed state.
pub fn route_parallel(dev: &Device, specs: &[NetSpec], cfg: &ParallelConfig) -> ParallelResult {
    route_parallel_obs(dev, specs, cfg, &Recorder::disabled())
}

/// [`route_parallel`] with observability: a `parallel.route` span over the
/// whole run, one `parallel.worker` span per worker thread per round (note
/// = nets attempted), `parallel.conflicts` / `parallel.commits` counters,
/// and a `parallel.net_attempts` histogram capturing how many rounds each
/// net needed (retries = attempts − 1).
pub fn route_parallel_obs(
    dev: &Device,
    specs: &[NetSpec],
    cfg: &ParallelConfig,
    obs: &Recorder,
) -> ParallelResult {
    let mut run_span = obs.span("parallel.route");
    run_span.note(specs.len() as u64);
    let dims = dev.dims();
    let space = dev.segment_space();
    let mut committed = Occupancy::new(space);
    let mut done: Vec<Option<ParallelNet>> = vec![None; specs.len()];
    let mut pending: Vec<usize> = (0..specs.len()).collect();
    let mut failed: Vec<usize> = Vec::new();
    let mut rounds = 0usize;
    let mut conflicts = 0usize;
    let mut stalled = 0usize;
    let mut attempts: Vec<u64> = vec![0; specs.len()];
    let threads = cfg.threads.max(1);

    while !pending.is_empty() && stalled < cfg.max_stalled_rounds {
        rounds += 1;
        let mut round_span = obs.span("parallel.round");
        round_span.note(pending.len() as u64);
        for &i in &pending {
            attempts[i] += 1;
        }
        let snapshot = &committed;
        // Fan the pending nets out over the workers.
        let chunk = pending.len().div_ceil(threads);
        let mut results: Vec<(usize, Result<ParallelNet>)> = Vec::with_capacity(pending.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in pending.chunks(chunk) {
                let part: Vec<usize> = part.to_vec();
                let worker_obs = obs.clone();
                handles.push(scope.spawn(move || {
                    let mut span = worker_obs.span("parallel.worker");
                    span.note(part.len() as u64);
                    let mut scratch = MazeScratch::new(dev);
                    part.into_iter()
                        .map(|i| {
                            (
                                i,
                                route_one(
                                    dev,
                                    &specs[i],
                                    snapshot,
                                    &cfg.maze,
                                    &mut scratch,
                                    &worker_obs,
                                ),
                            )
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                results.extend(h.join().expect("router worker panicked"));
            }
        });
        results.sort_by_key(|(i, _)| *i);

        // Sequential commit with conflict detection.
        let mut next_pending = Vec::new();
        let mut progressed = false;
        for (i, res) in results {
            match res {
                Ok(net) => {
                    let clash = net
                        .segments
                        .iter()
                        .any(|seg| committed.get(seg.index(dims)));
                    if clash {
                        conflicts += 1;
                        obs.count("parallel.conflicts", 1);
                        next_pending.push(i);
                    } else {
                        for seg in &net.segments {
                            committed.set(seg.index(dims));
                        }
                        if let Some(src) =
                            dev.canonicalize(net.spec.source.rc, net.spec.source.wire)
                        {
                            committed.set(src.index(dims));
                        }
                        done[i] = Some(net);
                        obs.count("parallel.commits", 1);
                        progressed = true;
                    }
                }
                Err(_) => {
                    failed.push(i);
                    obs.count("parallel.nets_failed", 1);
                    progressed = true;
                }
            }
        }
        stalled = if progressed { 0 } else { stalled + 1 };
        pending = next_pending;
    }
    failed.extend(pending);
    failed.sort_unstable();
    for &n in attempts.iter().filter(|&&n| n > 0) {
        obs.record("parallel.net_attempts", n);
    }
    obs.count("parallel.rounds", rounds as u64);
    run_span.note(rounds as u64);
    ParallelResult { nets: done.into_iter().flatten().collect(), failed, rounds, conflicts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Pin;
    use virtex::{wire, Device, Family};

    fn dev() -> Device {
        Device::new(Family::Xcv50)
    }

    fn grid_specs(n: usize) -> Vec<NetSpec> {
        (0..n)
            .map(|i| {
                let r = (2 + (i * 3) % 12) as u16;
                let c = (2 + (i * 5) % 16) as u16;
                NetSpec::new(
                    Pin::new(r, c, wire::S0_YQ),
                    vec![Pin::new(r + 2, c + 4, wire::S0_F3)],
                )
            })
            .collect()
    }

    #[test]
    fn parallel_routes_everything_sequential_can() {
        let dev = dev();
        let specs = grid_specs(10);
        let cfg = ParallelConfig { threads: 4, ..Default::default() };
        let r = route_parallel(&dev, &specs, &cfg);
        assert!(r.failed.is_empty(), "failed: {:?}", r.failed);
        assert_eq!(r.nets.len(), 10);
    }

    #[test]
    fn committed_nets_are_mutually_disjoint() {
        let dev = dev();
        let specs = grid_specs(12);
        let cfg = ParallelConfig { threads: 3, ..Default::default() };
        let r = route_parallel(&dev, &specs, &cfg);
        let mut seen = std::collections::HashSet::new();
        for net in &r.nets {
            for seg in &net.segments {
                assert!(seen.insert(*seg), "segment {seg} used twice");
            }
        }
    }

    #[test]
    fn single_thread_matches_multi_thread_coverage() {
        let dev = dev();
        let specs = grid_specs(8);
        let seq = route_parallel(&dev, &specs, &ParallelConfig { threads: 1, ..Default::default() });
        let par = route_parallel(&dev, &specs, &ParallelConfig { threads: 4, ..Default::default() });
        assert_eq!(seq.nets.len(), par.nets.len());
        assert_eq!(seq.failed, par.failed);
    }

    #[test]
    fn result_applies_cleanly_to_a_bitstream() {
        let dev = dev();
        let specs = grid_specs(6);
        let r = route_parallel(&dev, &specs, &ParallelConfig { threads: 2, ..Default::default() });
        let mut bits = jbits::Bitstream::new(&dev);
        for net in &r.nets {
            for &(rc, pip) in &net.pips {
                bits.set_pip(rc, pip.from, pip.to).unwrap();
            }
        }
        for net in &r.nets {
            for seg in &net.segments {
                assert!(bits.segment_drivers(*seg).len() <= 1);
            }
        }
    }
}
