//! Parallel routing of independent nets.
//!
//! Paper §6 lists faster routing algorithms as future work; run-time
//! reconfiguration makes router latency part of application latency, so
//! this module implements the natural HPC extension: route many nets
//! concurrently (experiment E12).
//!
//! The scheme is *optimistic parallel routing with a lock-free claim
//! table*:
//!
//! 1. each round, worker threads route their share of the pending nets;
//!    the maze search treats segments claimed by **other** nets as
//!    blocked, reading the shared claim table live;
//! 2. as soon as a sink is reached the worker claims the new segments by
//!    compare-and-swap on the per-segment owner word. A lost CAS means
//!    another net grabbed the segment mid-search: the worker rolls back
//!    every claim it made for the net and defers it to the next round.
//!
//! There is no commit barrier — a net is committed the moment its last
//! claim lands, and its claims immediately steer every other in-flight
//! search away. The committed configuration is always contention-free —
//! the JRoute §3.4 invariant — and equivalent to some sequential routing
//! order (the order in which final claims landed).
//!
//! Since the unified-engine refactor, each round's pending nets are
//! first partitioned into bbox-disjoint *waves*
//! ([`partition_waves`](crate::partition::partition_waves) — the same
//! planner the negotiated router uses), so nets dispatched together
//! rarely touch each other's claims at all; within a wave, nets are
//! distributed over the workers by a
//! [`Scheduler`](crate::schedule::Scheduler): work-stealing deques by
//! default (net route times are wildly skewed, so static chunks leave
//! workers idle on the tail), with the original chunked assignment
//! available via [`SchedulerKind::Chunked`]. Unlike the negotiator,
//! disjointness here is an *optimization*, not a correctness condition —
//! a net that escapes its region via the unbounded fallback is still
//! caught by the claim CAS — so waves cut conflicts without constraining
//! the search. The claim table and the per-net routing step are public so
//! the batch service front-end (`jroute-svc`) can schedule
//! route/unroute/replace *requests* over the same substrate.

use crate::maze::{self, MazeConfig, MazeScratch};
use crate::partition::{self, ScratchPool, SearchBox};
use crate::pathfinder::NetSpec;
use crate::schedule::{SchedulerKind, WaveExec};
use jbits::Pip;
use jroute_obs::{Recorder, TraceCtx};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use virtex::{BBox, Device, RowCol, SegIdx, SegSpace, SegVec, Segment};

/// Margin (tiles beyond the terminal bounding box) of the per-net search
/// region claim-routing confines itself to before falling back to the
/// whole device.
const NET_BBOX_MARGIN: u16 = partition::DEFAULT_MARGIN;

/// The default search region for `spec`: its terminal bounding box plus
/// routing slack ([`NET_BBOX_MARGIN`] of detour room and hex reach — see
/// [`SearchBox::region`], the one canonical expansion). Shared by
/// [`route_one_claiming`], the wave partitioner below and the sequential
/// replay model in `jroute-svc`, which must take byte-identical search
/// decisions.
pub fn net_search_box(dev: &Device, spec: &NetSpec) -> BBox {
    SearchBox::of_spec(spec).region(NET_BBOX_MARGIN, dev.dims())
}

/// Options for the parallel router.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker threads.
    pub threads: usize,
    /// Maze options shared by all workers.
    pub maze: MazeConfig,
    /// Give up after this many rounds without progress.
    pub max_stalled_rounds: usize,
    /// How each round's pending nets are distributed over the workers.
    pub scheduler: SchedulerKind,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            maze: MazeConfig::default(),
            max_stalled_rounds: 3,
            scheduler: SchedulerKind::default(),
        }
    }
}

/// A net routed by the parallel router.
#[derive(Debug, Clone)]
pub struct ParallelNet {
    /// The net as requested.
    pub spec: NetSpec,
    /// PIPs in configuration order.
    pub pips: Vec<(RowCol, Pip)>,
    /// Segments the net occupies.
    pub segments: Vec<Segment>,
}

/// Outcome of a parallel routing run.
#[derive(Debug)]
pub struct ParallelResult {
    /// Routed nets, in input order (failures omitted).
    pub nets: Vec<ParallelNet>,
    /// Indices of nets that could not be routed.
    pub failed: Vec<usize>,
    /// Rounds executed.
    pub rounds: usize,
    /// Candidate paths discarded due to same-round conflicts.
    pub conflicts: usize,
}

/// Sentinel owner word for an unclaimed segment.
const FREE: u32 = u32::MAX;

/// Lock-free per-segment owner table shared by all workers.
///
/// Each slot holds the claiming owner's id or is free. Only the CAS's
/// atomicity matters — no other data is published through a claim — so
/// relaxed ordering is sufficient throughout. Owner ids are an arbitrary
/// `u32` namespace chosen by the caller (net indices here; a split
/// persisted-net/in-flight-request namespace in `jroute-svc`); the value
/// `u32::MAX` is reserved as the free sentinel.
///
/// The maze search probes `blocked_for` for every neighbour it touches,
/// so reads vastly outnumber claims. A compact occupancy bitmap (one bit
/// per segment, 512 segments per cache line) answers the common
/// "unclaimed" case without touching the owner table, which is dozens of
/// megabytes on the largest family members and would miss cache on
/// nearly every probe. The bitmap is advisory — a stale bit only costs
/// one owner-table read (set) or one failed claim CAS (clear); the CAS
/// on the owner word is what enforces exclusivity.
#[derive(Debug)]
pub struct ClaimTable {
    table: SegVec<AtomicU32>,
    /// `bits[i / 64] & (1 << (i % 64))` mirrors `table[i] != FREE`.
    bits: Vec<AtomicU64>,
}

impl ClaimTable {
    /// An all-free table over one device's segment space.
    pub fn new(space: SegSpace) -> Self {
        ClaimTable {
            table: SegVec::from_fn(space, || AtomicU32::new(FREE)),
            bits: (0..space.len().div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// The segment space this table covers.
    #[inline]
    pub fn space(&self) -> SegSpace {
        self.table.space()
    }

    /// Whether `idx` is claimed by an owner other than `id`.
    #[inline]
    pub fn blocked_for(&self, idx: SegIdx, id: u32) -> bool {
        let i = idx.as_usize();
        if self.bits[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) == 0 {
            return false;
        }
        let cur = self.table[idx].load(Ordering::Relaxed);
        cur != FREE && cur != id
    }

    /// Current owner of `idx`, if any. Racy under concurrent claims —
    /// meaningful between runs (audits) or from the claiming thread.
    #[inline]
    pub fn owner(&self, idx: SegIdx) -> Option<u32> {
        let cur = self.table[idx].load(Ordering::Relaxed);
        (cur != FREE).then_some(cur)
    }

    /// Claim `idx` for `id`, reporting whether the claim is fresh.
    /// Rollback code releases only [`Claim::Won`] segments — a segment
    /// that was already ours (a net reaching it through a second branch,
    /// or a service request that took it over via [`Self::transfer`])
    /// must keep its claim when a later step unwinds.
    #[inline]
    pub fn claim(&self, idx: SegIdx, id: u32) -> Claim {
        debug_assert_ne!(id, FREE, "u32::MAX is the free sentinel");
        match self.table[idx].compare_exchange(FREE, id, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                let i = idx.as_usize();
                self.bits[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
                Claim::Won
            }
            Err(cur) if cur == id => Claim::AlreadyOurs,
            Err(_) => Claim::Lost,
        }
    }

    /// Claim `idx` for `id`. Succeeds if the slot was free or already
    /// ours (a net may reach the same segment through several branches).
    #[inline]
    pub fn try_claim(&self, idx: SegIdx, id: u32) -> bool {
        self.claim(idx, id) != Claim::Lost
    }

    /// Hand a claim owned by `from` directly to `to`, without the
    /// segment ever appearing free to concurrent searchers. This is how
    /// the service's `Replace` requests take over the segments of the
    /// nets they remove before re-routing over them. Fails (returns
    /// `false`) if `from` does not own the slot.
    #[inline]
    pub fn transfer(&self, idx: SegIdx, from: u32, to: u32) -> bool {
        debug_assert!(from != FREE && to != FREE, "u32::MAX is the free sentinel");
        self.table[idx]
            .compare_exchange(from, to, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Roll back a claim owned by `id` (no-op if not ours). A concurrent
    /// re-claim between the owner CAS and the bit clear can drop the
    /// new claimant's bit — benign, see the type docs.
    #[inline]
    pub fn release(&self, idx: SegIdx, id: u32) {
        if self.table[idx]
            .compare_exchange(id, FREE, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            let i = idx.as_usize();
            self.bits[i / 64].fetch_and(!(1 << (i % 64)), Ordering::Relaxed);
        }
    }

    /// Every claimed segment with its owner id. An O(space) scan over
    /// the owner table — for pre-run seeding audits and post-run leak
    /// checks, not for hot paths, and only stable while no claims are in
    /// flight.
    pub fn claimed(&self) -> impl Iterator<Item = (SegIdx, u32)> + '_ {
        self.table.iter().filter_map(|(idx, slot)| {
            let cur = slot.load(Ordering::Relaxed);
            (cur != FREE).then_some((idx, cur))
        })
    }
}

/// Result of one [`ClaimTable::claim`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// The slot was free; the claim is fresh (release it on rollback).
    Won,
    /// The slot already belonged to `id` (leave it alone on rollback).
    AlreadyOurs,
    /// The slot belongs to someone else.
    Lost,
}

/// Per-net outcome of one routing attempt.
#[derive(Debug)]
pub enum RouteOutcome {
    /// Routed and claimed; the net is committed.
    Committed(Box<ParallelNet>),
    /// Lost a claim race, found a needed segment claimed by another net,
    /// or the search came up empty (possibly blocked by in-flight claims
    /// that later roll back) — retry later.
    Deferred,
    /// The `cancel` probe fired mid-route; every claim made for the net
    /// has been rolled back.
    Cancelled,
    /// The net names a nonexistent wire — permanent.
    Failed,
}

/// Route one net, validating and claiming against the live claim table.
///
/// On success every segment of the net (including its source) is claimed
/// for `id` before returning, so the net is committed with no further
/// coordination. On deferral, cancellation or failure all claims made
/// here are rolled back — the table is exactly as it was.
///
/// `cancel` is polled on every maze-search probe (and between sinks), so
/// a request can be abandoned mid-search: this is the request-scoped
/// rollback primitive under `jroute-svc` cancellation and deadline
/// expiry. Pass `|| false` when cancellation is not needed.
///
/// `ctx` is the causal trace context of whatever triggered this net —
/// the svc request's exec span, or a `parallel.worker` span. The
/// `parallel.net` span opened here (and, ambiently, every nested
/// `maze.search`) links back to it even when the net was stolen onto a
/// different thread. Pass [`TraceCtx::NONE`] for untraced calls.
#[allow(clippy::too_many_arguments)] // the full claim-routing contract
pub fn route_one_claiming(
    dev: &Device,
    spec: &NetSpec,
    id: u32,
    claims: &ClaimTable,
    cfg: &MazeConfig,
    scratch: &mut MazeScratch,
    cancel: impl Fn() -> bool,
    ctx: TraceCtx,
    obs: &Recorder,
) -> RouteOutcome {
    let mut net_span = obs.span_ctx("parallel.net", ctx);
    net_span.note(id as u64);
    let space = dev.seg_space();
    let Some(src_seg) = dev.canonicalize(spec.source.rc, spec.source.wire) else {
        return RouteOutcome::Failed;
    };
    // Freshly-claimed indices, for rollback on deferral. Segments the
    // caller already owned (e.g. handed over via `ClaimTable::transfer`
    // by a Replace request) are deliberately not recorded: rollback must
    // return the table to its entry state, not free them.
    let mut newly: Vec<SegIdx> = Vec::new();
    let claim = |idx: SegIdx, newly: &mut Vec<SegIdx>| match claims.claim(idx, id) {
        Claim::Won => {
            newly.push(idx);
            true
        }
        Claim::AlreadyOurs => true,
        Claim::Lost => false,
    };
    let rollback = |newly: &[SegIdx]| {
        for &idx in newly {
            claims.release(idx, id);
        }
    };
    if cancel() {
        return RouteOutcome::Cancelled;
    }
    if !claim(space.index(src_seg), &mut newly) {
        return RouteOutcome::Deferred; // source segment owned by another net
    }
    let mut net = ParallelNet {
        spec: spec.clone(),
        pips: Vec::new(),
        segments: Vec::new(),
    };
    // Confine searches to the net's own neighbourhood unless the caller
    // pinned a region already; a failure inside the box retries
    // unbounded below, so bounding never costs a route.
    let mut bounded = cfg.clone();
    if bounded.bbox.is_none() {
        bounded.bbox = Some(net_search_box(dev, spec));
    }
    let mut starts = vec![(src_seg, 0u32)];
    for sink in &spec.sinks {
        let Some(goal) = dev.canonicalize(sink.rc, sink.wire) else {
            rollback(&newly);
            return RouteOutcome::Failed;
        };
        if claims.blocked_for(space.index(goal), id) {
            rollback(&newly);
            return RouteOutcome::Deferred;
        }
        // A cancelled request sees every segment as blocked, so the
        // search drains its open list and fails fast instead of
        // finishing a route nobody wants.
        let mut r = maze::search_obs(
            dev,
            &starts,
            goal,
            &bounded,
            |seg| cancel() || claims.blocked_for(space.index(seg), id),
            |_| 0,
            scratch,
            obs,
        );
        if r.is_none() && cfg.bbox.is_none() && !cancel() {
            // The region may have hidden the only free detour; the
            // unbounded retry distinguishes "boxed out" from "blocked".
            obs.count("parallel.bbox_fallbacks", 1);
            r = maze::search_obs(
                dev,
                &starts,
                goal,
                cfg,
                |seg| cancel() || claims.blocked_for(space.index(seg), id),
                |_| 0,
                scratch,
                obs,
            );
        }
        let Some(r) = r else {
            rollback(&newly);
            // May be a cancellation, a true dead end, or a transient
            // block by claims that later roll back.
            return if cancel() {
                RouteOutcome::Cancelled
            } else {
                RouteOutcome::Deferred
            };
        };
        // Claim the new branch immediately: other workers' searches see
        // these segments as blocked from here on.
        for seg in &r.segments {
            if !claim(space.index(*seg), &mut newly) {
                // Another net won the segment mid-search.
                rollback(&newly);
                return RouteOutcome::Deferred;
            }
        }
        for seg in &r.segments {
            starts.push((*seg, 0));
            net.segments.push(*seg);
        }
        net.pips.extend_from_slice(&r.pips);
    }
    if cancel() {
        rollback(&newly);
        return RouteOutcome::Cancelled;
    }
    RouteOutcome::Committed(Box::new(net))
}

/// Per-worker state for one wave: a leased maze scratch plus the obs
/// span covering the worker's life. Dropping it stamps the span with the
/// number of nets the worker actually executed — under work-stealing
/// that is the interesting number, not the preloaded share — and returns
/// the scratch to the pool for the next wave's workers.
struct WorkerCtx<'p> {
    scratch: crate::partition::PooledScratch<'p>,
    span: jroute_obs::Span,
    attempted: u64,
}

impl Drop for WorkerCtx<'_> {
    fn drop(&mut self) {
        self.span.note(self.attempted);
    }
}

/// Route `specs` using `cfg.threads` workers.
///
/// The returned nets are mutually contention-free; `failed` lists nets
/// for which no route existed under the final committed state.
pub fn route_parallel(dev: &Device, specs: &[NetSpec], cfg: &ParallelConfig) -> ParallelResult {
    route_parallel_obs(dev, specs, cfg, &Recorder::disabled())
}

/// [`route_parallel`] with observability: a `parallel.route` span over the
/// whole run, one `parallel.worker` span per worker thread per round (note
/// = nets attempted), `parallel.conflicts` / `parallel.commits` /
/// `parallel.steals` counters, and a `parallel.net_attempts` histogram
/// capturing how many rounds each net needed (retries = attempts − 1).
pub fn route_parallel_obs(
    dev: &Device,
    specs: &[NetSpec],
    cfg: &ParallelConfig,
    obs: &Recorder,
) -> ParallelResult {
    let mut run_span = obs.span_root("parallel.route");
    run_span.note(specs.len() as u64);
    let root_ctx = run_span.ctx();
    let c_steals = obs.counter("parallel.steals");
    let c_commits = obs.counter("parallel.commits");
    let c_conflicts = obs.counter("parallel.conflicts");
    let c_failed = obs.counter("parallel.nets_failed");
    let c_rounds = obs.counter("parallel.rounds");
    let c_waves = obs.counter("parallel.waves");
    let h_attempts = obs.histogram("parallel.net_attempts");
    let h_wave_size = obs.histogram("parallel.wave_size");
    debug_assert!(
        specs.len() < FREE as usize,
        "net index must fit the owner word"
    );
    let claims = ClaimTable::new(dev.seg_space());
    let pool = ScratchPool::new();
    let exec = WaveExec {
        threads: cfg.threads.max(1),
        scheduler: cfg.scheduler,
        deterministic: false,
    };
    let mut done: Vec<Option<ParallelNet>> = vec![None; specs.len()];
    let mut pending: Vec<usize> = (0..specs.len()).collect();
    let mut failed: Vec<usize> = Vec::new();
    let mut rounds = 0usize;
    let mut conflicts = 0usize;
    let mut stalled = 0usize;
    let mut attempts: Vec<u64> = vec![0; specs.len()];

    while !pending.is_empty() && stalled < cfg.max_stalled_rounds {
        rounds += 1;
        let mut round_span = obs.span("parallel.round");
        round_span.note(pending.len() as u64);
        for &i in &pending {
            attempts[i] += 1;
        }
        // Partition the round's nets into bbox-disjoint waves and flatten
        // the plan into one dispatch order: wave k's nets precede wave
        // k+1's. Unlike the negotiator, the claim CAS — not a wave
        // barrier — enforces exclusivity here, so the whole round runs as
        // a single scheduler dispatch (no per-wave spawn or convoy on
        // each wave's slowest net); the wave ordering means nets whose
        // regions overlap tend not to be in flight simultaneously, which
        // is what turns same-round claim collisions (the deferrals that
        // force extra rounds) into rarities. Each worker claims segments
        // as it routes, so nets commit mid-round and later searches (on
        // every thread) steer around them.
        let boxes: Vec<BBox> = pending
            .iter()
            .map(|&i| net_search_box(dev, &specs[i]))
            .collect();
        let plan = partition::partition_waves(&boxes);
        c_waves.add(plan.waves.len() as u64);
        for wave in &plan.waves {
            h_wave_size.record(wave.len() as u64);
        }
        let tasks: Vec<u64> = plan
            .waves
            .iter()
            .flatten()
            .map(|&k| pending[k] as u64)
            .collect();
        let run = exec.run_wave(
            &tasks,
            |_| WorkerCtx {
                scratch: pool.lease(dev),
                // Cross-thread causal link: every worker span (and thus
                // every net it routes, stolen or not) carries the run's
                // trace and points back at `parallel.route`.
                span: obs.span_ctx("parallel.worker", root_ctx),
                attempted: 0,
            },
            |ctx, task| {
                ctx.attempted += 1;
                let net_ctx = ctx.span.ctx();
                route_one_claiming(
                    dev,
                    &specs[task as usize],
                    task as u32,
                    &claims,
                    &cfg.maze,
                    &mut ctx.scratch,
                    || false,
                    net_ctx,
                    obs,
                )
            },
        );
        c_steals.add(run.steals);
        let mut results: Vec<(u64, RouteOutcome)> = run.results;
        results.sort_by_key(|(i, _)| *i);

        let mut next_pending = Vec::new();
        let mut progressed = false;
        for (i, res) in results {
            let i = i as usize;
            match res {
                RouteOutcome::Committed(net) => {
                    done[i] = Some(*net);
                    c_commits.inc();
                    progressed = true;
                }
                RouteOutcome::Deferred => {
                    conflicts += 1;
                    c_conflicts.inc();
                    next_pending.push(i);
                }
                // No cancellation probe is wired here, so Cancelled is
                // unreachable; treat it like a deferral if it ever is.
                RouteOutcome::Cancelled => next_pending.push(i),
                RouteOutcome::Failed => {
                    failed.push(i);
                    c_failed.inc();
                    progressed = true;
                }
            }
        }
        stalled = if progressed { 0 } else { stalled + 1 };
        pending = next_pending;
    }
    failed.extend(pending);
    failed.sort_unstable();
    for &n in attempts.iter().filter(|&&n| n > 0) {
        h_attempts.record(n);
    }
    c_rounds.add(rounds as u64);
    run_span.note(rounds as u64);
    ParallelResult {
        nets: done.into_iter().flatten().collect(),
        failed,
        rounds,
        conflicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Pin;
    use std::cell::Cell;
    use virtex::{wire, Device, Family};

    fn dev() -> Device {
        Device::new(Family::Xcv50)
    }

    fn grid_specs(n: usize) -> Vec<NetSpec> {
        (0..n)
            .map(|i| {
                let r = (2 + (i * 3) % 12) as u16;
                let c = (2 + (i * 5) % 16) as u16;
                NetSpec::new(
                    Pin::new(r, c, wire::S0_YQ),
                    vec![Pin::new(r + 2, c + 4, wire::S0_F3)],
                )
            })
            .collect()
    }

    #[test]
    fn parallel_routes_everything_sequential_can() {
        let dev = dev();
        let specs = grid_specs(10);
        let cfg = ParallelConfig {
            threads: 4,
            ..Default::default()
        };
        let r = route_parallel(&dev, &specs, &cfg);
        assert!(r.failed.is_empty(), "failed: {:?}", r.failed);
        assert_eq!(r.nets.len(), 10);
    }

    #[test]
    fn committed_nets_are_mutually_disjoint() {
        let dev = dev();
        let specs = grid_specs(12);
        let cfg = ParallelConfig {
            threads: 3,
            ..Default::default()
        };
        let r = route_parallel(&dev, &specs, &cfg);
        let mut seen = std::collections::HashSet::new();
        for net in &r.nets {
            for seg in &net.segments {
                assert!(seen.insert(*seg), "segment {seg} used twice");
            }
        }
    }

    #[test]
    fn single_thread_matches_multi_thread_coverage() {
        let dev = dev();
        let specs = grid_specs(8);
        let seq = route_parallel(
            &dev,
            &specs,
            &ParallelConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let par = route_parallel(
            &dev,
            &specs,
            &ParallelConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.nets.len(), par.nets.len());
        assert_eq!(seq.failed, par.failed);
    }

    #[test]
    fn chunked_scheduler_still_routes_everything() {
        let dev = dev();
        let specs = grid_specs(10);
        let r = route_parallel(
            &dev,
            &specs,
            &ParallelConfig {
                threads: 4,
                scheduler: SchedulerKind::Chunked,
                ..Default::default()
            },
        );
        assert!(r.failed.is_empty(), "failed: {:?}", r.failed);
        assert_eq!(r.nets.len(), 10);
    }

    #[test]
    fn result_applies_cleanly_to_a_bitstream() {
        let dev = dev();
        let specs = grid_specs(6);
        let r = route_parallel(
            &dev,
            &specs,
            &ParallelConfig {
                threads: 2,
                ..Default::default()
            },
        );
        let mut bits = jbits::Bitstream::new(&dev);
        for net in &r.nets {
            for &(rc, pip) in &net.pips {
                bits.set_pip(rc, pip.from, pip.to).unwrap();
            }
        }
        for net in &r.nets {
            for seg in &net.segments {
                assert!(bits.segment_drivers(*seg).len() <= 1);
            }
        }
    }

    #[test]
    fn cancellation_mid_search_releases_every_claim() {
        let dev = dev();
        let src = Pin::new(2, 2, wire::S0_YQ);
        let sink1 = Pin::new(4, 6, wire::S0_F3);
        let sink2 = Pin::new(8, 12, wire::S1_F1);
        // Calibrate: count the cancel probes a clean single-sink route
        // makes, so the real run can be cancelled just after the first
        // branch has committed its claims — i.e. provably mid-route,
        // during the second sink's search.
        let calibration = Cell::new(0u64);
        {
            let claims = ClaimTable::new(dev.seg_space());
            let mut scratch = MazeScratch::new(&dev);
            let out = route_one_claiming(
                &dev,
                &NetSpec::new(src, vec![sink1]),
                9,
                &claims,
                &MazeConfig::default(),
                &mut scratch,
                || {
                    calibration.set(calibration.get() + 1);
                    false
                },
                TraceCtx::NONE,
                &Recorder::disabled(),
            );
            assert!(matches!(out, RouteOutcome::Committed(_)));
        }
        let threshold = calibration.get() + 50;

        let claims = ClaimTable::new(dev.seg_space());
        let mut scratch = MazeScratch::new(&dev);
        let probes = Cell::new(0u64);
        let out = route_one_claiming(
            &dev,
            &NetSpec::new(src, vec![sink1, sink2]),
            7,
            &claims,
            &MazeConfig::default(),
            &mut scratch,
            || {
                probes.set(probes.get() + 1);
                probes.get() > threshold
            },
            TraceCtx::NONE,
            &Recorder::disabled(),
        );
        assert!(matches!(out, RouteOutcome::Cancelled), "got {out:?}");
        assert_eq!(
            claims.claimed().count(),
            0,
            "cancelled request leaked claims (first branch must roll back too)"
        );
    }

    #[test]
    fn cancel_before_start_claims_nothing() {
        let dev = dev();
        let claims = ClaimTable::new(dev.seg_space());
        let mut scratch = MazeScratch::new(&dev);
        let spec = NetSpec::new(
            Pin::new(2, 2, wire::S0_YQ),
            vec![Pin::new(4, 6, wire::S0_F3)],
        );
        let out = route_one_claiming(
            &dev,
            &spec,
            1,
            &claims,
            &MazeConfig::default(),
            &mut scratch,
            || true,
            TraceCtx::NONE,
            &Recorder::disabled(),
        );
        assert!(matches!(out, RouteOutcome::Cancelled));
        assert_eq!(claims.claimed().count(), 0);
    }
}
