//! The `Router`: the JRoute API surface.
//!
//! Implements every call of paper §3 over the simulated device:
//!
//! | paper call                                   | method                  |
//! |----------------------------------------------|-------------------------|
//! | `route(row, col, from, to)`                  | [`Router::route_pip`]   |
//! | `route(Path)`                                | [`Router::route_path`]  |
//! | `route(Pin, wire, Template)`                 | [`Router::route_template`] |
//! | `route(EndPoint, EndPoint)`                  | [`Router::route`]       |
//! | `route(EndPoint, EndPoint[])`                | [`Router::route_fanout`]|
//! | `route(EndPoint[], EndPoint[])`              | [`Router::route_bus`]   |
//! | `unroute(EndPoint)`                          | [`Router::unroute`]     |
//! | `reverseUnroute(EndPoint)`                   | [`Router::reverse_unroute`] |
//! | `trace(EndPoint)`                            | [`Router::trace`]       |
//! | `reverseTrace(EndPoint)`                     | [`Router::reverse_trace`] |
//! | `isOn(row, col, wire)`                       | [`Router::is_on`]       |
//!
//! The router owns the [`Bitstream`] but deliberately exposes it
//! ([`Router::bits`], [`Router::bits_mut`]): *"The JRoute API extensions
//! provide automated routing support, while not prohibiting JBits
//! calls."* (§4). State configured behind the router's back is still
//! protected against contention because every router mutation re-checks
//! the bitstream, not just its own net database.

use crate::endpoint::{EndPoint, Pin, PortId};
use crate::error::{NetId, Result, RouteError};
use crate::maze::{self, MazeConfig, MazeScratch};
use crate::net::{Net, NetDb};
use crate::path::Path;
use crate::ports::{PortDb, PortDir};
use crate::stats::{ResourceUsage, RouterStats};
use crate::steiner;
use crate::template::Template;
use crate::templates_db;
use crate::trace::{self, Hop, TracedNet};
use crate::unroute;
use jbits::{Bitstream, Pip};
use jroute_obs::{Recorder, Report};
use std::sync::Arc;
use virtex::segment::Tap;
use virtex::{template_value, Device, RowCol, Segment, Wire};

/// Router behaviour knobs.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Let auto-routing use long lines (default off, matching the paper's
    /// initial implementation; experiment E9 measures the difference).
    pub use_long_lines: bool,
    /// Try predefined templates before falling back to the maze router in
    /// point-to-point auto-routing (§3.1's suggested fast path).
    pub use_templates_first: bool,
    /// Node-expansion budget per maze search.
    pub max_maze_nodes: usize,
    /// Fan-out at which [`Router::route_fanout`] switches from the
    /// paper's greedy nearest-first loop to the congestion-aware Steiner
    /// builder ([`crate::steiner`]), which keeps the greedy tree as one
    /// of its arms and only returns a different tree when strictly
    /// cheaper. `None` disables the Steiner path entirely.
    pub steiner_fanout: Option<usize>,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            use_long_lines: false,
            use_templates_first: true,
            max_maze_nodes: 2_000_000,
            steiner_fanout: Some(6),
        }
    }
}

/// A remembered endpoint-level connection whose resources were unrouted
/// (paper §3.3: *"The port connections are removed, but are
/// remembered."*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remembered {
    /// Source endpoint of the unrouted connection.
    pub source: EndPoint,
    /// Sink endpoint of the unrouted connection.
    pub sink: EndPoint,
}

/// Forwards raw-JBits configuration traffic into the recorder, so even
/// writes made behind the router's back (via [`Router::bits_mut`]) show
/// up in the telemetry.
struct PipTap(Recorder);

impl jbits::ConfigObserver for PipTap {
    fn pip_set(&self, _rc: RowCol, _pip: Pip) {
        self.0.count("jbits.pips_set", 1);
    }

    fn pip_cleared(&self, _rc: RowCol, _pip: Pip) {
        self.0.count("jbits.pips_cleared", 1);
    }
}

/// The JRoute router for one device.
pub struct Router {
    device: Device,
    bits: Bitstream,
    nets: NetDb,
    ports: PortDb,
    scratch: MazeScratch,
    opts: RouterOptions,
    stats: RouterStats,
    remembered: Vec<Remembered>,
    obs: Recorder,
}

impl Router {
    /// Router over a blank configuration of `device`. The observability
    /// recorder starts in the `JROUTE_OBS` environment state (disabled
    /// unless `JROUTE_OBS=1`); see [`Router::set_recorder`].
    pub fn new(device: &Device) -> Self {
        Self::with_options(device, RouterOptions::default())
    }

    /// Router with explicit options.
    pub fn with_options(device: &Device, opts: RouterOptions) -> Self {
        let mut r = Router {
            device: *device,
            bits: Bitstream::new(device),
            nets: NetDb::new(device.seg_space()),
            ports: PortDb::new(),
            scratch: MazeScratch::new(device),
            opts,
            stats: RouterStats::default(),
            remembered: Vec::new(),
            obs: Recorder::disabled(),
        };
        r.set_recorder(Recorder::from_env());
        r
    }

    /// The router's observability recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Install a recorder (e.g. `Recorder::enabled()` to start
    /// collecting). An enabled recorder also taps raw JBits writes via
    /// the bitstream's [`jbits::ConfigObserver`] hook; a disabled one
    /// detaches the tap so the hot path is back to a `None` branch.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.obs = rec;
        if self.obs.is_enabled() {
            self.bits
                .set_observer(Some(Arc::new(PipTap(self.obs.clone()))));
        } else {
            self.bits.set_observer(None);
        }
    }

    /// Snapshot the telemetry collected so far, with the cumulative
    /// [`RouterStats`] gauges and the live resource census published
    /// into it (so the JSON export is self-contained).
    pub fn obs_report(&self) -> Report {
        let mut report = self.obs.report();
        if report.enabled {
            self.stats.publish(&mut report);
            self.resource_usage().publish(&mut report);
        }
        report
    }

    /// The device being routed.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Read access to the configuration (JBits level).
    pub fn bits(&self) -> &Bitstream {
        &self.bits
    }

    /// Raw JBits access. Router-level contention protection still applies
    /// to subsequent router calls (they consult the bitstream), but raw
    /// writes themselves are unchecked — exactly the JBits contract.
    pub fn bits_mut(&mut self) -> &mut Bitstream {
        &mut self.bits
    }

    /// The net database.
    pub fn nets(&self) -> &NetDb {
        &self.nets
    }

    /// Activity counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Current options.
    pub fn options(&self) -> &RouterOptions {
        &self.opts
    }

    /// Mutable options (e.g. toggling long lines between routes).
    pub fn options_mut(&mut self) -> &mut RouterOptions {
        &mut self.opts
    }

    /// Per-class census of segments used by live nets.
    pub fn resource_usage(&self) -> ResourceUsage {
        ResourceUsage::from_netdb(&self.nets)
    }

    /// Remembered (unrouted) port connections awaiting reconnection.
    pub fn remembered(&self) -> &[Remembered] {
        &self.remembered
    }

    fn seg(&self, rc: RowCol, wire: Wire) -> Result<Segment> {
        self.device
            .canonicalize(rc, wire)
            .ok_or(RouteError::NoSuchWire { rc, wire })
    }

    fn maze_config(&self) -> MazeConfig {
        MazeConfig {
            use_long_lines: self.opts.use_long_lines,
            max_nodes: self.opts.max_maze_nodes,
            ..MazeConfig::default()
        }
    }

    // ----------------------------------------------------------------
    // Ports (§3.2)
    // ----------------------------------------------------------------

    /// Define a port bound to `targets` (pins or inner ports).
    pub fn define_port(
        &mut self,
        name: impl Into<String>,
        group: impl Into<String>,
        dir: PortDir,
        targets: Vec<EndPoint>,
    ) -> PortId {
        self.ports.define(name, group, dir, targets)
    }

    /// The paper's `getPorts()`: all ports of a group, in bit order.
    pub fn get_ports(&self, group: &str) -> Vec<PortId> {
        self.ports.get_ports(group)
    }

    /// Port registry (read access).
    pub fn ports(&self) -> &PortDb {
        &self.ports
    }

    /// Rebind a port to new targets (core replaced or relocated, §3.3)
    /// and automatically re-route any remembered connections that involve
    /// it: *"If the ports are reused, then they will be automatically
    /// connected to the new core."*
    pub fn rebind_port(&mut self, id: PortId, targets: Vec<EndPoint>) -> Result<usize> {
        self.ports.rebind(id, targets)?;
        self.reconnect_involving(Some(id))
    }

    /// Attempt to re-route every remembered connection (returns how many
    /// succeeded). Failures stay remembered.
    pub fn reconnect_ports(&mut self) -> Result<usize> {
        self.reconnect_involving(None)
    }

    fn reconnect_involving(&mut self, filter: Option<PortId>) -> Result<usize> {
        let mentions = |r: &Remembered, id: PortId| {
            r.source == EndPoint::Port(id) || r.sink == EndPoint::Port(id)
        };
        let pending: Vec<Remembered> = match filter {
            Some(id) => {
                let (take, keep) = self.remembered.drain(..).partition(|r| mentions(r, id));
                self.remembered = keep;
                take
            }
            None => self.remembered.drain(..).collect(),
        };
        let mut ok = 0usize;
        for r in pending {
            match self.route(&r.source, &r.sink) {
                Ok(()) => ok += 1,
                Err(_) => self.remembered.push(r),
            }
        }
        Ok(ok)
    }

    // ----------------------------------------------------------------
    // Level 1: single connections (§3.1 route(row, col, from, to))
    // ----------------------------------------------------------------

    /// Turn on the single connection `from -> to` in CLB `(row, col)`.
    ///
    /// *"This call allows the user to make a single connection (i.e. the
    /// user decides the path). This can be useful in cases where there is
    /// a real time constraint..."*
    pub fn route_pip(&mut self, rc: RowCol, from: Wire, to: Wire) -> Result<()> {
        let _span = self.obs.span("router.route_pip");
        let from_seg = self.seg(rc, from)?;
        let net = self.net_for_source(Pin::at(rc, from), from_seg)?;
        self.route_pip_on_net(net, rc, from, to)?;
        Ok(())
    }

    /// Paper-flavoured convenience: `route(row, col, from, to)`.
    pub fn route_rc(&mut self, row: u16, col: u16, from: Wire, to: Wire) -> Result<()> {
        self.route_pip(RowCol::new(row, col), from, to)
    }

    fn net_for_source(&mut self, pin: Pin, seg: Segment) -> Result<NetId> {
        if let Some(id) = self.nets.owner(seg) {
            return Ok(id);
        }
        let id = self.nets.create(pin, seg)?;
        self.stats.nets_created += 1;
        Ok(id)
    }

    /// Contention-checked PIP set on behalf of `net`. Returns whether the
    /// configuration bit actually changed (false when re-claiming a PIP
    /// the net already owns).
    fn route_pip_on_net(&mut self, net: NetId, rc: RowCol, from: Wire, to: Wire) -> Result<bool> {
        let target = self.seg(rc, to)?;
        // Net-level ownership check.
        if let Some(owner) = self.nets.owner(target) {
            if owner != net {
                self.stats.contention_rejections += 1;
                return Err(RouteError::Contention {
                    segment: target,
                    owner: Some(owner),
                });
            }
        }
        // Bitstream-level check: the segment must not be driven by any
        // *other* PIP (covers raw-JBits state and bi-directional wires
        // driven from the far end — §3.4's protection).
        for (drc, dpip) in self.bits.segment_drivers(target) {
            if !(drc == rc && dpip.from == from && dpip.to == to) {
                self.stats.contention_rejections += 1;
                return Err(RouteError::Contention {
                    segment: target,
                    owner: self.nets.owner(target),
                });
            }
        }
        let changed = self.bits.set_pip(rc, from, to)?;
        if changed {
            self.stats.pips_set += 1;
        }
        self.nets.add_pip(net, rc, Pip::new(from, to), target)?;
        if to.is_clb_input() {
            self.nets.add_sink(net, Pin::at(rc, to));
        }
        Ok(changed)
    }

    /// Commit a list of PIPs to `net`, rolling the bitstream back on any
    /// failure (so a failed auto-route leaves no debris). Only PIPs this
    /// commit actually turned on are rolled back — ones shared with an
    /// earlier branch of the same net stay configured.
    fn commit_pips(&mut self, net: NetId, pips: &[(RowCol, Pip)]) -> Result<()> {
        let mut newly_set: Vec<(RowCol, Pip)> = Vec::new();
        let mut err = None;
        for &(rc, pip) in pips {
            match self.route_pip_on_net(net, rc, pip.from, pip.to) {
                Ok(changed) => {
                    if changed {
                        newly_set.push((rc, pip));
                    }
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = err {
            let dev = self.device;
            for &(rc, pip) in newly_set.iter().rev() {
                let _ = self.bits.clear_pip(rc, pip.from, pip.to);
                if let Some(target) = dev.canonicalize(rc, pip.to) {
                    self.nets.remove_pip(net, rc, pip, target);
                }
                self.stats.pips_cleared += 1;
            }
            return Err(e);
        }
        Ok(())
    }

    /// `isOn` (§3.4): whether the wire in CLB `(row, col)` is currently in
    /// use (driven, or known to a live net).
    pub fn is_on(&self, rc: RowCol, wire: Wire) -> Result<bool> {
        let seg = self.seg(rc, wire)?;
        Ok(self.nets.is_used(seg) || self.bits.is_segment_driven(seg))
    }

    // ----------------------------------------------------------------
    // Level 2: paths (§3.1 route(Path))
    // ----------------------------------------------------------------

    /// Route an explicit [`Path`]: turn on all the connections it defines.
    pub fn route_path(&mut self, path: &Path) -> Result<()> {
        let mut span = self.obs.span("router.route_path");
        span.note(path.wires().len() as u64);
        let wires = path.wires();
        if wires.is_empty() {
            return Ok(());
        }
        let mut cur = self.seg(path.start(), wires[0])?;
        let net = self.net_for_source(Pin::at(path.start(), wires[0]), cur)?;
        let mut taps: Vec<Tap> = Vec::with_capacity(4);
        for &next in &wires[1..] {
            taps.clear();
            virtex::segment::taps(self.device.dims(), cur, &mut taps);
            let arch = *self.device.arch();
            let hop = taps
                .iter()
                .find(|t| arch.pip_exists(t.rc, t.wire, next))
                .copied()
                .ok_or(RouteError::PathDisconnected {
                    at: cur.rc,
                    from: cur.wire,
                    to: next,
                })?;
            self.route_pip_on_net(net, hop.rc, hop.wire, next)?;
            cur = self.seg(hop.rc, next)?;
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Level 3: templates (§3.1 route(Pin, wire, Template))
    // ----------------------------------------------------------------

    /// Route from `start` to `end_wire` following `template`: *"the user
    /// specifies a template and the router picks the wires."*
    pub fn route_template(
        &mut self,
        start: Pin,
        end_wire: Wire,
        template: &Template,
    ) -> Result<()> {
        let mut span = self.obs.span("router.route_template");
        span.note(template.len() as u64);
        let start_seg = self.seg(start.rc, start.wire)?;
        let end_rc = template
            .end_tile(start.rc, self.device.dims())
            .ok_or(RouteError::TemplateOffChip)?;
        let goal = self.seg(end_rc, end_wire)?;
        let net = self.net_for_source(start, start_seg)?;
        self.stats.template_attempts += 1;
        let pips = self
            .template_search(start_seg, goal, template, net)
            .ok_or(RouteError::TemplateExhausted)?;
        self.commit_pips(net, &pips)?;
        self.stats.template_successes += 1;
        Ok(())
    }

    /// Depth-first template matcher, per §3.1: at each step consider the
    /// wires the current wire drives, keep those whose template value
    /// matches and which are not in use, and recurse with the rest of the
    /// template. Backtracking is budgeted: long templates on congested
    /// fabric would otherwise backtrack exponentially, and the intended
    /// behaviour (§3.1) is to fail fast and fall back to the maze.
    fn template_search(
        &mut self,
        start: Segment,
        goal: Segment,
        template: &Template,
        net: NetId,
    ) -> Option<Vec<(RowCol, Pip)>> {
        const TEMPLATE_BUDGET: usize = 4_096;
        fn recur(
            r: &Router,
            cur: Segment,
            goal: Segment,
            values: &[virtex::TemplateValue],
            net: NetId,
            acc: &mut Vec<(RowCol, Pip)>,
            budget: &mut usize,
        ) -> bool {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            let Some((&want, rest)) = values.split_first() else {
                return cur == goal;
            };
            let mut taps: Vec<Tap> = Vec::with_capacity(4);
            virtex::segment::taps(r.device.dims(), cur, &mut taps);
            let mut fanout: Vec<Wire> = Vec::with_capacity(40);
            for tap in &taps {
                fanout.clear();
                r.device.arch().pips_from(tap.rc, tap.wire, &mut fanout);
                for &to in &fanout {
                    if template_value(to) != want {
                        continue;
                    }
                    let Some(next) = r.device.canonicalize(tap.rc, to) else {
                        continue;
                    };
                    let is_goal = next == goal;
                    if rest.is_empty() != is_goal {
                        // Must land exactly on the goal with the last step.
                        continue;
                    }
                    // "checks to make sure the wire is not already in
                    // use" — including by this net's own earlier
                    // branches: a driven wire cannot take a second
                    // driving PIP (§3.4).
                    let _ = net;
                    if r.nets.is_used(next) || r.bits.is_segment_driven(next) {
                        continue;
                    }
                    acc.push((tap.rc, Pip::new(tap.wire, to)));
                    if recur(r, next, goal, rest, net, acc, budget) {
                        return true;
                    }
                    acc.pop();
                }
            }
            false
        }
        let mut acc = Vec::with_capacity(template.len());
        let mut budget = TEMPLATE_BUDGET;
        if recur(
            self,
            start,
            goal,
            template.values(),
            net,
            &mut acc,
            &mut budget,
        ) {
            Some(acc)
        } else {
            None
        }
    }

    // ----------------------------------------------------------------
    // Levels 4-6: auto-routing (§3.1)
    // ----------------------------------------------------------------

    /// Auto-route a single source to a single sink
    /// (`route(EndPoint, EndPoint)`). Tries the predefined templates
    /// first, then falls back to the maze router, per §3.1.
    pub fn route(&mut self, source: &EndPoint, sink: &EndPoint) -> Result<()> {
        let _span = self.obs.span("router.route");
        let src_pins = self.resolve(source)?;
        let sink_pins = self.resolve(sink)?;
        let src = src_pins[0];
        let net = {
            let seg = self.seg(src.rc, src.wire)?;
            self.net_for_source(src, seg)?
        };
        for s in &sink_pins {
            self.route_one(net, src, *s, self.opts.use_templates_first)?;
        }
        self.nets.add_intent(net, *source, *sink);
        Ok(())
    }

    /// Auto-route one source to several sinks
    /// (`route(EndPoint, EndPoint[])`): *"Each sink gets routed in order
    /// of increasing distance from the source. For each sink, the router
    /// attempts to reuse the previous paths as much as possible."*
    pub fn route_fanout(&mut self, source: &EndPoint, sinks: &[EndPoint]) -> Result<()> {
        let mut span = self.obs.span("router.route_fanout");
        span.note(sinks.len() as u64);
        let src_pins = self.resolve(source)?;
        let src = src_pins[0];
        // Resolve all sinks, keeping their endpoint for port memory.
        let mut resolved: Vec<(Pin, EndPoint)> = Vec::new();
        for ep in sinks {
            for pin in self.resolve(ep)? {
                resolved.push((pin, *ep));
            }
        }
        resolved.sort_by_key(|(pin, _)| pin.rc.manhattan(src.rc));
        let net = {
            let seg = self.seg(src.rc, src.wire)?;
            self.net_for_source(src, seg)?
        };
        // High-fanout nets go through the best-of-two Steiner builder —
        // never worse than the greedy loop in wirelength, since the
        // greedy order is one of its arms. Only fresh nets qualify: a
        // net that already has wiring reuses it through the per-sink
        // loop's start set instead.
        if let Some(threshold) = self.opts.steiner_fanout {
            if resolved.len() >= threshold
                && self.nets.net(net).is_none_or(|n| n.pips.is_empty())
                && self.route_fanout_steiner(net, src, &resolved)?
            {
                for (_, ep) in resolved {
                    self.nets.add_intent(net, *source, ep);
                }
                return Ok(());
            }
        }
        for (pin, ep) in resolved {
            // Fan-out legs go straight to the maze with tree reuse; the
            // greedy ordering is the paper's algorithm.
            self.route_one(net, src, pin, false)?;
            self.nets.add_intent(net, *source, ep);
        }
        Ok(())
    }

    /// Route a high-fanout net as one congestion-aware Steiner tree
    /// ([`steiner::build_tree_obs`] at criticality zero). `Ok(false)`
    /// means the builder could not reach every sink inside the maze
    /// budget; the caller falls back to the paper's greedy per-sink
    /// loop. Contention on a sink is a hard error, exactly as in
    /// [`Router::route_one`].
    fn route_fanout_steiner(
        &mut self,
        net: NetId,
        src: Pin,
        resolved: &[(Pin, EndPoint)],
    ) -> Result<bool> {
        let src_seg = self.seg(src.rc, src.wire)?;
        let mut goals = Vec::with_capacity(resolved.len());
        for (pin, _) in resolved {
            let goal = self.seg(pin.rc, pin.wire)?;
            if let Some(owner) = self.nets.owner(goal) {
                if owner != net {
                    return Err(RouteError::ResourceInUse {
                        segment: goal,
                        owner: Some(owner),
                    });
                }
            } else if self.bits.is_segment_driven(goal) {
                self.stats.contention_rejections += 1;
                return Err(RouteError::Contention {
                    segment: goal,
                    owner: None,
                });
            }
            goals.push(goal);
        }
        let crits = vec![0u32; goals.len()];
        let cfg = self.maze_config();
        self.stats.maze_searches += goals.len();
        let tree = {
            let nets = &self.nets;
            let bits = &self.bits;
            steiner::build_tree_obs(
                &self.device,
                src_seg,
                &goals,
                &crits,
                &cfg,
                |seg| {
                    nets.owner(seg).is_some_and(|o| o != net)
                        || (nets.owner(seg).is_none() && bits.is_segment_driven(seg))
                },
                |_| 0,
                &mut self.scratch,
                &self.obs,
            )
        };
        let Some(tree) = tree else {
            return Ok(false);
        };
        self.stats.maze_nodes_expanded += tree.nodes_expanded;
        self.commit_pips(net, &tree.pips)?;
        for (pin, _) in resolved {
            self.nets.add_sink(net, *pin);
        }
        Ok(true)
    }

    /// Bus routing (`route(EndPoint[], EndPoint[])`): connect
    /// `sources[i] -> sinks[i]` for every `i`. *"the user would not need
    /// to connect each bit of the bus"* (§3.1).
    pub fn route_bus(&mut self, sources: &[EndPoint], sinks: &[EndPoint]) -> Result<()> {
        let mut span = self.obs.span("router.route_bus");
        span.note(sources.len() as u64);
        if sources.len() != sinks.len() {
            return Err(RouteError::BusWidthMismatch {
                sources: sources.len(),
                sinks: sinks.len(),
            });
        }
        for (s, k) in sources.iter().zip(sinks) {
            self.route(s, k)?;
        }
        Ok(())
    }

    /// Route one sink for `net`, optionally trying templates first.
    fn route_one(&mut self, net: NetId, src: Pin, sink: Pin, templates: bool) -> Result<()> {
        let goal = self.seg(sink.rc, sink.wire)?;
        if let Some(owner) = self.nets.owner(goal) {
            if owner != net {
                return Err(RouteError::ResourceInUse {
                    segment: goal,
                    owner: Some(owner),
                });
            }
            return Ok(()); // already reached by this net
        }
        if self.bits.is_segment_driven(goal) {
            self.stats.contention_rejections += 1;
            return Err(RouteError::Contention {
                segment: goal,
                owner: None,
            });
        }
        let src_seg = self.seg(src.rc, src.wire)?;

        if templates {
            let cands = templates_db::candidates(src.rc, src.wire, sink.rc, sink.wire);
            for t in &cands {
                self.stats.template_attempts += 1;
                if let Some(pips) = self.template_search(src_seg, goal, t, net) {
                    // A template path can still lose a race against state
                    // the search could not see (commit re-checks the
                    // bitstream); treat that as a template failure and
                    // keep trying — the maze is the final fallback.
                    if self.commit_pips(net, &pips).is_ok() {
                        self.stats.template_successes += 1;
                        self.nets.add_sink(net, sink);
                        return Ok(());
                    }
                }
            }
            self.stats.maze_fallbacks += 1;
        }

        // Maze search with tree reuse: every segment already on the net is
        // a zero-cost start.
        let mut starts = vec![(src_seg, 0u32)];
        if let Some(n) = self.nets.net(net) {
            let dev = self.device;
            starts.extend(n.pips.iter().filter_map(|&(rc, pip)| {
                let seg = dev.canonicalize(rc, pip.to)?;
                (!seg.wire.is_clb_input()).then_some((seg, 0u32))
            }));
        }
        let cfg = self.maze_config();
        self.stats.maze_searches += 1;
        let result = {
            let nets = &self.nets;
            let bits = &self.bits;
            maze::search_obs(
                &self.device,
                &starts,
                goal,
                &cfg,
                |seg| {
                    nets.owner(seg).is_some_and(|o| o != net)
                        || (nets.owner(seg).is_none() && bits.is_segment_driven(seg))
                },
                |_| 0,
                &mut self.scratch,
                &self.obs,
            )
        };
        let result = result.ok_or(RouteError::Unroutable {
            from: src_seg,
            to: goal,
        })?;
        self.stats.maze_nodes_expanded += result.nodes_expanded;
        self.commit_pips(net, &result.pips)?;
        self.nets.add_sink(net, sink);
        Ok(())
    }

    /// Resolve an endpoint to physical pins (ports flatten, §3.2).
    pub fn resolve(&self, ep: &EndPoint) -> Result<Vec<Pin>> {
        let mut pins = Vec::new();
        self.ports.resolve(ep, &mut pins)?;
        if pins.is_empty() {
            return Err(RouteError::EmptyEndpoint);
        }
        Ok(pins)
    }

    // ----------------------------------------------------------------
    // Unrouting (§3.3)
    // ----------------------------------------------------------------

    /// Forward unroute: remove the entire net driven by `source`
    /// (`unroute(EndPoint source)`). Returns the number of PIPs cleared.
    /// Port-level connection intents are remembered for reconnection.
    pub fn unroute(&mut self, source: &EndPoint) -> Result<usize> {
        let mut span = self.obs.span("router.unroute");
        let pins = self.resolve(source)?;
        let seg = self.seg(pins[0].rc, pins[0].wire)?;
        self.remember_intents_of(seg);
        let n = unroute::unroute_forward(&mut self.bits, &mut self.nets, seg)?;
        self.stats.pips_cleared += n;
        span.note(n as u64);
        Ok(n)
    }

    /// Reverse unroute: free only the branch that feeds `sink`
    /// (`reverseUnroute(EndPoint sink)`). Returns the number of PIPs
    /// cleared.
    pub fn reverse_unroute(&mut self, sink: &EndPoint) -> Result<usize> {
        let mut span = self.obs.span("router.reverse_unroute");
        let pins = self.resolve(sink)?;
        let mut total = 0usize;
        for pin in pins {
            let seg = self.seg(pin.rc, pin.wire)?;
            total += unroute::reverse_unroute(&mut self.bits, &mut self.nets, seg)?;
        }
        self.stats.pips_cleared += total;
        span.note(total as u64);
        Ok(total)
    }

    /// Reverse-unroute the branch feeding `sink`, remembering the
    /// endpoint-level intents of the owning net so the connection can be
    /// re-made after a core replacement (§3.3). Returns PIPs cleared.
    pub fn unroute_sink(&mut self, sink: &EndPoint) -> Result<usize> {
        let pins = self.resolve(sink)?;
        let mut total = 0usize;
        for pin in pins {
            let seg = self.seg(pin.rc, pin.wire)?;
            if let Some(id) = self.nets.owner(seg) {
                if let Some(net) = self.nets.net(id) {
                    let source = net.source;
                    self.remember_intents_of(source);
                }
            }
            total += unroute::reverse_unroute(&mut self.bits, &mut self.nets, seg)?;
        }
        self.stats.pips_cleared += total;
        Ok(total)
    }

    fn remember_intents_of(&mut self, source: Segment) {
        let Some(id) = self
            .nets
            .net_at_source(source)
            .or_else(|| self.nets.owner(source))
        else {
            return;
        };
        if let Some(net) = self.nets.net(id) {
            for &(s, k) in &net.intents {
                let involves_port =
                    matches!(s, EndPoint::Port(_)) || matches!(k, EndPoint::Port(_));
                let r = Remembered { source: s, sink: k };
                if involves_port && !self.remembered.contains(&r) {
                    self.remembered.push(r);
                }
            }
        }
    }

    /// Unroute a whole net by id (used by core replacement flows).
    pub fn unroute_net(&mut self, id: NetId) -> Result<usize> {
        let Some(net) = self.nets.net(id) else {
            return Ok(0);
        };
        let source = net.source;
        self.remember_intents_of(source);
        let net: Net = self.nets.remove_net(id).expect("net exists");
        for &(rc, pip) in &net.pips {
            self.bits.clear_pip(rc, pip.from, pip.to)?;
            self.stats.pips_cleared += 1;
        }
        Ok(net.pips.len())
    }

    // ----------------------------------------------------------------
    // Debug (§3.5)
    // ----------------------------------------------------------------

    /// Trace a source to all of its sinks; the entire net is returned.
    pub fn trace(&self, source: &EndPoint) -> Result<TracedNet> {
        let mut span = self.obs.span("router.trace");
        let pins = self.resolve(source)?;
        let seg = self.seg(pins[0].rc, pins[0].wire)?;
        let net = trace::trace(&self.bits, seg);
        span.note(net.segments.len() as u64);
        Ok(net)
    }

    /// Trace a sink back to its source; only the branch leading to the
    /// sink is returned.
    pub fn reverse_trace(&self, sink: &EndPoint) -> Result<(Vec<Hop>, Segment)> {
        let mut span = self.obs.span("router.reverse_trace");
        let pins = self.resolve(sink)?;
        let seg = self.seg(pins[0].rc, pins[0].wire)?;
        let (hops, src) =
            trace::reverse_trace(&self.bits, seg).ok_or(RouteError::NoSuchNet { segment: seg })?;
        span.note(hops.len() as u64);
        Ok((hops, src))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Device, Dir, Family, TemplateValue as T};

    fn router() -> Router {
        Router::new(&Device::new(Family::Xcv50))
    }

    #[test]
    fn level1_paper_example_manual_route() {
        // §3.1 worked example, verbatim.
        let mut r = router();
        r.route_rc(5, 7, wire::S1_YQ, wire::out(1)).unwrap();
        r.route_rc(5, 7, wire::out(1), wire::single(Dir::East, 5))
            .unwrap();
        r.route_rc(
            5,
            8,
            wire::single_end(Dir::East, 5),
            wire::single(Dir::North, 0),
        )
        .unwrap();
        r.route_rc(6, 8, wire::single_end(Dir::North, 0), wire::S0_F3)
            .unwrap();
        assert_eq!(r.stats().pips_set, 4);
        assert_eq!(r.nets().len(), 1);
        let net = r.trace(&Pin::new(5, 7, wire::S1_YQ).into()).unwrap();
        assert_eq!(net.sinks, vec![Pin::new(6, 8, wire::S0_F3)]);
        assert!(r
            .is_on(RowCol::new(5, 7), wire::single(Dir::East, 5))
            .unwrap());
        assert!(!r
            .is_on(RowCol::new(5, 7), wire::single(Dir::East, 6))
            .unwrap());
    }

    #[test]
    fn level2_path_route_matches_paper_example() {
        let mut r = router();
        let p = Path::new(
            5,
            7,
            vec![
                wire::S1_YQ,
                wire::out(1),
                wire::single(Dir::East, 5),
                wire::single(Dir::North, 0),
                wire::S0_F3,
            ],
        );
        r.route_path(&p).unwrap();
        let net = r.trace(&Pin::new(5, 7, wire::S1_YQ).into()).unwrap();
        assert_eq!(net.sinks, vec![Pin::new(6, 8, wire::S0_F3)]);
        assert_eq!(net.pips.len(), 4);
    }

    #[test]
    fn level2_disconnected_path_is_rejected() {
        let mut r = router();
        let p = Path::new(5, 7, vec![wire::S1_YQ, wire::single(Dir::East, 5)]);
        let err = r.route_path(&p).unwrap_err();
        assert!(matches!(err, RouteError::PathDisconnected { .. }));
    }

    #[test]
    fn level3_template_route_matches_paper_example() {
        let mut r = router();
        let t = Template::new(vec![T::OutMux, T::East1, T::North1, T::ClbIn]);
        r.route_template(Pin::new(5, 7, wire::S1_YQ), wire::S0_F3, &t)
            .unwrap();
        let net = r.trace(&Pin::new(5, 7, wire::S1_YQ).into()).unwrap();
        assert_eq!(net.sinks, vec![Pin::new(6, 8, wire::S0_F3)]);
        // Template route uses exactly template-length pips.
        assert_eq!(net.pips.len(), 4);
    }

    #[test]
    fn level3_template_failure_is_template_exhausted() {
        let mut r = router();
        // A template demanding a LONGH step from a non-access tile fails.
        let t = Template::new(vec![T::OutMux, T::LongH, T::ClbIn]);
        let err = r
            .route_template(Pin::new(5, 7, wire::S1_YQ), wire::S0_F3, &t)
            .unwrap_err();
        assert!(matches!(err, RouteError::TemplateExhausted));
        // Walking off the chip is detected before searching.
        let t = Template::new(vec![T::OutMux, T::South6, T::ClbIn]);
        let err = r
            .route_template(Pin::new(2, 7, wire::S1_YQ), wire::S0_F3, &t)
            .unwrap_err();
        assert!(matches!(err, RouteError::TemplateOffChip));
    }

    #[test]
    fn level4_auto_route_point_to_point() {
        let mut r = router();
        let src: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
        let sink: EndPoint = Pin::new(6, 8, wire::S0_F3).into();
        r.route(&src, &sink).unwrap();
        let net = r.trace(&src).unwrap();
        assert_eq!(net.sinks, vec![Pin::new(6, 8, wire::S0_F3)]);
        // The fast path should have been a predefined template, no maze.
        assert_eq!(r.stats().maze_searches, 0);
        assert!(r.stats().template_successes >= 1);
    }

    #[test]
    fn level4_auto_route_falls_back_to_maze() {
        let mut r = router();
        *r.options_mut() = RouterOptions {
            use_templates_first: false,
            ..Default::default()
        };
        let src: EndPoint = Pin::new(1, 1, wire::S0_YQ).into();
        let sink: EndPoint = Pin::new(12, 20, wire::S1_F1).into();
        r.route(&src, &sink).unwrap();
        assert_eq!(r.stats().maze_searches, 1);
        let net = r.trace(&src).unwrap();
        assert_eq!(net.sinks, vec![Pin::new(12, 20, wire::S1_F1)]);
    }

    #[test]
    fn level5_fanout_reuses_tree() {
        let mut r = router();
        let src: EndPoint = Pin::new(4, 4, wire::S0_YQ).into();
        let sinks: Vec<EndPoint> = vec![
            Pin::new(4, 10, wire::S0_F3).into(),
            Pin::new(5, 10, wire::S1_F1).into(),
            Pin::new(4, 11, wire::slice_in(0, 1)).into(),
        ];
        r.route_fanout(&src, &sinks).unwrap();
        let net = r.trace(&src).unwrap();
        assert_eq!(net.sinks.len(), 3);
        // One net owns everything.
        assert_eq!(r.nets().len(), 1);
    }

    #[test]
    fn level6_bus_routes_pairwise_and_checks_width() {
        let mut r = router();
        let sources: Vec<EndPoint> = (0..4)
            .map(|i| Pin::new(2 + i, 2, wire::S0_YQ).into())
            .collect();
        let sinks: Vec<EndPoint> = (0..4)
            .map(|i| Pin::new(2 + i, 6, wire::S0_F3).into())
            .collect();
        r.route_bus(&sources, &sinks).unwrap();
        assert_eq!(r.nets().len(), 4);
        let err = r.route_bus(&sources, &sinks[..2]).unwrap_err();
        assert!(matches!(
            err,
            RouteError::BusWidthMismatch {
                sources: 4,
                sinks: 2
            }
        ));
    }

    #[test]
    fn contention_is_rejected_with_exception() {
        // §3.4: driving an in-use wire throws.
        let mut r = router();
        r.route_rc(5, 7, wire::S1_YQ, wire::out(1)).unwrap();
        r.route_rc(5, 7, wire::out(1), wire::single(Dir::East, 5))
            .unwrap();
        // S0_X (k=0) also reaches OUT[0] and OUT[2]... use another driver
        // of SINGLE_E[5]: OUT[1] is its OMUX driver; drive from a hex tap
        // instead must be refused.
        let mut drivers = Vec::new();
        r.device()
            .arch()
            .pips_into(RowCol::new(5, 7), wire::single(Dir::East, 5), &mut drivers);
        let other = drivers.into_iter().find(|w| *w != wire::out(1)).unwrap();
        let err = r
            .route_pip(RowCol::new(5, 7), other, wire::single(Dir::East, 5))
            .unwrap_err();
        assert!(matches!(err, RouteError::Contention { .. }));
        assert_eq!(r.stats().contention_rejections, 1);
    }

    #[test]
    fn router_protects_against_raw_jbits_state() {
        // Configure a driver behind the router's back; the router must
        // still refuse to double-drive.
        let mut r = router();
        r.bits_mut()
            .set_pip(RowCol::new(5, 7), wire::out(1), wire::single(Dir::East, 5))
            .unwrap();
        r.route_rc(5, 7, wire::S1_YQ, wire::out(1)).unwrap();
        let mut drivers = Vec::new();
        r.device()
            .arch()
            .pips_into(RowCol::new(5, 7), wire::single(Dir::East, 5), &mut drivers);
        let other = drivers.into_iter().find(|w| *w != wire::out(1)).unwrap();
        let err = r
            .route_pip(RowCol::new(5, 7), other, wire::single(Dir::East, 5))
            .unwrap_err();
        assert!(matches!(err, RouteError::Contention { .. }));
    }

    #[test]
    fn unroute_frees_resources_for_reuse() {
        let mut r = router();
        let src: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
        let sink: EndPoint = Pin::new(6, 8, wire::S0_F3).into();
        r.route(&src, &sink).unwrap();
        let used = r.nets().used_segments();
        assert!(used > 0);
        let cleared = r.unroute(&src).unwrap();
        assert!(cleared >= 4);
        assert_eq!(r.nets().used_segments(), 0);
        assert_eq!(r.bits().on_pip_count(), 0);
        // Resources are reusable: route again.
        r.route(&src, &sink).unwrap();
    }

    #[test]
    fn ports_route_and_reconnect_after_rebind() {
        let mut r = router();
        // A "core" output port at (2,2) and an input port at (2,6).
        let out_port = r.define_port(
            "q",
            "core_a",
            PortDir::Output,
            vec![Pin::new(2, 2, wire::S0_YQ).into()],
        );
        let in_port = r.define_port(
            "d",
            "core_b",
            PortDir::Input,
            vec![Pin::new(2, 6, wire::S0_F3).into()],
        );
        r.route(&out_port.into(), &in_port.into()).unwrap();
        assert_eq!(r.trace(&out_port.into()).unwrap().sinks.len(), 1);

        // Replace core_a: unroute, rebind its port to a new location, and
        // the connection is automatically re-made (§3.3).
        r.unroute(&out_port.into()).unwrap();
        assert_eq!(r.bits().on_pip_count(), 0);
        assert_eq!(r.remembered().len(), 1);
        let reconnected = r
            .rebind_port(out_port, vec![Pin::new(4, 2, wire::S1_YQ).into()])
            .unwrap();
        assert_eq!(reconnected, 1);
        assert!(r.remembered().is_empty());
        let net = r.trace(&out_port.into()).unwrap();
        assert_eq!(net.sinks, vec![Pin::new(2, 6, wire::S0_F3)]);
    }

    #[test]
    fn reverse_trace_via_router() {
        let mut r = router();
        let src: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
        let sink: EndPoint = Pin::new(6, 8, wire::S0_F3).into();
        r.route(&src, &sink).unwrap();
        let (hops, found) = r.reverse_trace(&sink).unwrap();
        assert!(!hops.is_empty());
        assert_eq!(
            found,
            r.device()
                .canonicalize(RowCol::new(5, 7), wire::S1_YQ)
                .unwrap()
        );
    }

    #[test]
    fn resource_usage_census() {
        let mut r = router();
        r.route(
            &Pin::new(2, 2, wire::S0_YQ).into(),
            &Pin::new(10, 14, wire::S0_F3).into(),
        )
        .unwrap();
        let u = r.resource_usage();
        assert!(u.total() > 0);
        assert!(u.hexes > 0, "a 20-CLB route should use hexes: {u}");
        assert_eq!(u.longs, 0, "long lines are off by default");
    }
}
