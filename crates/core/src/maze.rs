//! Maze routing over the segment graph.
//!
//! The paper's auto-routing calls (§3.1) name the classic maze router
//! [4][5] as the fallback when templates fail, and as one possible
//! implementation of point-to-point routing. This module implements an
//! A*-guided variant of Lee's algorithm over *canonical segments*: nodes
//! are wire segments, edges are GRM PIPs queried from the architecture
//! class (so the router itself carries no architecture knowledge — paper
//! §5).
//!
//! The search supports multiple start segments with per-start initial
//! costs, which is how fan-out routing reuses an existing tree (*"For
//! each sink, the router attempts to reuse the previous paths as much as
//! possible"*, §3.1): every segment already on the net is offered as a
//! zero-cost start.
//!
//! Scratch state (visited/cost/parent arrays over the dense segment index
//! space) is epoch-stamped and reused across searches, so a search
//! allocates nothing after warm-up.
//!
//! Queue keys are `g + w·h` with `h` served by the per-device
//! [`Lookahead`] table: an admissible lower bound on remaining cost
//! under the real wire-cost profile (hexes close 6 CLBs for one entry
//! cost). At [`MazeConfig::heuristic_weight`] `w = 1` found paths are
//! cost-optimal (the negotiated router's setting); the greedy default
//! `w = 2` inflates path cost by at most 2× in exchange for far fewer
//! expansions. Searches can additionally be confined to a [`BBox`] region
//! ([`MazeConfig::bbox`]), the PathFinder-style pruning that keeps
//! reroute cost proportional to net span rather than device size.
//!
//! Timing-driven callers set [`MazeConfig::crit`]: the edge cost becomes
//! the RWRoute blend `(1 − crit)·congestion + crit·delay` (fixed-point
//! over [`CRIT_ONE`]), with the delay term from [`virtex::delay`] and
//! the heuristic blending the lookahead's (distance, delay) pair the
//! same way, so one search engine serves both the pure-congestion
//! negotiator and the criticality-weighted one.

use crate::dial::DialQueue;
use jbits::Pip;
use jroute_obs::{Counter, Histo, Recorder};
use virtex::lookahead::Lookahead;
use virtex::segment::Tap;
use virtex::{BBox, Device, RowCol, SegIdx, Segment, Wire, WireKind};

/// Tuning knobs for a maze search.
#[derive(Debug, Clone)]
pub struct MazeConfig {
    /// Allow long lines. Default `false`: the paper's initial fan-out
    /// implementation notes *"Currently long lines are not supported;
    /// only hexes and singles are used"*. Experiment E9 flips this.
    pub use_long_lines: bool,
    /// Abort after expanding this many nodes (safety valve on congested
    /// fabrics).
    pub max_nodes: usize,
    /// Restrict expansion to segments whose canonical origin lies inside
    /// this box (PathFinder-style region pruning). Long lines are exempt
    /// — they exist to escape the neighbourhood. `None` searches the
    /// whole device. Callers that bound the search should be prepared to
    /// retry unbounded on failure: a box can cut the only legal detour.
    pub bbox: Option<BBox>,
    /// Weighted-A* focus factor applied to the lookahead estimate
    /// (`f = g + w·h`). At 1 the search is admissible and paths are
    /// cost-optimal; the default 2 trades bounded path-cost inflation
    /// for far fewer expansions on long spans — the greedy RTR bargain
    /// the paper makes explicitly (§3.1). The negotiated router runs at
    /// 1: its convergence accounting wants true minimum-cost reroutes.
    pub heuristic_weight: u32,
    /// Criticality of the connection being routed, fixed-point in
    /// `0..=`[`CRIT_ONE`]. Blends the edge cost the RWRoute way:
    /// `cost = ((CRIT_ONE − crit)·congestion + crit·delay) / CRIT_ONE`,
    /// where the delay term is the per-wire-class model in
    /// [`virtex::delay`] (in the same cost units) and the heuristic
    /// blends the lookahead's (distance, delay) estimate pair
    /// identically, so weighted A* stays consistent. At the default 0
    /// the search takes the exact pure-congestion path — bit-identical
    /// to the non-timing-driven router.
    pub crit: u32,
}

/// Fixed-point denominator for [`MazeConfig::crit`]: a criticality of
/// `CRIT_ONE` means 1.0 (pure delay cost, zero congestion weight).
pub const CRIT_ONE: u32 = 256;
const CRIT_SHIFT: u32 = 8;

/// `((CRIT_ONE − crit)·cong + crit·delay) / CRIT_ONE` without overflow.
#[inline]
pub(crate) fn blend(crit: u32, cong: u32, delay: u32) -> u32 {
    (((CRIT_ONE - crit) as u64 * cong as u64 + crit as u64 * delay as u64) >> CRIT_SHIFT) as u32
}

impl Default for MazeConfig {
    fn default() -> Self {
        MazeConfig {
            use_long_lines: false,
            max_nodes: 2_000_000,
            bbox: None,
            heuristic_weight: 2,
            crit: 0,
        }
    }
}

/// Reusable search state sized for one device: epoch-stamped best-cost /
/// predecessor arrays over the dense segment index plus the bucketed
/// open list, all reset in O(1) per search.
///
/// The per-segment record is two all-zero `u64` words so both arrays are
/// allocated as untouched zero pages (`vec![0; n]` lowers to
/// `alloc_zeroed`): constructing a scratch for a large device costs
/// microseconds and physical memory proportional to the region searches
/// actually explore, not to the full segment space. That matters to the
/// parallel router, where every worker owns a scratch per round — an
/// eagerly-written map would charge each worker tens of megabytes of
/// memory traffic before it routed anything. Packing also keeps the hot
/// relax test (`seen` + `cost`) to a single cache line per neighbour,
/// which dominates on fabrics whose scratch overflows the cache.
///
/// `meta` holds `stamp << 32 | cost` with `stamp = (epoch << 1) |
/// closed`; a slot is live iff `stamp >> 1 == epoch`. The `closed` bit
/// replaces the classic stale-heap-entry test — the Dial queue clamps
/// below-base priorities, so a popped priority says nothing about
/// whether the entry is outdated, but "already expanded and not improved
/// since" does (recording an improvement clears the bit, reopening the
/// node). `link` holds the bit-packed predecessor record; the
/// predecessor's *index* is not stored — `(rc, from)` names the physical
/// wire the path arrived over, so canonicalizing it during the (cold)
/// reconstruction walk recovers the predecessor exactly, and the scratch
/// carries no per-segment index field that would cap the segment space
/// (the synthetic super-Virtex rows exceed the 16.7 M segments a 24-bit
/// packed index allowed).
#[derive(Debug)]
pub struct MazeScratch {
    epoch: u32,
    /// `(epoch << 1 | closed) << 32 | cost`.
    meta: Vec<u64>,
    /// Packed [`PrevEntry`]: `start[0] rc.row[4:14] rc.col[14:24]
    /// from[24:34] to[34:44]`.
    link: Vec<u64>,
    open: DialQueue,
    /// Per-device distance lookahead, resolved once at construction so
    /// the per-pop heuristic is two table reads (no locks, no rebuild).
    la: &'static Lookahead,
    /// Typed metric handles cached per recorder (keyed by
    /// [`Recorder::id`]), so a search records through lock-free sharded
    /// atomics instead of string-keyed map lookups. A scratch handed a
    /// different recorder re-resolves.
    meters: Option<MazeMeters>,
}

/// Pre-resolved registry handles for the maze search telemetry.
#[derive(Debug, Clone)]
struct MazeMeters {
    rec: usize,
    searches: Counter,
    failures: Counter,
    pushes: Counter,
    pops: Counter,
    prunes: Counter,
    h_evals: Counter,
    expanded: Histo,
}

impl MazeMeters {
    fn resolve(obs: &Recorder) -> Self {
        MazeMeters {
            rec: obs.id(),
            searches: obs.counter("maze.searches"),
            failures: obs.counter("maze.search_failures"),
            pushes: obs.counter("maze.open_pushes"),
            pops: obs.counter("maze.open_pops"),
            prunes: obs.counter("maze.bbox_prunes"),
            h_evals: obs.counter("maze.lookahead_evals"),
            expanded: obs.histogram("maze.nodes_expanded"),
        }
    }
}

/// Predecessor record for one search node: the PIP `(rc, from → to)`
/// that entered it, or a start marker. The predecessor *node* is implied
/// rather than stored — `(rc, from)` is an alias position of the
/// predecessor's physical segment, so canonicalizing it recovers the
/// node during reconstruction.
#[derive(Debug, Clone, Copy)]
struct PrevEntry {
    /// Search start: no predecessor (`rc`/`from`/`to` echo the start
    /// segment and are not walked).
    start: bool,
    rc: RowCol,
    from: Wire,
    to: Wire,
}

impl PrevEntry {
    #[inline]
    fn pack(self) -> u64 {
        debug_assert!(self.from.0 < 1 << 10 && self.to.0 < 1 << 10);
        self.start as u64
            | (self.rc.row as u64) << 4
            | (self.rc.col as u64) << 14
            | (self.from.0 as u64) << 24
            | (self.to.0 as u64) << 34
    }

    #[inline]
    fn unpack(w: u64) -> Self {
        PrevEntry {
            start: w & 1 != 0,
            rc: RowCol::new((w >> 4) as u16 & 0x3FF, (w >> 14) as u16 & 0x3FF),
            from: Wire((w >> 24) as u16 & 0x3FF),
            to: Wire((w >> 34) as u16 & 0x3FF),
        }
    }
}

/// Epochs use 31 bits of the stamp half-word; wrap rewrites the stamps.
const EPOCH_MAX: u32 = u32::MAX >> 1;

impl MazeScratch {
    /// Scratch sized for `dev`'s segment space.
    pub fn new(dev: &Device) -> Self {
        let n = dev.seg_space().len();
        let dims = dev.dims();
        assert!(
            dims.rows < 1 << 10 && dims.cols < 1 << 10,
            "tile coordinates exceed packed field"
        );
        MazeScratch {
            epoch: 0,
            meta: vec![0; n],
            link: vec![0; n],
            open: DialQueue::new(),
            la: dev.lookahead(),
            meters: None,
        }
    }

    /// Metric handles for `obs`, resolved once and cached on the scratch
    /// (the scratch already has exactly the right lifetime: one per
    /// worker, reused across every search that worker runs).
    fn meters_for(&mut self, obs: &Recorder) -> &MazeMeters {
        if self.meters.as_ref().map(|m| m.rec) != Some(obs.id()) {
            self.meters = Some(MazeMeters::resolve(obs));
        }
        self.meters.as_ref().expect("just resolved")
    }

    #[inline]
    fn begin(&mut self) {
        self.epoch += 1;
        if self.epoch > EPOCH_MAX {
            self.meta.fill(0);
            self.epoch = 1;
        }
        self.open.clear();
    }

    #[inline]
    fn seen(&self, i: SegIdx) -> bool {
        (self.meta[i.as_usize()] >> 33) as u32 == self.epoch
    }

    #[inline]
    fn cost(&self, i: SegIdx) -> u32 {
        if self.seen(i) {
            self.meta[i.as_usize()] as u32
        } else {
            u32::MAX
        }
    }

    /// Record an improved cost, (re)opening the node.
    #[inline]
    fn record(&mut self, i: SegIdx, cost: u32, prev: PrevEntry) {
        let i = i.as_usize();
        self.meta[i] = (self.epoch as u64) << 33 | cost as u64;
        self.link[i] = prev.pack();
    }

    /// Close `i` for expansion; returns `false` if it was already closed
    /// at its current cost.
    #[inline]
    fn close(&mut self, i: SegIdx) -> bool {
        let e = &mut self.meta[i.as_usize()];
        let closed = (self.epoch as u64) << 1 | 1;
        if *e >> 32 == closed {
            return false;
        }
        *e = closed << 32 | *e & 0xFFFF_FFFF;
        true
    }

    /// Predecessor record of a live node (the reconstruction walk).
    #[inline]
    fn prev_of(&self, i: SegIdx) -> PrevEntry {
        debug_assert!(self.seen(i), "path nodes are recorded");
        PrevEntry::unpack(self.link[i.as_usize()])
    }
}

/// Result of a successful maze search.
#[derive(Debug, Clone)]
pub struct MazeResult {
    /// PIPs to configure, in source-to-sink order. PIPs whose source
    /// segment was an existing-net start (reuse) are only the new suffix.
    pub pips: Vec<(RowCol, Pip)>,
    /// New segments entered by the path, in source-to-sink order
    /// (excludes the start segment).
    pub segments: Vec<Segment>,
    /// Total path cost.
    pub cost: u32,
    /// Nodes expanded during the search (E8 metric).
    pub nodes_expanded: usize,
}

/// A* search from any of `starts` to `goal`.
///
/// * `blocked(seg)` — segments the path may not enter (typically: used by
///   another net). The goal is never blocked-checked: callers decide
///   whether the sink itself is free.
/// * `extra_cost(seg)` — additive congestion cost (PathFinder's present +
///   history terms); zero for plain routing.
pub fn search(
    dev: &Device,
    starts: &[(Segment, u32)],
    goal: Segment,
    cfg: &MazeConfig,
    blocked: impl FnMut(Segment) -> bool,
    extra_cost: impl FnMut(Segment) -> u32,
    scratch: &mut MazeScratch,
) -> Option<MazeResult> {
    search_obs(
        dev,
        starts,
        goal,
        cfg,
        blocked,
        extra_cost,
        scratch,
        &Recorder::disabled(),
    )
}

/// [`search`] with telemetry: one `maze.search` span per call (its note
/// is the node-expansion count), plus nodes-expanded / open-list
/// histograms and counters. A disabled recorder reduces to plain
/// `search` at the cost of a handful of local integer increments.
#[allow(clippy::too_many_arguments)] // mirrors `search` + the recorder
pub fn search_obs(
    dev: &Device,
    starts: &[(Segment, u32)],
    goal: Segment,
    cfg: &MazeConfig,
    mut blocked: impl FnMut(Segment) -> bool,
    mut extra_cost: impl FnMut(Segment) -> u32,
    scratch: &mut MazeScratch,
    obs: &Recorder,
) -> Option<MazeResult> {
    let mut span = obs.span("maze.search");
    // Cheap Arc clones; resolved through the scratch cache, so the hot
    // path below never touches the registry lock.
    let m = scratch.meters_for(obs).clone();
    let dims = dev.dims();
    let space = dev.seg_space();
    let arch = dev.arch();
    let la = scratch.la;
    let longs = cfg.use_long_lines;
    let hw = cfg.heuristic_weight.max(1);
    let crit = cfg.crit.min(CRIT_ONE);
    // Blended remaining-cost estimate; at crit 0 this is exactly the
    // pure-distance lookahead the congestion-only router uses.
    let est = |seg: Segment| -> u32 {
        if crit == 0 {
            la.estimate(seg, goal.rc, longs)
        } else {
            let (hd, hdel) = la.estimate_pair(seg, goal.rc, longs);
            blend(crit, hd, hdel)
        }
    };
    // A box covering the whole device prunes nothing; drop it so the hot
    // loop skips the contains test entirely.
    let bbox = cfg.bbox.filter(|b| !b.covers(dims));
    scratch.begin();
    let goal_idx = space.index(goal);

    let mut pushes = 0u64;
    let mut pops = 0u64;
    let mut prunes = 0u64;
    let mut h_evals = 0u64;
    for &(seg, c0) in starts {
        let i = space.index(seg);
        if !scratch.seen(i) || scratch.cost(i) > c0 {
            scratch.record(
                i,
                c0,
                PrevEntry {
                    start: true,
                    rc: seg.rc,
                    from: seg.wire,
                    to: seg.wire,
                },
            );
            scratch.open.push(c0 + hw * est(seg), i.0);
            pushes += 1;
            h_evals += 1;
        }
    }

    let mut taps: Vec<Tap> = Vec::with_capacity(4);
    let mut fanout: Vec<Wire> = Vec::with_capacity(40);
    let mut expanded = 0usize;
    let finish = |expanded: usize,
                  pushes: u64,
                  pops: u64,
                  prunes: u64,
                  h_evals: u64,
                  span: &mut jroute_obs::Span,
                  found: bool| {
        span.note(expanded as u64);
        m.searches.inc();
        if !found {
            m.failures.inc();
        }
        m.pushes.add(pushes);
        m.pops.add(pops);
        m.prunes.add(prunes);
        m.h_evals.add(h_evals);
        m.expanded.record(expanded as u64);
    };

    while let Some((_, raw)) = scratch.open.pop() {
        pops += 1;
        let idx = SegIdx(raw);
        if idx == goal_idx {
            finish(expanded, pushes, pops, prunes, h_evals, &mut span, true);
            return Some(reconstruct(dev, scratch, idx, expanded));
        }
        // Skip entries already expanded at their current (or better)
        // cost; an improved record reopens the node.
        if !scratch.close(idx) {
            continue;
        }
        let seg = space.segment(idx);
        let g = scratch.cost(idx);
        expanded += 1;
        if expanded > cfg.max_nodes {
            finish(expanded, pushes, pops, prunes, h_evals, &mut span, false);
            return None;
        }

        taps.clear();
        virtex::segment::taps(dims, seg, &mut taps);
        for &tap in &taps {
            fanout.clear();
            arch.pips_from(tap.rc, tap.wire, &mut fanout);
            for &to in &fanout {
                // Only the goal pin may be a CLB input.
                let Some(next) = dev.canonicalize(tap.rc, to) else {
                    continue;
                };
                let ni = space.index(next);
                if ni == idx {
                    continue;
                }
                if to.is_clb_input() && ni != goal_idx {
                    continue;
                }
                let is_long = matches!(next.wire.kind(), WireKind::LongH(_) | WireKind::LongV(_));
                if !longs && is_long {
                    continue;
                }
                if ni != goal_idx {
                    if let Some(b) = bbox {
                        // Long lines are exempt: their canonical origin
                        // says little about where they are usable.
                        if !is_long && !b.contains(next.rc) {
                            prunes += 1;
                            continue;
                        }
                    }
                    if blocked(next) {
                        continue;
                    }
                }
                let step = la.model().wire_cost(next.wire) + extra_cost(next);
                let ng = if crit == 0 {
                    g + step
                } else {
                    g + blend(crit, step, virtex::delay::delay_units(next.wire))
                };
                if !scratch.seen(ni) || scratch.cost(ni) > ng {
                    scratch.record(
                        ni,
                        ng,
                        PrevEntry {
                            start: false,
                            rc: tap.rc,
                            from: tap.wire,
                            to,
                        },
                    );
                    scratch.open.push(ng + hw * est(next), ni.0);
                    pushes += 1;
                    h_evals += 1;
                }
            }
        }
    }
    finish(expanded, pushes, pops, prunes, h_evals, &mut span, false);
    None
}

fn reconstruct(
    dev: &Device,
    scratch: &MazeScratch,
    goal_idx: SegIdx,
    expanded: usize,
) -> MazeResult {
    let space = dev.seg_space();
    let mut pips = Vec::new();
    let mut segments = Vec::new();
    let mut idx = goal_idx;
    let cost = scratch.cost(goal_idx);
    loop {
        let e = scratch.prev_of(idx);
        if e.start {
            break;
        }
        segments.push(space.segment(idx));
        pips.push((e.rc, Pip::new(e.from, e.to)));
        // `(rc, from)` is the alias position the path entered through;
        // its canonical form is the predecessor node.
        let prev = dev
            .canonicalize(e.rc, e.from)
            .expect("path predecessor is a live segment");
        idx = space.index(prev);
    }
    pips.reverse();
    segments.reverse();
    MazeResult {
        pips,
        segments,
        cost,
        nodes_expanded: expanded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Pin;
    use virtex::{wire, Device, Family};

    fn dev() -> Device {
        Device::new(Family::Xcv50)
    }

    fn seg_of(dev: &Device, pin: Pin) -> Segment {
        dev.canonicalize(pin.rc, pin.wire).unwrap()
    }

    #[test]
    fn routes_the_paper_example_pair() {
        let dev = dev();
        let mut scratch = MazeScratch::new(&dev);
        let src = seg_of(&dev, Pin::new(5, 7, wire::S1_YQ));
        let sink = seg_of(&dev, Pin::new(6, 8, wire::S0_F3));
        let r = search(
            &dev,
            &[(src, 0)],
            sink,
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
        )
        .expect("route exists");
        assert!(!r.pips.is_empty());
        // Path ends by driving the sink pin.
        let (last_rc, last_pip) = *r.pips.last().unwrap();
        assert_eq!(last_rc, RowCol::new(6, 8));
        assert_eq!(last_pip.to, wire::S0_F3);
        // First pip leaves the source.
        assert_eq!(r.pips[0].1.from, wire::S1_YQ);
        // Every consecutive pip pair is connected.
        for w in r.segments.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn long_distance_routes_prefer_hexes() {
        let dev = dev();
        let mut scratch = MazeScratch::new(&dev);
        let src = seg_of(&dev, Pin::new(1, 1, wire::S0_YQ));
        let sink = seg_of(&dev, Pin::new(14, 20, wire::S1_F1));
        let r = search(
            &dev,
            &[(src, 0)],
            sink,
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
        )
        .expect("route exists");
        let hexes = r
            .segments
            .iter()
            .filter(|s| matches!(s.wire.kind(), WireKind::Hex { .. }))
            .count();
        let singles = r
            .segments
            .iter()
            .filter(|s| matches!(s.wire.kind(), WireKind::Single { .. }))
            .count();
        assert!(
            hexes >= 3,
            "expected hex usage on a 32-CLB route, got {hexes}"
        );
        assert!(
            hexes >= singles,
            "hexes should dominate: {hexes} vs {singles}"
        );
    }

    #[test]
    fn no_long_lines_unless_enabled() {
        let dev = dev();
        let mut scratch = MazeScratch::new(&dev);
        let src = seg_of(&dev, Pin::new(0, 0, wire::S0_YQ));
        let sink = seg_of(&dev, Pin::new(0, 23, wire::S0_F3));
        let r = search(
            &dev,
            &[(src, 0)],
            sink,
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
        )
        .unwrap();
        assert!(r
            .segments
            .iter()
            .all(|s| !matches!(s.wire.kind(), WireKind::LongH(_) | WireKind::LongV(_))));
    }

    #[test]
    fn blocked_segments_are_avoided() {
        let dev = dev();
        let mut scratch = MazeScratch::new(&dev);
        let src = seg_of(&dev, Pin::new(5, 7, wire::S1_YQ));
        let sink = seg_of(&dev, Pin::new(6, 8, wire::S0_F3));
        // First find the unconstrained route, then ban one of its middle
        // segments and require a different route.
        let r1 = search(
            &dev,
            &[(src, 0)],
            sink,
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
        )
        .unwrap();
        let banned = r1.segments[r1.segments.len() / 2];
        let r2 = search(
            &dev,
            &[(src, 0)],
            sink,
            &MazeConfig::default(),
            |s| s == banned,
            |_| 0,
            &mut scratch,
        )
        .expect("alternate route exists");
        assert!(!r2.segments.contains(&banned));
        assert!(r2.cost >= r1.cost, "detour cannot be cheaper");
    }

    #[test]
    fn impossible_routes_return_none() {
        let dev = dev();
        let mut scratch = MazeScratch::new(&dev);
        let src = seg_of(&dev, Pin::new(5, 7, wire::S1_YQ));
        let sink = seg_of(&dev, Pin::new(6, 8, wire::S0_F3));
        // Block everything: no path can leave the source.
        let r = search(
            &dev,
            &[(src, 0)],
            sink,
            &MazeConfig::default(),
            |_| true,
            |_| 0,
            &mut scratch,
        );
        assert!(r.is_none());
    }

    #[test]
    fn reuse_starts_give_zero_cost_branching() {
        let dev = dev();
        let mut scratch = MazeScratch::new(&dev);
        let src = seg_of(&dev, Pin::new(2, 2, wire::S0_YQ));
        let far_sink = seg_of(&dev, Pin::new(2, 12, wire::S0_F3));
        let r1 = search(
            &dev,
            &[(src, 0)],
            far_sink,
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
        )
        .unwrap();
        // Second sink near the far end of the first route: with the whole
        // tree offered as zero-cost starts the incremental cost must be
        // well under routing from scratch.
        let near_sink = seg_of(&dev, Pin::new(3, 12, wire::S1_F1));
        let mut starts = vec![(src, 0)];
        starts.extend(r1.segments.iter().map(|&s| (s, 0)));
        let r2 = search(
            &dev,
            &starts,
            near_sink,
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
        )
        .unwrap();
        let r2_scratch = search(
            &dev,
            &[(src, 0)],
            near_sink,
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
        )
        .unwrap();
        assert!(
            r2.cost < r2_scratch.cost,
            "reuse ({}) should beat from-scratch ({})",
            r2.cost,
            r2_scratch.cost
        );
    }

    #[test]
    fn blend_endpoints_and_midpoint() {
        assert_eq!(blend(0, 7, 99), 7);
        assert_eq!(blend(CRIT_ONE, 7, 99), 99);
        assert_eq!(blend(CRIT_ONE / 2, 10, 20), 15);
    }

    #[test]
    fn full_crit_search_is_delay_optimal() {
        // At crit = CRIT_ONE with weight 1 the search minimizes path
        // delay, so its summed per-wire delay can never exceed the
        // congestion-optimal route's.
        let dev = dev();
        let mut scratch = MazeScratch::new(&dev);
        let src = seg_of(&dev, Pin::new(1, 1, wire::S0_YQ));
        let sink = seg_of(&dev, Pin::new(14, 20, wire::S1_F1));
        let delay_of = |r: &MazeResult| -> u32 {
            r.segments
                .iter()
                .map(|s| virtex::delay::delay_units(s.wire))
                .sum()
        };
        let cfg = MazeConfig {
            heuristic_weight: 1,
            ..MazeConfig::default()
        };
        let cong = search(
            &dev,
            &[(src, 0)],
            sink,
            &cfg,
            |_| false,
            |_| 0,
            &mut scratch,
        )
        .expect("route exists");
        let cfg_t = MazeConfig {
            crit: CRIT_ONE,
            ..cfg
        };
        let timed = search(
            &dev,
            &[(src, 0)],
            sink,
            &cfg_t,
            |_| false,
            |_| 0,
            &mut scratch,
        )
        .expect("route exists");
        assert!(
            delay_of(&timed) <= delay_of(&cong),
            "timing-driven delay {} must not exceed congestion-driven {}",
            delay_of(&timed),
            delay_of(&cong)
        );
        // And the timing-driven cost field is the blended (pure-delay)
        // path cost.
        assert_eq!(timed.cost, delay_of(&timed));
    }

    #[test]
    fn extra_cost_steers_the_route() {
        let dev = dev();
        let mut scratch = MazeScratch::new(&dev);
        let src = seg_of(&dev, Pin::new(5, 7, wire::S1_YQ));
        let sink = seg_of(&dev, Pin::new(6, 8, wire::S0_F3));
        let r1 = search(
            &dev,
            &[(src, 0)],
            sink,
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
        )
        .unwrap();
        let hot = r1.segments[0];
        // A large congestion cost on the first-choice segment must push
        // the router elsewhere.
        let r2 = search(
            &dev,
            &[(src, 0)],
            sink,
            &MazeConfig::default(),
            |_| false,
            |s| if s == hot { 10_000 } else { 0 },
            &mut scratch,
        )
        .unwrap();
        assert!(!r2.segments.contains(&hot));
    }
}
