//! Predefined templates for point-to-point auto-routing.
//!
//! Paper §3.1, on `route(EndPoint, EndPoint)`: *"Another possibility that
//! would potentially be faster is to define a set of unique and
//! predefined templates that would get from the source to the sink and
//! try each one. If all of them fail then the router could fall back on a
//! maze algorithm. The benefit of defining the template would be to
//! reduce the search space."*
//!
//! Given the displacement between source and sink we decompose each axis
//! into hex hops (6 CLBs) plus single hops (1 CLB) and emit a handful of
//! orderings (row-first, column-first, hexes-first). §5 notes this is the
//! one architecture-dependent piece of the initial implementation.

use crate::template::Template;
use virtex::{Dir, RowCol, TemplateValue, Wire, WireKind};

/// Per-axis decomposition into hex + single template values.
fn axis_steps(delta: i32, pos: Dir, neg: Dir, out: &mut Vec<TemplateValue>) {
    let dir = if delta >= 0 { pos } else { neg };
    let n = delta.unsigned_abs();
    for _ in 0..n / 6 {
        out.push(TemplateValue::hex(dir));
    }
    for _ in 0..n % 6 {
        out.push(TemplateValue::single(dir));
    }
}

/// Generate the predefined candidate templates for a route from `src_rc`
/// (on wire `src_wire`) to `dst_rc` (onto wire `dst_wire`).
///
/// Prefixes `OUTMUX` when the source is a logic-block output pin and
/// appends `CLBIN` when the sink is an input pin, so the templates run
/// end-to-end. Candidates are returned cheapest-first (fewest steps).
pub fn candidates(src_rc: RowCol, src_wire: Wire, dst_rc: RowCol, dst_wire: Wire) -> Vec<Template> {
    let dr = dst_rc.row as i32 - src_rc.row as i32;
    let dc = dst_rc.col as i32 - src_rc.col as i32;
    let from_output = src_wire.is_clb_output();
    let to_input = dst_wire.is_clb_input();

    let mut cands: Vec<Vec<TemplateValue>> = Vec::new();

    // Same-tile feedback and east-neighbour direct connect come first:
    // they are the local resources of paper §2 / Fig. 1.
    if from_output && to_input && dr == 0 && dc == 0 {
        cands.push(vec![TemplateValue::Feedback]);
    }
    if from_output && to_input && dr == 0 && dc == 1 {
        cands.push(vec![TemplateValue::Direct]);
    }

    let mut rows = Vec::new();
    axis_steps(dr, Dir::North, Dir::South, &mut rows);
    let mut cols = Vec::new();
    axis_steps(dc, Dir::East, Dir::West, &mut cols);

    // Row-major, column-major, and interleaved orderings.
    let mut row_first = rows.clone();
    row_first.extend_from_slice(&cols);
    let mut col_first = cols.clone();
    col_first.extend_from_slice(&rows);
    let mut interleaved = Vec::with_capacity(rows.len() + cols.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < rows.len() || j < cols.len() {
        if i < rows.len() {
            interleaved.push(rows[i]);
            i += 1;
        }
        if j < cols.len() {
            interleaved.push(cols[j]);
            j += 1;
        }
    }
    for body in [row_first, col_first, interleaved] {
        if !body.is_empty() && !cands.contains(&body) {
            cands.push(body);
        }
    }

    cands
        .into_iter()
        .map(|mut body| {
            // Local resources connect pins directly; fabric templates need
            // the OMUX prefix and input suffix.
            let local = matches!(
                body.as_slice(),
                [TemplateValue::Feedback] | [TemplateValue::Direct]
            );
            let mut v = Vec::with_capacity(body.len() + 2);
            if from_output && !local {
                v.push(TemplateValue::OutMux);
            }
            v.append(&mut body);
            if to_input {
                v.push(TemplateValue::ClbIn);
            }
            Template::new(v)
        })
        .collect()
}

/// Whether `wire`'s class can appear mid-template (directional fabric
/// resources only).
pub fn is_fabric(wire: Wire) -> bool {
    matches!(
        wire.kind(),
        WireKind::Single { .. }
            | WireKind::SingleEnd { .. }
            | WireKind::Hex { .. }
            | WireKind::HexMid { .. }
            | WireKind::HexEnd { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::wire;
    use virtex::Dims;
    use virtex::TemplateValue as T;

    #[test]
    fn paper_example_delta_generates_the_paper_template() {
        // (5,7) -> (6,8) is Δ(1,1): one of the candidates must be the
        // paper's {OUTMUX, EAST1, NORTH1, CLBIN} (as col-first) or its
        // row-first twin.
        let c = candidates(
            RowCol::new(5, 7),
            wire::S1_YQ,
            RowCol::new(6, 8),
            wire::S0_F3,
        );
        assert!(c
            .iter()
            .any(|t| t.values() == [T::OutMux, T::East1, T::North1, T::ClbIn]));
        assert!(c
            .iter()
            .any(|t| t.values() == [T::OutMux, T::North1, T::East1, T::ClbIn]));
        // All candidates land on the sink tile.
        for t in &c {
            assert_eq!(
                t.end_tile(RowCol::new(5, 7), Dims::new(16, 24)),
                Some(RowCol::new(6, 8)),
                "template {t:?}"
            );
        }
    }

    #[test]
    fn long_deltas_decompose_into_hexes_plus_singles() {
        let c = candidates(
            RowCol::new(0, 0),
            wire::S0_YQ,
            RowCol::new(13, 8),
            wire::S0_F3,
        );
        // Δrow=13 = 2 hexes + 1 single; Δcol=8 = 1 hex + 2 singles.
        let t = &c[0];
        let hexes = t.values().iter().filter(|v| v.hop_length() == 6).count();
        let singles = t.values().iter().filter(|v| v.hop_length() == 1).count();
        assert_eq!(hexes, 3);
        assert_eq!(singles, 3);
        assert_eq!(t.displacement(), (13, 8));
    }

    #[test]
    fn local_deltas_offer_feedback_and_direct() {
        let same = candidates(
            RowCol::new(4, 4),
            wire::S0_YQ,
            RowCol::new(4, 4),
            wire::S0_F3,
        );
        assert_eq!(same[0].values(), [T::Feedback, T::ClbIn]);
        let east = candidates(
            RowCol::new(4, 4),
            wire::S0_YQ,
            RowCol::new(4, 5),
            wire::S0_F3,
        );
        assert_eq!(east[0].values(), [T::Direct, T::ClbIn]);
        // But a west neighbour has no direct connect.
        let west = candidates(
            RowCol::new(4, 4),
            wire::S0_YQ,
            RowCol::new(4, 3),
            wire::S0_F3,
        );
        assert!(west.iter().all(|t| t.values().first() != Some(&T::Direct)));
    }

    #[test]
    fn non_pin_endpoints_get_no_prefix_or_suffix() {
        let c = candidates(
            RowCol::new(2, 2),
            wire::single(virtex::Dir::East, 0),
            RowCol::new(2, 4),
            wire::single(virtex::Dir::East, 7),
        );
        for t in &c {
            assert_ne!(t.values().first(), Some(&T::OutMux));
            assert_ne!(t.values().last(), Some(&T::ClbIn));
        }
    }

    #[test]
    fn candidates_are_distinct() {
        let c = candidates(
            RowCol::new(0, 0),
            wire::S0_YQ,
            RowCol::new(5, 5),
            wire::S0_F3,
        );
        for (i, a) in c.iter().enumerate() {
            for b in &c[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
