//! Endpoints: physical pins and logical ports.
//!
//! Paper §3.1: *"An EndPoint is either a Pin, defined by a row, column,
//! and wire, or a Port."* §3.2: *"To the user there is no distinction
//! between a physical pin ... and a logical port as they are both derived
//! from the EndPoint class."*

use virtex::{RowCol, Wire};

/// A physical pin: a wire at a specific tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pin {
    /// Tile the pin lives at.
    pub rc: RowCol,
    /// Local wire name of the pin.
    pub wire: Wire,
}

impl Pin {
    /// Pin at `(row, col)` on local wire `wire` — the paper's
    /// `new Pin(row, col, wire)`.
    #[inline]
    pub const fn new(row: u16, col: u16, wire: Wire) -> Self {
        Pin {
            rc: RowCol::new(row, col),
            wire,
        }
    }

    /// Pin from an existing coordinate.
    #[inline]
    pub const fn at(rc: RowCol, wire: Wire) -> Self {
        Pin { rc, wire }
    }
}

impl std::fmt::Display for Pin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.wire.name(), self.rc)
    }
}

/// Handle to a logical port registered with a router (see
/// [`crate::ports`]). Ports are *virtual pins* giving cores
/// architecture-independent connection points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u32);

/// Either end of a connection: a physical pin or a logical port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndPoint {
    /// A physical pin.
    Pin(Pin),
    /// A logical port (resolved through the router's port registry).
    Port(PortId),
}

impl From<Pin> for EndPoint {
    #[inline]
    fn from(p: Pin) -> Self {
        EndPoint::Pin(p)
    }
}

impl From<PortId> for EndPoint {
    #[inline]
    fn from(p: PortId) -> Self {
        EndPoint::Port(p)
    }
}

impl std::fmt::Display for EndPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EndPoint::Pin(p) => write!(f, "{p}"),
            EndPoint::Port(id) => write!(f, "port#{}", id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::wire;

    #[test]
    fn paper_constructor_signature() {
        // Paper: `Pin src = new Pin(5, 7, S1_YQ);`
        let src = Pin::new(5, 7, wire::S1_YQ);
        assert_eq!(src.rc, RowCol::new(5, 7));
        assert_eq!(src.wire, wire::S1_YQ);
        assert_eq!(src.to_string(), "S1_YQ@(5,7)");
    }

    #[test]
    fn pins_and_ports_unify_as_endpoints() {
        let e1: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
        let e2: EndPoint = PortId(3).into();
        assert!(matches!(e1, EndPoint::Pin(_)));
        assert!(matches!(e2, EndPoint::Port(PortId(3))));
        assert_eq!(e2.to_string(), "port#3");
    }
}
