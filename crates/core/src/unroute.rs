//! The unrouter (paper §3.3).
//!
//! *"Run-time reconfiguration requires an unrouter. There may be
//! situations when a route is no longer needed, or the net endpoints
//! change. Unrouting the nets free up resources."*
//!
//! * [`unroute_forward`] — *"In the forward direction a source pin is
//!   specified. The unrouter then follows each of the wires the pin
//!   drives and turns it off. This continues until all of the sinks are
//!   found."*
//! * [`reverse_unroute`] — *"Only the branch that leads to the specified
//!   pin is turned off ... The unrouter starts at the sink pin and works
//!   backwards, turning off wires along the way, until it comes to a
//!   point where a wire is driving multiple wires."*

use crate::endpoint::Pin;
use crate::error::{NetId, Result, RouteError};
use crate::net::NetDb;
use crate::trace;
use jbits::Bitstream;
use virtex::segment::Tap;
use virtex::Segment;

/// Count of on-PIPs sourced by `seg` (its fan-out degree in the
/// configuration).
fn fanout_degree(bits: &Bitstream, seg: Segment) -> usize {
    let mut taps: Vec<Tap> = Vec::with_capacity(4);
    virtex::segment::taps(bits.device().dims(), seg, &mut taps);
    taps.iter()
        .map(|t| {
            bits.pips_at(t.rc)
                .iter()
                .filter(|p| p.from == t.wire)
                .count()
        })
        .sum()
}

/// Forward-unroute the entire net driven by `source`: turn off every PIP
/// reachable from it. Returns the number of PIPs cleared.
///
/// Works from the bitstream (so it also unroutes nets configured with raw
/// JBits calls); if the router's net database knows a net rooted at
/// `source`, that net is deleted too.
pub fn unroute_forward(bits: &mut Bitstream, nets: &mut NetDb, source: Segment) -> Result<usize> {
    let traced = trace::trace(bits, source);
    if traced.pips.is_empty() {
        return Err(RouteError::NoSuchNet { segment: source });
    }
    for &(rc, pip) in &traced.pips {
        bits.clear_pip(rc, pip.from, pip.to)?;
    }
    if let Some(id) = nets.net_at_source(source) {
        nets.remove_net(id);
    } else if let Some(id) = nets.owner(source) {
        // Source was mid-net (unrouting a branch head forward): drop the
        // cleared pips from the owning net.
        let dev = *bits.device();
        for &(rc, pip) in &traced.pips {
            if let Some(target) = dev.canonicalize(rc, pip.to) {
                nets.remove_pip(id, rc, pip, target);
            }
        }
    }
    Ok(traced.pips.len())
}

/// Reverse-unroute only the branch feeding `sink`. Returns the number of
/// PIPs cleared.
///
/// Walks backwards from the sink, clearing PIPs, and stops at the first
/// segment that still drives something else (a fan-out point) or at the
/// net source.
pub fn reverse_unroute(bits: &mut Bitstream, nets: &mut NetDb, sink: Segment) -> Result<usize> {
    let dev = *bits.device();
    let owner: Option<NetId> = nets.owner(sink);
    let mut cur = sink;
    let mut cleared = 0usize;
    loop {
        let Some((rc, pip)) = bits.segment_driver(cur) else {
            if cleared == 0 {
                return Err(RouteError::NoSuchNet { segment: sink });
            }
            break;
        };
        bits.clear_pip(rc, pip.from, pip.to)?;
        cleared += 1;
        if let Some(id) = owner {
            nets.remove_pip(id, rc, pip, cur);
        }
        let Some(driver) = dev.canonicalize(rc, pip.from) else {
            break;
        };
        // Stop at a fan-out point: the driver still feeds other wires.
        if fanout_degree(bits, driver) > 0 {
            break;
        }
        // Stop at the net source (its pin still belongs to the net).
        if owner.is_some() && nets.net_at_source(driver) == owner {
            break;
        }
        if driver.wire.is_clb_output() {
            break;
        }
        cur = driver;
    }
    if let Some(id) = owner {
        if sink.wire.is_clb_input() {
            nets.remove_sink(id, Pin::at(sink.rc, sink.wire));
        }
        // If the walk consumed the entire net, drop the net record.
        if nets.net(id).is_some_and(|n| n.pips.is_empty()) {
            nets.remove_net(id);
        }
    }
    Ok(cleared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbits::{snapshot, Bitstream};
    use virtex::{wire, Device, Dir, Family, RowCol};

    /// Paper example route plus net bookkeeping.
    fn example() -> (Bitstream, NetDb, Segment) {
        let dev = Device::new(Family::Xcv50);
        let mut b = Bitstream::new(&dev);
        let mut nets = NetDb::new(dev.seg_space());
        let src_pin = Pin::new(5, 7, wire::S1_YQ);
        let src = dev.canonicalize(src_pin.rc, src_pin.wire).unwrap();
        let id = nets.create(src_pin, src).unwrap();
        let steps: [(RowCol, virtex::Wire, virtex::Wire); 4] = [
            (RowCol::new(5, 7), wire::S1_YQ, wire::out(1)),
            (RowCol::new(5, 7), wire::out(1), wire::single(Dir::East, 5)),
            (
                RowCol::new(5, 8),
                wire::single_end(Dir::East, 5),
                wire::single(Dir::North, 0),
            ),
            (
                RowCol::new(6, 8),
                wire::single_end(Dir::North, 0),
                wire::S0_F3,
            ),
        ];
        for (rc, f, t) in steps {
            b.set_pip(rc, f, t).unwrap();
            let target = dev.canonicalize(rc, t).unwrap();
            nets.add_pip(id, rc, jbits::Pip::new(f, t), target).unwrap();
        }
        nets.add_sink(id, Pin::new(6, 8, wire::S0_F3));
        (b, nets, src)
    }

    #[test]
    fn forward_unroute_restores_blank_bitstream() {
        let dev = Device::new(Family::Xcv50);
        let blank = snapshot(&Bitstream::new(&dev));
        let (mut b, mut nets, src) = example();
        let n = unroute_forward(&mut b, &mut nets, src).unwrap();
        assert_eq!(n, 4);
        assert_eq!(
            snapshot(&b),
            blank,
            "unroute must return device to prior state"
        );
        assert!(nets.is_empty());
        assert_eq!(nets.used_segments(), 0);
        // Unrouting again reports there is no net.
        assert!(matches!(
            unroute_forward(&mut b, &mut nets, src),
            Err(RouteError::NoSuchNet { .. })
        ));
    }

    #[test]
    fn reverse_unroute_removes_whole_stem_without_fanout() {
        let (mut b, mut nets, _) = example();
        let dev = *b.device();
        let sink = dev.canonicalize(RowCol::new(6, 8), wire::S0_F3).unwrap();
        let n = reverse_unroute(&mut b, &mut nets, sink).unwrap();
        // All four pips form a single branch; all are cleared.
        assert_eq!(n, 4);
        assert_eq!(b.on_pip_count(), 0);
        assert!(nets.is_empty());
    }

    #[test]
    fn reverse_unroute_stops_at_fanout_point() {
        let (mut b, mut nets, src) = example();
        let dev = *b.device();
        // Add a branch from OUT[1]: drive SINGLE_N[3]@(5,7) and on to a
        // second sink at (6,7).
        let id = nets.net_at_source(src).unwrap();
        let branch: [(RowCol, virtex::Wire, virtex::Wire); 2] = [
            (RowCol::new(5, 7), wire::out(1), wire::single(Dir::North, 3)),
            (
                RowCol::new(6, 7),
                wire::single_end(Dir::North, 3),
                wire::slice_in(1, 8),
            ),
        ];
        for (rc, f, t) in branch {
            b.set_pip(rc, f, t).unwrap();
            let target = dev.canonicalize(rc, t).unwrap();
            nets.add_pip(id, rc, jbits::Pip::new(f, t), target).unwrap();
        }
        nets.add_sink(id, Pin::new(6, 7, wire::slice_in(1, 8)));
        let before = b.on_pip_count();
        assert_eq!(before, 6);

        // Remove only the original (6,8) branch.
        let sink = dev.canonicalize(RowCol::new(6, 8), wire::S0_F3).unwrap();
        let n = reverse_unroute(&mut b, &mut nets, sink).unwrap();
        // Cleared: S0_F3 driver, SINGLE_N[0] driver, SINGLE_E[5] driver —
        // then OUT[1] still drives SINGLE_N[3], so the walk stops.
        assert_eq!(n, 3);
        assert_eq!(b.on_pip_count(), 3);
        // The other branch is intact.
        let traced = crate::trace::trace(&b, src);
        assert_eq!(traced.sinks, vec![Pin::new(6, 7, wire::slice_in(1, 8))]);
        // The net record shrank but survives.
        let net = nets.net(id).unwrap();
        assert_eq!(net.pips.len(), 3);
        assert_eq!(net.sinks.len(), 1);
    }

    #[test]
    fn reverse_unroute_of_undriven_sink_fails() {
        let (mut b, mut nets, _) = example();
        let dev = *b.device();
        let sink = dev.canonicalize(RowCol::new(1, 1), wire::S0_F3).unwrap();
        assert!(matches!(
            reverse_unroute(&mut b, &mut nets, sink),
            Err(RouteError::NoSuchNet { .. })
        ));
    }

    #[test]
    fn forward_unroute_works_without_netdb_knowledge() {
        // Configure with raw JBits only (no net records), then unroute.
        let dev = Device::new(Family::Xcv50);
        let mut b = Bitstream::new(&dev);
        b.set_pip(RowCol::new(5, 7), wire::S1_YQ, wire::out(1))
            .unwrap();
        b.set_pip(RowCol::new(5, 7), wire::out(1), wire::single(Dir::East, 5))
            .unwrap();
        let mut nets = NetDb::new(dev.seg_space());
        let src = dev.canonicalize(RowCol::new(5, 7), wire::S1_YQ).unwrap();
        let n = unroute_forward(&mut b, &mut nets, src).unwrap();
        assert_eq!(n, 2);
        assert_eq!(b.on_pip_count(), 0);
    }
}
