//! # jroute — a run-time routing API for (simulated) Virtex FPGA hardware
//!
//! A Rust reproduction of *JRoute: A Run-Time Routing API for FPGA
//! Hardware* (Eric Keller, IPPS 2000). JRoute layers automated,
//! contention-protected routing over a JBits-class bit-level
//! configuration interface, with *various levels of control* (§3.1):
//!
//! 1. single PIPs — [`Router::route_pip`];
//! 2. explicit [`Path`]s — [`Router::route_path`];
//! 3. [`Template`]s (direction/resource classes) —
//!    [`Router::route_template`];
//! 4. auto point-to-point — [`Router::route`];
//! 5. auto fan-out with tree reuse — [`Router::route_fanout`];
//! 6. bus routing — [`Router::route_bus`];
//!
//! plus ports for core-based design (§3.2), forward/reverse unrouting for
//! run-time reconfiguration (§3.3), contention protection (§3.4) and
//! trace-based debugging (§3.5).
//!
//! ```
//! use jroute::{Router, Pin, EndPoint};
//! use virtex::{wire, Device, Family};
//!
//! let device = Device::new(Family::Xcv50);
//! let mut router = Router::new(&device);
//! let src: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
//! let sink: EndPoint = Pin::new(6, 8, wire::S0_F3).into();
//! router.route(&src, &sink).unwrap();
//! assert_eq!(router.trace(&src).unwrap().sinks.len(), 1);
//! router.unroute(&src).unwrap();
//! assert_eq!(router.bits().on_pip_count(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dial;
pub mod endpoint;
pub mod error;
pub mod maze;
pub mod net;
pub mod parallel;
pub mod partition;
pub mod path;
pub mod pathfinder;
pub mod ports;
pub mod router;
pub mod schedule;
pub mod stats;
pub mod steiner;
pub mod template;
pub mod templates_db;
pub mod trace;
pub mod tuner;
pub mod unroute;

pub use endpoint::{EndPoint, Pin, PortId};
pub use error::{NetId, Result, RouteError};
pub use jroute_obs as obs;
pub use jroute_obs::Recorder;
pub use net::{Net, NetDb};
pub use partition::{ScratchPool, SearchBox, WavePlan};
pub use path::Path;
pub use ports::{Port, PortDb, PortDir};
pub use router::{Remembered, Router, RouterOptions};
pub use schedule::{Scheduler, SchedulerKind, StealDeque};
pub use stats::{ResourceUsage, RouterStats};
pub use steiner::SteinerTree;
pub use template::Template;
pub use trace::TracedNet;
pub use tuner::TunerReport;
