//! Explicit paths: the second level of control.
//!
//! Paper §3.1: *"A path is an array of specific resources ... that are to
//! be connected. The path also requires a starting location, defined by a
//! row and column."*

use virtex::{RowCol, Wire};

/// An explicit sequence of wires to connect, starting at a given tile.
///
/// Mirrors the paper's
/// `Path path = new Path(5, 7, new int[]{S1_YQ, Out[1], ...})`.
/// The router walks the wires in order; each consecutive pair must be
/// connectable by a PIP at some tap of the previous wire's segment, so the
/// user does not spell out the intermediate tile hops (exactly as in the
/// paper's example, where `SingleEast[5]` is named once even though it is
/// configured from tile `(5,8)` onward).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    start: RowCol,
    wires: Vec<Wire>,
}

impl Path {
    /// Path starting at `(row, col)` through `wires`, in order.
    pub fn new(row: u16, col: u16, wires: impl Into<Vec<Wire>>) -> Self {
        Path {
            start: RowCol::new(row, col),
            wires: wires.into(),
        }
    }

    /// Path starting at an existing coordinate.
    pub fn from_rc(start: RowCol, wires: impl Into<Vec<Wire>>) -> Self {
        Path {
            start,
            wires: wires.into(),
        }
    }

    /// The starting tile.
    #[inline]
    pub fn start(&self) -> RowCol {
        self.start
    }

    /// The wire sequence.
    #[inline]
    pub fn wires(&self) -> &[Wire] {
        &self.wires
    }

    /// Number of wires in the path.
    #[inline]
    pub fn len(&self) -> usize {
        self.wires.len()
    }

    /// Whether the path has no wires.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.wires.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Dir};

    #[test]
    fn paper_example_path_builds() {
        // §3.1: int[] p = {S1_YQ, Out[1], SingleEast[5], SingleNorth[0], S0F3};
        //       Path path = new Path(5,7,p);
        let p = Path::new(
            5,
            7,
            vec![
                wire::S1_YQ,
                wire::out(1),
                wire::single(Dir::East, 5),
                wire::single(Dir::North, 0),
                wire::S0_F3,
            ],
        );
        assert_eq!(p.start(), RowCol::new(5, 7));
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.wires()[0], wire::S1_YQ);
    }
}
