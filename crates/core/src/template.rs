//! Route templates: the third level of control.
//!
//! Paper §3.1: *"A template is defined as an array of template values ...
//! The user does not have to know the wire connections and the resources
//! in use."*

use virtex::geometry::{Dims, RowCol};
use virtex::TemplateValue;

/// An ordered sequence of [`TemplateValue`]s describing the *shape* of a
/// route without naming resources.
///
/// Mirrors the paper's
/// `Template template = new Template(new int[]{OUTMUX, EAST1, NORTH1, CLBIN})`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    values: Vec<TemplateValue>,
}

impl Template {
    /// Template over the given values, in traversal order.
    pub fn new(values: impl Into<Vec<TemplateValue>>) -> Self {
        Template {
            values: values.into(),
        }
    }

    /// The template values.
    #[inline]
    pub fn values(&self) -> &[TemplateValue] {
        &self.values
    }

    /// Number of steps.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the template has no steps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Net displacement `(d_row, d_col)` of one complete walk of the
    /// template (directional steps only; local steps move nothing).
    pub fn displacement(&self) -> (i32, i32) {
        let mut dr = 0i32;
        let mut dc = 0i32;
        for v in &self.values {
            if let Some(dir) = v.dir() {
                let (r, c) = dir.delta();
                let n = v.hop_length() as i32;
                dr += r * n;
                dc += c * n;
            }
        }
        (dr, dc)
    }

    /// Tile reached by walking the template from `start`, or `None` if it
    /// leaves a `dims`-sized device (checked cumulatively so a template
    /// cannot escape and re-enter).
    pub fn end_tile(&self, start: RowCol, dims: Dims) -> Option<RowCol> {
        let mut rc = start;
        for v in &self.values {
            if let Some(dir) = v.dir() {
                rc = rc.step(dir, v.hop_length(), dims)?;
            }
        }
        Some(rc)
    }
}

impl FromIterator<TemplateValue> for Template {
    fn from_iter<I: IntoIterator<Item = TemplateValue>>(iter: I) -> Self {
        Template::new(iter.into_iter().collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::TemplateValue as T;

    #[test]
    fn paper_example_template() {
        // §3.1: int[] t = {OUTMUX, EAST1, NORTH1, CLBIN};
        let t = Template::new(vec![T::OutMux, T::East1, T::North1, T::ClbIn]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.displacement(), (1, 1));
        // From (5,7) the walk ends at (6,8) — the paper's sink tile.
        let end = t.end_tile(RowCol::new(5, 7), Dims::new(16, 24)).unwrap();
        assert_eq!(end, RowCol::new(6, 8));
    }

    #[test]
    fn displacement_mixes_hexes_and_singles() {
        let t = Template::new(vec![
            T::OutMux,
            T::North6,
            T::North6,
            T::South1,
            T::East6,
            T::ClbIn,
        ]);
        assert_eq!(t.displacement(), (11, 6));
    }

    #[test]
    fn end_tile_rejects_off_chip_walks() {
        let t = Template::new(vec![T::South6, T::North6]);
        // Walking south 6 from row 2 leaves the chip even though the net
        // displacement is zero.
        assert_eq!(t.end_tile(RowCol::new(2, 5), Dims::new(16, 24)), None);
        assert_eq!(
            t.end_tile(RowCol::new(8, 5), Dims::new(16, 24)),
            Some(RowCol::new(8, 5))
        );
    }
}
