//! Net tracing: the debugging features of paper §3.5.
//!
//! * [`trace`] — *"traces a source to all of its sinks. The entire net is
//!   returned."*
//! * [`reverse_trace`] — *"A sink is traced back to its source. Only the
//!   net that leads to the sink is returned."*
//!
//! Both work purely from the configuration bitstream (readback), exactly
//! as BoardScope-class tools must: they make no use of the router's net
//! database, so they can inspect state configured by raw JBits calls too.

use crate::endpoint::Pin;
use jbits::{Bitstream, Pip};
use virtex::segment::Tap;
use virtex::{RowCol, Segment};

/// A traced net: everything reachable from a source through on-PIPs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedNet {
    /// The canonical source segment the trace started from.
    pub source: Segment,
    /// Every segment the signal reaches, in discovery (BFS) order,
    /// starting with the source.
    pub segments: Vec<Segment>,
    /// Every on-PIP carrying the signal, in discovery order.
    pub pips: Vec<(RowCol, Pip)>,
    /// Logic-block input pins reached (the net's sinks).
    pub sinks: Vec<Pin>,
}

/// One step of a reverse trace: the PIP that drove the wire.
pub type Hop = (RowCol, Pip);

/// Trace forward from `source`, following every on-PIP, and return the
/// entire net (paper: `trace(EndPoint source)`).
pub fn trace(bits: &Bitstream, source: Segment) -> TracedNet {
    let dev = bits.device();
    let mut net = TracedNet {
        source,
        segments: vec![source],
        pips: Vec::new(),
        sinks: Vec::new(),
    };
    let mut seen = std::collections::HashSet::new();
    seen.insert(source);
    let mut frontier = vec![source];
    let mut taps: Vec<Tap> = Vec::new();
    while let Some(seg) = frontier.pop() {
        taps.clear();
        virtex::segment::taps(dev.dims(), seg, &mut taps);
        for tap in &taps {
            for pip in bits.pips_at(tap.rc) {
                if pip.from != tap.wire {
                    continue;
                }
                net.pips.push((tap.rc, *pip));
                let Some(next) = dev.canonicalize(tap.rc, pip.to) else {
                    continue;
                };
                if pip.to.is_clb_input() {
                    let pin = Pin::at(tap.rc, pip.to);
                    if !net.sinks.contains(&pin) {
                        net.sinks.push(pin);
                    }
                }
                if seen.insert(next) {
                    net.segments.push(next);
                    frontier.push(next);
                }
            }
        }
    }
    net
}

/// Trace backward from `sink` to the net's source (paper:
/// `reverseTrace(EndPoint sink)`). Returns the hops sink-first and the
/// source segment, or `None` if `sink` is not driven at all.
pub fn reverse_trace(bits: &Bitstream, sink: Segment) -> Option<(Vec<Hop>, Segment)> {
    let dev = bits.device();
    let mut hops = Vec::new();
    let mut cur = sink;
    let mut guard = 0usize;
    loop {
        match bits.segment_driver(cur) {
            Some((rc, pip)) => {
                hops.push((rc, pip));
                cur = dev.canonicalize(rc, pip.from)?;
            }
            None => {
                if hops.is_empty() {
                    return None;
                }
                return Some((hops, cur));
            }
        }
        guard += 1;
        assert!(
            guard <= dev.segment_space(),
            "reverse trace cycle: configuration drives itself"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jbits::Bitstream;
    use virtex::{wire, Device, Dir, Family, RowCol};

    /// Configure the paper's §3.1 worked example route by hand.
    fn example_route() -> (Bitstream, Segment) {
        let dev = Device::new(Family::Xcv50);
        let mut b = Bitstream::new(&dev);
        b.set_pip(RowCol::new(5, 7), wire::S1_YQ, wire::out(1))
            .unwrap();
        b.set_pip(RowCol::new(5, 7), wire::out(1), wire::single(Dir::East, 5))
            .unwrap();
        b.set_pip(
            RowCol::new(5, 8),
            wire::single_end(Dir::East, 5),
            wire::single(Dir::North, 0),
        )
        .unwrap();
        b.set_pip(
            RowCol::new(6, 8),
            wire::single_end(Dir::North, 0),
            wire::S0_F3,
        )
        .unwrap();
        let src = dev.canonicalize(RowCol::new(5, 7), wire::S1_YQ).unwrap();
        (b, src)
    }

    #[test]
    fn trace_returns_entire_net() {
        let (b, src) = example_route();
        let net = trace(&b, src);
        assert_eq!(net.source, src);
        assert_eq!(net.pips.len(), 4);
        assert_eq!(net.sinks, vec![Pin::new(6, 8, wire::S0_F3)]);
        // Segments: S1_YQ, OUT[1], SINGLE_E[5], SINGLE_N[0], S0_F3.
        assert_eq!(net.segments.len(), 5);
    }

    #[test]
    fn trace_follows_fanout_branches() {
        let (mut b, src) = example_route();
        // Branch at OUT[1]: also drive SINGLE_N[4] from (5,7)
        // (pattern: OUT[1] drives north singles {3, 11, 19}).
        b.set_pip(RowCol::new(5, 7), wire::out(1), wire::single(Dir::North, 3))
            .unwrap();
        let net = trace(&b, src);
        assert_eq!(net.pips.len(), 5);
        assert_eq!(net.segments.len(), 6);
    }

    #[test]
    fn reverse_trace_finds_only_the_stem() {
        let (mut b, src) = example_route();
        b.set_pip(RowCol::new(5, 7), wire::out(1), wire::single(Dir::North, 3))
            .unwrap();
        let dev = *b.device();
        let sink = dev.canonicalize(RowCol::new(6, 8), wire::S0_F3).unwrap();
        let (hops, found_src) = reverse_trace(&b, sink).unwrap();
        assert_eq!(found_src, src);
        // The stem is 4 hops; the branch to SINGLE_N[5] is not included.
        assert_eq!(hops.len(), 4);
        assert_eq!(hops[0].0, RowCol::new(6, 8));
        assert_eq!(hops[3].1, jbits::Pip::new(wire::S1_YQ, wire::out(1)));
    }

    #[test]
    fn reverse_trace_of_undriven_wire_is_none() {
        let (b, _) = example_route();
        let dev = *b.device();
        let sink = dev.canonicalize(RowCol::new(2, 2), wire::S0_F3).unwrap();
        assert!(reverse_trace(&b, sink).is_none());
    }

    #[test]
    fn trace_of_unrouted_source_is_just_the_source() {
        let dev = Device::new(Family::Xcv50);
        let b = Bitstream::new(&dev);
        let src = dev.canonicalize(RowCol::new(5, 7), wire::S1_YQ).unwrap();
        let net = trace(&b, src);
        assert_eq!(net.segments, vec![src]);
        assert!(net.pips.is_empty());
        assert!(net.sinks.is_empty());
    }
}
