//! Bucketed Dial queue for the maze router's open list.
//!
//! A* over the segment graph pops keys in (nearly) monotone order and the
//! per-edge cost deltas are small integers (wire costs are single digits;
//! only congestion penalties are large). Dial's algorithm exploits this: a
//! ring of `NUM_BUCKETS` FIFO-ish buckets indexed by `priority - base`
//! makes push and pop O(1) instead of the `BinaryHeap`'s O(log n), and the
//! queue allocates nothing after warm-up. Priorities further than the ring
//! spans (congestion-inflated entries) overflow into a spill vector and
//! are redistributed when the ring drains — rare by construction, since
//! the ring is sized well beyond any uncongested edge delta.
//!
//! Weighted A* (`f = g + W·h`) is not strictly monotone, so a push may
//! name a priority below `base`; it is clamped into the current bucket.
//! That only reorders expansion — path costs are always read from the
//! recorded `g`, and the maze router's closed set (with reopening on
//! cost improvement) keeps clamped entries from expanding twice.

/// Ring size: covers every uncongested edge delta (max wire cost ≈ 20 on
/// the largest family member, times the heuristic weight) with two orders
/// of margin.
const NUM_BUCKETS: usize = 256;

/// Monotone integer priority queue of `(priority, item)` pairs.
#[derive(Debug)]
pub struct DialQueue {
    buckets: Vec<Vec<u32>>,
    /// Entries with `priority >= base + NUM_BUCKETS`, kept as pairs.
    overflow: Vec<(u32, u32)>,
    /// Minimum priority in `overflow` (`u32::MAX` when empty); the walk
    /// in [`DialQueue::pop`] drains the overflow the moment `base`
    /// reaches it, so overflow entries never pop out of order.
    overflow_min: u32,
    /// Priority of the bucket under the cursor.
    base: u32,
    cursor: usize,
    /// Items in the ring (excluding overflow).
    ring_len: usize,
}

impl Default for DialQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl DialQueue {
    /// Empty queue.
    pub fn new() -> Self {
        DialQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            overflow_min: u32::MAX,
            base: 0,
            cursor: 0,
            ring_len: 0,
        }
    }

    /// Remove every entry and rewind to priority 0. Bucket capacity is
    /// retained, so a queue reused across searches stops allocating.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.overflow_min = u32::MAX;
        self.base = 0;
        self.cursor = 0;
        self.ring_len = 0;
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queue `item` at `priority`. Priorities below the current pop
    /// position are clamped to it (see module docs).
    pub fn push(&mut self, priority: u32, item: u32) {
        let delta = priority.saturating_sub(self.base) as usize;
        if delta < NUM_BUCKETS {
            self.buckets[(self.cursor + delta) % NUM_BUCKETS].push(item);
            self.ring_len += 1;
        } else {
            self.overflow.push((priority, item));
            self.overflow_min = self.overflow_min.min(priority);
        }
    }

    /// Pop an entry with the minimum priority (ties in unspecified
    /// order), returning `(priority, item)`. The returned priority is the
    /// pop position — for clamped entries it may be below the priority
    /// they were pushed with.
    pub fn pop(&mut self) -> Option<(u32, u32)> {
        if self.ring_len == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            // Jump straight to the overflow's minimum priority.
            self.base = self.overflow_min;
            self.cursor = 0;
            self.drain_overflow_window();
        }
        // Walk the ring to the next non-empty bucket. Total walk work is
        // bounded by the priority range actually spanned, not by pops.
        while self.buckets[self.cursor].is_empty() {
            self.cursor = (self.cursor + 1) % NUM_BUCKETS;
            self.base += 1;
            if self.base == self.overflow_min {
                // Overflow entries are reaching the window; pull them in
                // before they can be overtaken by farther ring entries.
                self.drain_overflow_window();
            }
        }
        let item = self.buckets[self.cursor].pop().expect("non-empty bucket");
        self.ring_len -= 1;
        Some((self.base, item))
    }

    /// Move every overflow entry within `[base, base + NUM_BUCKETS)` into
    /// the ring and recompute `overflow_min` over what remains.
    fn drain_overflow_window(&mut self) {
        let mut new_min = u32::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let (p, item) = self.overflow[i];
            let delta = p.saturating_sub(self.base) as usize;
            if delta < NUM_BUCKETS {
                self.buckets[(self.cursor + delta) % NUM_BUCKETS].push(item);
                self.ring_len += 1;
                self.overflow.swap_remove(i);
            } else {
                new_min = new_min.min(p);
                i += 1;
            }
        }
        self.overflow_min = new_min;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut q = DialQueue::new();
        for (p, it) in [(5u32, 50u32), (1, 10), (3, 30), (1, 11), (0, 0)] {
            q.push(p, it);
        }
        let mut popped = Vec::new();
        while let Some((p, it)) = q.pop() {
            popped.push((p, it));
        }
        let prios: Vec<u32> = popped.iter().map(|&(p, _)| p).collect();
        assert_eq!(prios, vec![0, 1, 1, 3, 5]);
        let mut items: Vec<u32> = popped.iter().map(|&(_, it)| it).collect();
        items.sort_unstable();
        assert_eq!(items, vec![0, 10, 11, 30, 50]);
    }

    #[test]
    fn matches_a_binary_heap_on_monotone_random_sequences() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        // Deterministic xorshift so the test needs no RNG dependency.
        let mut state = 0x9e3779b9u32;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        let mut q = DialQueue::new();
        let mut h: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        let mut floor = 0u32; // pops so far are >= floor: push monotonically
        for step in 0..4000 {
            if step % 3 != 2 || h.is_empty() {
                // Mostly-small deltas with occasional congestion spikes.
                let delta = if rng() % 50 == 0 {
                    rng() % 20_000
                } else {
                    rng() % 40
                };
                let p = floor + delta;
                q.push(p, step);
                h.push(Reverse(p));
            } else {
                let (pq, _) = q.pop().expect("same length");
                let Reverse(ph) = h.pop().unwrap();
                assert_eq!(pq, ph, "step {step}");
                floor = ph;
            }
        }
        while let Some(Reverse(ph)) = h.pop() {
            assert_eq!(q.pop().map(|(p, _)| p), Some(ph));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn below_base_pushes_are_clamped_not_lost() {
        let mut q = DialQueue::new();
        q.push(10, 1);
        assert_eq!(q.pop(), Some((10, 1)));
        // base is now 10; an inconsistent-heuristic push below it...
        q.push(4, 2);
        // ...comes back immediately at the clamped position.
        assert_eq!(q.pop(), Some((10, 2)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_entries_survive_redistribution() {
        let mut q = DialQueue::new();
        q.push(3, 1);
        q.push(100_000, 2); // far overflow
        q.push(100_004, 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((3, 1)));
        assert_eq!(q.pop(), Some((100_000, 2)));
        assert_eq!(q.pop(), Some((100_004, 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_is_not_overtaken_by_farther_ring_entries() {
        // An overflow entry whose priority comes into the ring window as
        // base advances must pop before ring entries beyond it.
        let mut q = DialQueue::new();
        q.push(0, 1);
        q.push(300, 2); // overflow at push time (window is [0, 256))
        assert_eq!(q.pop(), Some((0, 1)));
        q.push(310, 3); // in-ring now that entries below exist? No: delta 310 >= 256 -> overflow too
        q.push(100, 4);
        assert_eq!(q.pop(), Some((100, 4)));
        // Window now reaches past 300: the old overflow entry must come
        // first, then 310.
        assert_eq!(q.pop(), Some((300, 2)));
        assert_eq!(q.pop(), Some((310, 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut q = DialQueue::new();
        q.push(7, 1);
        q.push(90_000, 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        q.push(0, 9);
        assert_eq!(q.pop(), Some((0, 9)));
    }
}
