//! Partition → dispatch support for the unified negotiated router.
//!
//! The incremental PathFinder negotiator and the claim-table router both
//! confine each net's maze searches to a box around its terminals. This
//! module makes that box a first-class object ([`SearchBox`], one growth
//! policy shared by every call site) and builds on it the observation
//! that makes negotiation parallelizable at all: **nets whose search
//! regions are disjoint cannot interact** — their searches read disjoint
//! congestion state and their routes occupy disjoint segments — so they
//! may be ripped up, re-searched and committed together without changing
//! any result.
//!
//! [`partition_waves`] turns one iteration's dirty-net set into a
//! sequence of such *waves* by recursive bisection over the search boxes
//! (the strategy of the ParaDRo-style open-source parallel routers, see
//! PAPERS.md): cut the region along its longer axis at the median box
//! midpoint, recurse into the fully-left and fully-right sets, zip-merge
//! their wave lists (wave *k* of the left side is box-disjoint from wave
//! *k* of the right side *by the cut*), and recurse separately into the
//! straddlers. Sets in which every box overlaps every cut degrade to one
//! singleton wave per net — bisection always terminates, and a wave is
//! never allowed to contain two overlapping boxes.
//!
//! [`ScratchPool`] is the execution substrate's allocator: maze scratch
//! spaces are device-sized (hundreds of MB of address space on the
//! synthetic super-Virtex rows), so workers lease them per wave and
//! return them on drop instead of constructing one per round.

use crate::maze::MazeScratch;
use crate::pathfinder::NetSpec;
use std::sync::Mutex;
use virtex::wire::HEX_SPAN;
use virtex::{BBox, Device, Dims, RowCol};

/// Default margin (tiles beyond the terminal bounding box) a search
/// region grants for detours before any growth.
pub const DEFAULT_MARGIN: u16 = 3;

/// A net's canonical search region: the terminal bounding box plus the
/// extra patience it has earned, with one growth policy for every
/// router.
///
/// The actual maze region ([`SearchBox::region`]) expands the terminal
/// box by `margin + HEX_SPAN + growth`: the margin buys detour room,
/// the [`HEX_SPAN`] slack keeps hexes whose canonical origin trails
/// outside the box but whose taps land inside it reachable, and the
/// growth term widens nets that keep getting ripped up until they
/// asymptotically see the whole device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBox {
    terminals: BBox,
    growth: u16,
}

impl SearchBox {
    /// Region seeded from an explicit terminal box.
    pub fn new(terminals: BBox) -> Self {
        SearchBox {
            terminals,
            growth: 0,
        }
    }

    /// Region covering every terminal pin of `spec` (source and sinks),
    /// by raw pin position.
    pub fn of_spec(spec: &NetSpec) -> Self {
        let mut b = BBox::at(spec.source.rc);
        for s in &spec.sinks {
            b.include(s.rc);
        }
        SearchBox::new(b)
    }

    /// Region covering `points`, or `None` for an empty iterator.
    pub fn of_points(points: impl IntoIterator<Item = RowCol>) -> Option<Self> {
        BBox::of(points).map(SearchBox::new)
    }

    /// The unexpanded terminal box.
    pub fn terminals(&self) -> BBox {
        self.terminals
    }

    /// Extra margin earned so far via [`SearchBox::widen`].
    pub fn growth(&self) -> u16 {
        self.growth
    }

    /// Grow the region by `by` extra tiles of margin (saturating). The
    /// negotiators call this with 1 per repeat rip-up and [`HEX_SPAN`]
    /// per outright search failure.
    pub fn widen(&mut self, by: u16) {
        self.growth = self.growth.saturating_add(by);
    }

    /// The maze search region at `margin` tiles of slack, clamped to the
    /// device.
    pub fn region(&self, margin: u16, dims: Dims) -> BBox {
        self.terminals.expand(margin + HEX_SPAN + self.growth, dims)
    }
}

/// Whether two inclusive boxes share no tile — the invariant
/// [`partition_waves`] guarantees within every wave.
#[inline]
pub fn disjoint(a: BBox, b: BBox) -> bool {
    a.max.row < b.min.row || b.max.row < a.min.row || a.max.col < b.min.col || b.max.col < a.min.col
}

/// Output of [`partition_waves`]: waves of mutually box-disjoint nets.
#[derive(Debug)]
pub struct WavePlan {
    /// Waves in dispatch order; each wave holds indices into the input
    /// slice, ascending, with pairwise-disjoint boxes. Every input index
    /// appears in exactly one wave.
    pub waves: Vec<Vec<usize>>,
    /// Nets that straddled a bisection cut (or sat in an inseparable
    /// clique) and were pushed into later waves — the serialization the
    /// partition could not avoid.
    pub conflicts: usize,
}

impl WavePlan {
    /// Largest wave size (0 for an empty plan) — the available
    /// parallelism ceiling.
    pub fn widest(&self) -> usize {
        self.waves.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Partition `boxes` into bbox-disjoint waves by recursive bisection.
pub fn partition_waves(boxes: &[BBox]) -> WavePlan {
    let mut conflicts = 0usize;
    let items: Vec<(usize, BBox)> = boxes.iter().copied().enumerate().collect();
    let mut waves = bisect(items, &mut conflicts);
    for w in &mut waves {
        w.sort_unstable();
    }
    WavePlan { waves, conflicts }
}

#[derive(Clone, Copy)]
enum Axis {
    Row,
    Col,
}

fn lo(b: BBox, axis: Axis) -> u16 {
    match axis {
        Axis::Row => b.min.row,
        Axis::Col => b.min.col,
    }
}

fn hi(b: BBox, axis: Axis) -> u16 {
    match axis {
        Axis::Row => b.max.row,
        Axis::Col => b.max.col,
    }
}

/// The two axes, the one with the larger union extent first (ties go to
/// rows): cutting across the long direction of the populated area gives
/// the most even splits.
fn axes_by_extent(items: &[(usize, BBox)]) -> [Axis; 2] {
    let mut union = items[0].1;
    for &(_, b) in &items[1..] {
        union.include(b.min);
        union.include(b.max);
    }
    let rows = union.max.row - union.min.row;
    let cols = union.max.col - union.min.col;
    if rows >= cols {
        [Axis::Row, Axis::Col]
    } else {
        [Axis::Col, Axis::Row]
    }
}

/// Try to cut `items` along `axis`. Candidate cut lines are the distinct
/// lower box edges; for a cut `c`, boxes with `hi < c` go left, `lo >= c`
/// go right, the rest straddle. The sweep picks the candidate with the
/// most even split (largest smaller side; ties broken by fewest
/// straddlers), so a cut that cleanly separates everything is always
/// preferred over one that manufactures straddlers. Returns
/// `(left, right, straddle)` only when both clean sides are non-empty —
/// the condition that guarantees every recursive call strictly shrinks.
type Cut = (Vec<(usize, BBox)>, Vec<(usize, BBox)>, Vec<(usize, BBox)>);

fn cut(items: &[(usize, BBox)], axis: Axis) -> Option<Cut> {
    let n = items.len();
    let mut los: Vec<u16> = items.iter().map(|&(_, b)| lo(b, axis)).collect();
    let mut his: Vec<u16> = items.iter().map(|&(_, b)| hi(b, axis)).collect();
    los.sort_unstable();
    his.sort_unstable();
    let mut cands = los.clone();
    cands.dedup();
    let mut best: Option<((usize, std::cmp::Reverse<usize>), u16)> = None;
    for &c in &cands {
        let l = his.partition_point(|&h| h < c);
        let r = n - los.partition_point(|&x| x < c);
        if l == 0 || r == 0 {
            continue;
        }
        let score = (l.min(r), std::cmp::Reverse(n - l - r));
        if best.is_none_or(|(s, _)| score > s) {
            best = Some((score, c));
        }
    }
    let (_, c) = best?;
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut straddle = Vec::new();
    for &(i, b) in items {
        if hi(b, axis) < c {
            left.push((i, b));
        } else if lo(b, axis) >= c {
            right.push((i, b));
        } else {
            straddle.push((i, b));
        }
    }
    Some((left, right, straddle))
}

/// Merge two wave lists positionally. Wave `k` of `a` and wave `k` of
/// `b` came from opposite sides of a cut, so their union is still
/// pairwise disjoint.
fn zip_merge(mut a: Vec<Vec<usize>>, b: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for (k, wave) in b.into_iter().enumerate() {
        if k < a.len() {
            a[k].extend(wave);
        } else {
            a.push(wave);
        }
    }
    a
}

fn bisect(items: Vec<(usize, BBox)>, conflicts: &mut usize) -> Vec<Vec<usize>> {
    if items.len() <= 1 {
        return items.into_iter().map(|(i, _)| vec![i]).collect();
    }
    for axis in axes_by_extent(&items) {
        if let Some((left, right, straddle)) = cut(&items, axis) {
            let mut waves = zip_merge(bisect(left, conflicts), bisect(right, conflicts));
            if !straddle.is_empty() {
                // Straddlers overlap the cut line, hence possibly each
                // other and both sides: they get their own later waves
                // (recursed independently — typically the other axis
                // separates them).
                *conflicts += straddle.len();
                waves.extend(bisect(straddle, conflicts));
            }
            return waves;
        }
    }
    // Pathological clique: no cut on either axis separates anything
    // (e.g. every box overlaps a common hotspot). Serialize: one
    // singleton wave per net, which is trivially valid and terminates.
    *conflicts += items.len() - 1;
    items.into_iter().map(|(i, _)| vec![i]).collect()
}

/// A shared pool of [`MazeScratch`] spaces for one device.
///
/// Wave workers lease a scratch at spawn and return it when they finish
/// (on drop of the [`PooledScratch`] guard), so a whole negotiation run
/// allocates at most max-concurrent-workers scratches no matter how many
/// waves and iterations it executes.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<MazeScratch>>,
}

impl ScratchPool {
    /// An empty pool. Scratches are created on first lease, sized for
    /// whatever device the lease names — a pool must only ever serve one
    /// device.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// Lease a scratch for `dev`, reusing a returned one if available.
    pub fn lease(&self, dev: &Device) -> PooledScratch<'_> {
        let scratch = self
            .free
            .lock()
            .expect("scratch pool lock")
            .pop()
            .unwrap_or_else(|| MazeScratch::new(dev));
        PooledScratch {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Scratches currently sitting idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("scratch pool lock").len()
    }
}

/// A leased [`MazeScratch`]; derefs to the scratch and returns it to the
/// pool on drop.
#[derive(Debug)]
pub struct PooledScratch<'p> {
    pool: &'p ScratchPool,
    scratch: Option<MazeScratch>,
}

impl std::ops::Deref for PooledScratch<'_> {
    type Target = MazeScratch;

    fn deref(&self) -> &MazeScratch {
        self.scratch.as_ref().expect("live lease")
    }
}

impl std::ops::DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut MazeScratch {
        self.scratch.as_mut().expect("live lease")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            self.pool.free.lock().expect("scratch pool lock").push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Pin;
    use virtex::{wire, Family};

    fn bb(r0: u16, c0: u16, r1: u16, c1: u16) -> BBox {
        BBox {
            min: RowCol::new(r0, c0),
            max: RowCol::new(r1, c1),
        }
    }

    /// Every index exactly once; within a wave, pairwise disjoint.
    fn check_plan(boxes: &[BBox], plan: &WavePlan) {
        let mut seen = vec![0usize; boxes.len()];
        for wave in &plan.waves {
            for (a, &i) in wave.iter().enumerate() {
                seen[i] += 1;
                for &j in &wave[a + 1..] {
                    assert!(
                        disjoint(boxes[i], boxes[j]),
                        "wave holds overlapping boxes {i} and {j}"
                    );
                }
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "coverage: {seen:?}");
    }

    #[test]
    fn partitions_scattered_boxes_into_one_wave() {
        let boxes: Vec<BBox> = (0..8)
            .map(|i| bb(i * 10, i * 12, i * 10 + 5, i * 12 + 6))
            .collect();
        let plan = partition_waves(&boxes);
        check_plan(&boxes, &plan);
        assert_eq!(plan.waves.len(), 1, "disjoint boxes need no serialization");
        assert_eq!(plan.conflicts, 0);
        assert_eq!(plan.widest(), 8);
    }

    #[test]
    fn identical_boxes_serialize_into_singleton_waves() {
        let boxes = vec![bb(5, 5, 20, 20); 6];
        let plan = partition_waves(&boxes);
        check_plan(&boxes, &plan);
        assert_eq!(plan.waves.len(), 6, "all-overlapping boxes must serialize");
        assert_eq!(plan.conflicts, 5);
    }

    #[test]
    fn straddlers_land_in_later_waves() {
        // Two clusters plus one box spanning both: the spanner must not
        // share a wave with anything it overlaps.
        let boxes = vec![
            bb(0, 0, 4, 4),
            bb(0, 30, 4, 34),
            bb(20, 0, 24, 4),
            bb(20, 30, 24, 34),
            bb(0, 0, 24, 34),
        ];
        let plan = partition_waves(&boxes);
        check_plan(&boxes, &plan);
        assert!(plan.waves.len() >= 2);
        assert!(plan.conflicts >= 1);
    }

    #[test]
    fn empty_input_gives_empty_plan() {
        let plan = partition_waves(&[]);
        assert!(plan.waves.is_empty());
        assert_eq!(plan.conflicts, 0);
        assert_eq!(plan.widest(), 0);
    }

    #[test]
    fn search_box_matches_legacy_expansion() {
        let dims = Family::Xcv50.dims();
        let spec = NetSpec::new(
            Pin::new(4, 6, wire::S0_YQ),
            vec![Pin::new(9, 2, wire::S0_F3)],
        );
        let mut sb = SearchBox::of_spec(&spec);
        assert_eq!(sb.terminals(), bb(4, 2, 9, 6));
        let mut legacy = bb(4, 2, 9, 6);
        legacy = legacy.expand(DEFAULT_MARGIN + HEX_SPAN, dims);
        assert_eq!(sb.region(DEFAULT_MARGIN, dims), legacy);
        sb.widen(2);
        assert_eq!(sb.growth(), 2);
        assert_eq!(
            sb.region(DEFAULT_MARGIN, dims),
            bb(4, 2, 9, 6).expand(DEFAULT_MARGIN + HEX_SPAN + 2, dims)
        );
    }

    #[test]
    fn scratch_pool_reuses_returned_scratches() {
        let dev = Device::new(Family::Xcv50);
        let pool = ScratchPool::new();
        {
            let _a = pool.lease(&dev);
            let _b = pool.lease(&dev);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 2);
        let _c = pool.lease(&dev);
        assert_eq!(pool.idle(), 1, "lease reuses instead of allocating");
    }
}
