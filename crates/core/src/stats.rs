//! Router statistics and resource-usage accounting.
//!
//! The experiments (E2, E3, E8, E9) measure "routing resources used" and
//! algorithm effort; this module defines the counters the router
//! maintains and the per-class usage census.

use crate::net::NetDb;
use virtex::WireKind;

/// Cumulative router activity counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RouterStats {
    /// PIPs turned on.
    pub pips_set: usize,
    /// PIPs turned off (unrouting).
    pub pips_cleared: usize,
    /// Nets created.
    pub nets_created: usize,
    /// Maze searches run.
    pub maze_searches: usize,
    /// Total maze nodes expanded.
    pub maze_nodes_expanded: usize,
    /// Template-route attempts (user templates and predefined ones).
    pub template_attempts: usize,
    /// Template-route successes.
    pub template_successes: usize,
    /// Auto-routes that fell back from templates to the maze router.
    pub maze_fallbacks: usize,
    /// Contention errors raised (each one is a protected device, §3.4).
    pub contention_rejections: usize,
}

/// Segments in use, bucketed by resource class.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the resource classes of paper §2
pub struct ResourceUsage {
    pub outs: usize,
    pub singles: usize,
    pub hexes: usize,
    pub longs: usize,
    pub directs: usize,
    pub feedbacks: usize,
    pub clb_pins: usize,
    pub gclks: usize,
}

impl ResourceUsage {
    /// Total segments in use.
    pub fn total(&self) -> usize {
        self.outs
            + self.singles
            + self.hexes
            + self.longs
            + self.directs
            + self.feedbacks
            + self.clb_pins
            + self.gclks
    }

    /// Census over a net database.
    pub fn from_netdb(db: &NetDb) -> Self {
        let mut u = ResourceUsage::default();
        for net in db.iter() {
            u.bump(net.source.wire.kind());
            for &(rc, pip) in &net.pips {
                let _ = rc;
                u.bump(pip.to.kind());
            }
        }
        u
    }

    fn bump(&mut self, kind: WireKind) {
        match kind {
            WireKind::Out(_) => self.outs += 1,
            WireKind::Single { .. } | WireKind::SingleEnd { .. } => self.singles += 1,
            WireKind::Hex { .. } | WireKind::HexMid { .. } | WireKind::HexEnd { .. } => {
                self.hexes += 1
            }
            WireKind::LongH(_) | WireKind::LongV(_) => self.longs += 1,
            WireKind::DirectE(_) | WireKind::DirectWEnd(_) => self.directs += 1,
            WireKind::Feedback(_) => self.feedbacks += 1,
            WireKind::SliceIn { .. } | WireKind::SliceOut { .. } => self.clb_pins += 1,
            WireKind::Gclk(_) => self.gclks += 1,
        }
    }
}

impl std::fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "outs={} singles={} hexes={} longs={} directs={} feedbacks={} pins={} gclks={} (total {})",
            self.outs,
            self.singles,
            self.hexes,
            self.longs,
            self.directs,
            self.feedbacks,
            self.clb_pins,
            self.gclks,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Pin;
    use jbits::Pip;
    use virtex::{wire, Dir, RowCol, Segment};

    #[test]
    fn census_buckets_by_class() {
        let mut db = NetDb::new();
        let src = Pin::new(0, 0, wire::S0_YQ);
        let s = Segment { rc: RowCol::new(0, 0), wire: wire::S0_YQ };
        let id = db.create(src, s).unwrap();
        let rc = RowCol::new(0, 0);
        db.add_pip(
            id,
            rc,
            Pip::new(wire::S0_YQ, wire::out(3)),
            Segment { rc, wire: wire::out(3) },
        )
        .unwrap();
        db.add_pip(
            id,
            rc,
            Pip::new(wire::out(3), wire::single(Dir::East, 1)),
            Segment { rc, wire: wire::single(Dir::East, 1) },
        )
        .unwrap();
        db.add_pip(
            id,
            rc,
            Pip::new(wire::out(3), wire::hex(Dir::North, 4)),
            Segment { rc, wire: wire::hex(Dir::North, 4) },
        )
        .unwrap();
        let u = ResourceUsage::from_netdb(&db);
        assert_eq!(u.clb_pins, 1); // the source pin
        assert_eq!(u.outs, 1);
        assert_eq!(u.singles, 1);
        assert_eq!(u.hexes, 1);
        assert_eq!(u.total(), 4);
        assert!(u.to_string().contains("total 4"));
    }

    #[test]
    fn stats_default_to_zero() {
        let s = RouterStats::default();
        assert_eq!(s.pips_set, 0);
        assert_eq!(s, RouterStats::default());
    }
}
