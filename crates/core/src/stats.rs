//! Router statistics and resource-usage accounting.
//!
//! The experiments (E2, E3, E8, E9) measure "routing resources used" and
//! algorithm effort; this module defines the counters the router
//! maintains and the per-class usage census.

use crate::net::NetDb;
use jroute_obs::Report;
use virtex::WireKind;

/// Cumulative router activity counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RouterStats {
    /// PIPs turned on.
    pub pips_set: usize,
    /// PIPs turned off (unrouting).
    pub pips_cleared: usize,
    /// Nets created.
    pub nets_created: usize,
    /// Maze searches run.
    pub maze_searches: usize,
    /// Total maze nodes expanded.
    pub maze_nodes_expanded: usize,
    /// Template-route attempts (user templates and predefined ones).
    pub template_attempts: usize,
    /// Template-route successes.
    pub template_successes: usize,
    /// Auto-routes that fell back from templates to the maze router.
    pub maze_fallbacks: usize,
    /// Contention errors raised (each one is a protected device, §3.4).
    pub contention_rejections: usize,
}

impl RouterStats {
    /// Publish every counter into an observability report snapshot under
    /// the `router.` prefix. The stats are cumulative gauges, so
    /// publishing overwrites (it never double-counts across snapshots).
    pub fn publish(&self, report: &mut Report) {
        report.set_counter("router.pips_set", self.pips_set as u64);
        report.set_counter("router.pips_cleared", self.pips_cleared as u64);
        report.set_counter("router.nets_created", self.nets_created as u64);
        report.set_counter("router.maze_searches", self.maze_searches as u64);
        report.set_counter(
            "router.maze_nodes_expanded",
            self.maze_nodes_expanded as u64,
        );
        report.set_counter("router.template_attempts", self.template_attempts as u64);
        report.set_counter("router.template_successes", self.template_successes as u64);
        report.set_counter("router.maze_fallbacks", self.maze_fallbacks as u64);
        report.set_counter(
            "router.contention_rejections",
            self.contention_rejections as u64,
        );
    }
}

/// Segments in use, bucketed by resource class.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the resource classes of paper §2
pub struct ResourceUsage {
    pub outs: usize,
    pub singles: usize,
    pub hexes: usize,
    pub longs: usize,
    pub directs: usize,
    pub feedbacks: usize,
    pub clb_pins: usize,
    pub gclks: usize,
}

impl ResourceUsage {
    /// Total segments in use.
    pub fn total(&self) -> usize {
        self.outs
            + self.singles
            + self.hexes
            + self.longs
            + self.directs
            + self.feedbacks
            + self.clb_pins
            + self.gclks
    }

    /// Census over a net database: one bucket bump per owned canonical
    /// segment, straight off the dense occupancy (each segment counts
    /// once even when several of a net's branches reach it).
    pub fn from_netdb(db: &NetDb) -> Self {
        let mut u = ResourceUsage::default();
        for (seg, _) in db.iter_used() {
            u.bump(seg.wire.kind());
        }
        u
    }

    /// Per-class change from `baseline` to `self` (telemetry snapshots
    /// diff the census before/after a routing phase this way).
    pub fn diff(&self, baseline: &ResourceUsage) -> ResourceDelta {
        let d = |a: usize, b: usize| a as i64 - b as i64;
        ResourceDelta {
            outs: d(self.outs, baseline.outs),
            singles: d(self.singles, baseline.singles),
            hexes: d(self.hexes, baseline.hexes),
            longs: d(self.longs, baseline.longs),
            directs: d(self.directs, baseline.directs),
            feedbacks: d(self.feedbacks, baseline.feedbacks),
            clb_pins: d(self.clb_pins, baseline.clb_pins),
            gclks: d(self.gclks, baseline.gclks),
        }
    }

    /// Publish the census into an observability report under the
    /// `resources.` prefix.
    pub fn publish(&self, report: &mut Report) {
        report.set_counter("resources.outs", self.outs as u64);
        report.set_counter("resources.singles", self.singles as u64);
        report.set_counter("resources.hexes", self.hexes as u64);
        report.set_counter("resources.longs", self.longs as u64);
        report.set_counter("resources.directs", self.directs as u64);
        report.set_counter("resources.feedbacks", self.feedbacks as u64);
        report.set_counter("resources.clb_pins", self.clb_pins as u64);
        report.set_counter("resources.gclks", self.gclks as u64);
        report.set_counter("resources.total", self.total() as u64);
    }

    fn bump(&mut self, kind: WireKind) {
        match kind {
            WireKind::Out(_) => self.outs += 1,
            WireKind::Single { .. } | WireKind::SingleEnd { .. } => self.singles += 1,
            WireKind::Hex { .. } | WireKind::HexMid { .. } | WireKind::HexEnd { .. } => {
                self.hexes += 1
            }
            WireKind::LongH(_) | WireKind::LongV(_) => self.longs += 1,
            WireKind::DirectE(_) | WireKind::DirectWEnd(_) => self.directs += 1,
            WireKind::Feedback(_) => self.feedbacks += 1,
            WireKind::SliceIn { .. } | WireKind::SliceOut { .. } => self.clb_pins += 1,
            WireKind::Gclk(_) => self.gclks += 1,
        }
    }
}

/// Signed per-class change between two [`ResourceUsage`] censuses.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the resource classes of paper §2
pub struct ResourceDelta {
    pub outs: i64,
    pub singles: i64,
    pub hexes: i64,
    pub longs: i64,
    pub directs: i64,
    pub feedbacks: i64,
    pub clb_pins: i64,
    pub gclks: i64,
}

impl ResourceDelta {
    /// Net change in segments used.
    pub fn total(&self) -> i64 {
        self.outs
            + self.singles
            + self.hexes
            + self.longs
            + self.directs
            + self.feedbacks
            + self.clb_pins
            + self.gclks
    }

    /// Whether nothing changed.
    pub fn is_zero(&self) -> bool {
        *self == ResourceDelta::default()
    }
}

impl std::fmt::Display for ResourceDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "outs={:+} singles={:+} hexes={:+} longs={:+} directs={:+} feedbacks={:+} pins={:+} gclks={:+} (total {:+})",
            self.outs,
            self.singles,
            self.hexes,
            self.longs,
            self.directs,
            self.feedbacks,
            self.clb_pins,
            self.gclks,
            self.total()
        )
    }
}

impl std::fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "outs={} singles={} hexes={} longs={} directs={} feedbacks={} pins={} gclks={} (total {})",
            self.outs,
            self.singles,
            self.hexes,
            self.longs,
            self.directs,
            self.feedbacks,
            self.clb_pins,
            self.gclks,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Pin;
    use jbits::Pip;
    use virtex::{wire, Dir, RowCol, Segment};

    #[test]
    fn census_buckets_by_class() {
        let mut db = NetDb::new(virtex::SegSpace::new(virtex::Dims::new(16, 24)));
        let src = Pin::new(0, 0, wire::S0_YQ);
        let s = Segment {
            rc: RowCol::new(0, 0),
            wire: wire::S0_YQ,
        };
        let id = db.create(src, s).unwrap();
        let rc = RowCol::new(0, 0);
        db.add_pip(
            id,
            rc,
            Pip::new(wire::S0_YQ, wire::out(3)),
            Segment {
                rc,
                wire: wire::out(3),
            },
        )
        .unwrap();
        db.add_pip(
            id,
            rc,
            Pip::new(wire::out(3), wire::single(Dir::East, 1)),
            Segment {
                rc,
                wire: wire::single(Dir::East, 1),
            },
        )
        .unwrap();
        db.add_pip(
            id,
            rc,
            Pip::new(wire::out(3), wire::hex(Dir::North, 4)),
            Segment {
                rc,
                wire: wire::hex(Dir::North, 4),
            },
        )
        .unwrap();
        let u = ResourceUsage::from_netdb(&db);
        assert_eq!(u.clb_pins, 1); // the source pin
        assert_eq!(u.outs, 1);
        assert_eq!(u.singles, 1);
        assert_eq!(u.hexes, 1);
        assert_eq!(u.total(), 4);
        assert!(u.to_string().contains("total 4"));
    }

    #[test]
    fn stats_default_to_zero() {
        let s = RouterStats::default();
        assert_eq!(s.pips_set, 0);
        assert_eq!(s, RouterStats::default());
    }

    #[test]
    fn resource_diff_is_signed_per_class() {
        let before = ResourceUsage {
            outs: 2,
            singles: 5,
            hexes: 1,
            ..Default::default()
        };
        let after = ResourceUsage {
            outs: 3,
            singles: 2,
            hexes: 1,
            gclks: 1,
            ..Default::default()
        };
        let d = after.diff(&before);
        assert_eq!(d.outs, 1);
        assert_eq!(d.singles, -3);
        assert_eq!(d.hexes, 0);
        assert_eq!(d.gclks, 1);
        assert_eq!(d.total(), -1);
        assert!(!d.is_zero());
        assert!(after.diff(&after).is_zero());
        assert!(d.to_string().contains("singles=-3"));
        assert!(d.to_string().contains("outs=+1"));
    }

    #[test]
    fn publish_writes_cumulative_gauges_idempotently() {
        let mut rep = Report::default();
        let stats = RouterStats {
            pips_set: 7,
            ..Default::default()
        };
        stats.publish(&mut rep);
        stats.publish(&mut rep); // gauges overwrite, never accumulate
        assert_eq!(rep.counter("router.pips_set"), Some(7));
        let usage = ResourceUsage {
            hexes: 3,
            ..Default::default()
        };
        usage.publish(&mut rep);
        assert_eq!(rep.counter("resources.hexes"), Some(3));
        assert_eq!(rep.counter("resources.total"), Some(3));
    }
}
