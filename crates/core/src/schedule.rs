//! Work distribution: per-worker work-stealing deques and the
//! [`Scheduler`] abstraction the parallel router and the batch service
//! front-end (`jroute-svc`) schedule over.
//!
//! The original parallel router fanned each round's pending nets out in
//! static chunks, one per worker. Net route times vary by orders of
//! magnitude (a template hit vs. a congested maze search), so chunking
//! leaves workers idle while the unlucky one drains its tail — the
//! ROADMAP E12 "work-stealing between workers" item. [`StealDeque`] is
//! the classic owner-bottom/thief-top deque, hand-rolled over atomics in
//! safe code; [`StealScheduler`] runs one deque per worker and lets idle
//! workers steal from the top of their neighbours'.
//!
//! Tasks are plain `u64` payloads (indices into a caller-side slice, or
//! packed `attempts<<32 | index` words in the service layer). That keeps
//! every deque slot a single `AtomicU64`: no ownership moves through the
//! deque, so the whole structure needs no `unsafe` — lost races are
//! handled entirely by the compare-and-swap on `top`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Error returned by [`StealDeque::push`] when the ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DequeFull;

/// A bounded single-owner, multi-thief work-stealing deque of `u64`s.
///
/// * the **owner** pushes and pops at the *bottom* (LIFO — freshly
///   deferred work is retried last);
/// * **thieves** steal from the *top* (FIFO — the oldest work migrates,
///   which is what makes stealing fair);
/// * capacity is fixed at construction and [`push`](Self::push) fails
///   with [`DequeFull`] rather than reallocating, which doubles as the
///   service layer's bounded-queue backpressure.
///
/// This is the Chase–Lev shape restricted to a bounded ring of plain
/// `Copy` words. Rejecting pushes at `capacity` is what makes the safe
/// implementation sound: a slot at ring position `t % cap` can only be
/// overwritten by a push at `bottom = t + cap`, and such a push is
/// refused while `top` is still `t` — so a thief that read slot `t` and
/// then wins the CAS on `top` is guaranteed to have read the right
/// value, and a thief that loses the CAS discards what it read.
///
/// Ownership discipline (single pusher/popper) is by convention — every
/// operation is memory-safe regardless, but concurrent owners could
/// duplicate or lose tasks. All orderings are `SeqCst`; task words are
/// tiny and the deque is nowhere near the routing hot path (one
/// push/pop pair per *net*, against thousands of atomic claim probes).
#[derive(Debug)]
pub struct StealDeque {
    /// Next slot a thief will steal from (only ever increments).
    top: AtomicI64,
    /// Next slot the owner will push into.
    bottom: AtomicI64,
    slots: Vec<AtomicU64>,
    mask: usize,
}

impl StealDeque {
    /// A deque with room for at least `cap` tasks (rounded up to a power
    /// of two).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1).next_power_of_two();
        StealDeque {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Maximum number of tasks the deque can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Tasks currently queued. Exact for the owner; a racy lower-bound
    /// estimate for anyone else.
    #[inline]
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        b.saturating_sub(t).max(0) as usize
    }

    /// Whether the deque currently holds no tasks (see [`len`](Self::len)
    /// for the racy caveat).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-side push at the bottom. Fails when `capacity` tasks are
    /// already queued.
    pub fn push(&self, task: u64) -> Result<(), DequeFull> {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if (b - t) as usize >= self.capacity() {
            return Err(DequeFull);
        }
        self.slots[(b as usize) & self.mask].store(task, Ordering::SeqCst);
        self.bottom.store(b + 1, Ordering::SeqCst);
        Ok(())
    }

    /// Owner-side pop at the bottom (most recently pushed task first).
    pub fn pop(&self) -> Option<u64> {
        let b = self.bottom.load(Ordering::SeqCst) - 1;
        // Publish the claim on slot `b` before reading `top`: a thief
        // that loads `bottom` after this sees the shrunken deque.
        self.bottom.store(b, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t > b {
            // Deque was already empty; undo.
            self.bottom.store(b + 1, Ordering::SeqCst);
            return None;
        }
        let task = self.slots[(b as usize) & self.mask].load(Ordering::SeqCst);
        if t == b {
            // Last task: race the thieves for it via `top`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            self.bottom.store(b + 1, Ordering::SeqCst);
            return won.then_some(task);
        }
        Some(task)
    }

    /// Thief-side steal from the top (least recently pushed task first).
    /// Returns `None` when the deque is empty; retries internally on a
    /// lost race against another thief.
    pub fn steal(&self) -> Option<u64> {
        loop {
            let t = self.top.load(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::SeqCst);
            if t >= b {
                return None;
            }
            let task = self.slots[(t as usize) & self.mask].load(Ordering::SeqCst);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(task);
            }
            // Another thief (or the owner, on the last task) advanced
            // `top` first; what we read may be stale — go around.
        }
    }
}

/// Aggregate outcome of one [`Scheduler::run`] call.
#[derive(Debug)]
pub struct SchedulerRun<R> {
    /// `(task, result)` pairs, in whatever order workers finished them.
    pub results: Vec<(u64, R)>,
    /// Tasks executed on a worker other than the one they were assigned
    /// to (always 0 for [`ChunkedScheduler`]).
    pub steals: u64,
}

/// Strategy for executing a fixed batch of tasks across worker threads.
///
/// `init` runs once on each worker thread to build its private state
/// (maze scratch, obs span, …); `work` is then called for every task the
/// worker executes. Workers run under `std::thread::scope`, so both may
/// borrow from the caller's stack.
pub trait Scheduler {
    /// Execute every task in `tasks` exactly once over `threads` workers.
    fn run<S, R, IS, W>(&self, threads: usize, tasks: &[u64], init: IS, work: W) -> SchedulerRun<R>
    where
        R: Send,
        S: Send,
        IS: Fn(usize) -> S + Sync,
        W: Fn(&mut S, u64) -> R + Sync;
}

/// Static assignment: task list split into `threads` contiguous chunks,
/// one per worker. No coordination after spawn — and no help for a
/// worker whose chunk happens to hold all the slow tasks.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkedScheduler;

impl Scheduler for ChunkedScheduler {
    fn run<S, R, IS, W>(&self, threads: usize, tasks: &[u64], init: IS, work: W) -> SchedulerRun<R>
    where
        R: Send,
        S: Send,
        IS: Fn(usize) -> S + Sync,
        W: Fn(&mut S, u64) -> R + Sync,
    {
        let threads = threads.max(1);
        let chunk = tasks.len().div_ceil(threads).max(1);
        let mut results = Vec::with_capacity(tasks.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, part) in tasks.chunks(chunk).enumerate() {
                let (init, work) = (&init, &work);
                handles.push(scope.spawn(move || {
                    let mut state = init(w);
                    part.iter()
                        .map(|&task| (task, work(&mut state, task)))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                results.extend(h.join().expect("scheduler worker panicked"));
            }
        });
        SchedulerRun { results, steals: 0 }
    }
}

/// Work-stealing assignment: tasks are striped across one [`StealDeque`]
/// per worker; each worker drains its own deque bottom-first and, when
/// empty, sweeps its neighbours' tops. A worker exits once every deque is
/// empty — no new tasks appear during a run, so an empty sweep is a
/// proof of completion.
#[derive(Debug, Clone, Copy, Default)]
pub struct StealScheduler;

impl Scheduler for StealScheduler {
    fn run<S, R, IS, W>(&self, threads: usize, tasks: &[u64], init: IS, work: W) -> SchedulerRun<R>
    where
        R: Send,
        S: Send,
        IS: Fn(usize) -> S + Sync,
        W: Fn(&mut S, u64) -> R + Sync,
    {
        let threads = threads.max(1).min(tasks.len().max(1));
        let deques: Vec<StealDeque> = (0..threads)
            .map(|_| StealDeque::with_capacity(tasks.len().div_ceil(threads)))
            .collect();
        // Striped preload: task k on deque k % threads. Thieves steal
        // top-first, so the stripe order is also each deque's FIFO order.
        for (k, &task) in tasks.iter().enumerate() {
            deques[k % threads].push(task).expect("preload fits");
        }
        let mut results = Vec::with_capacity(tasks.len());
        let mut steals = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..threads {
                let (init, work, deques) = (&init, &work, &deques);
                handles.push(scope.spawn(move || {
                    let mut state = init(w);
                    let mut out = Vec::new();
                    let mut stolen = 0u64;
                    loop {
                        let task = deques[w].pop().or_else(|| {
                            (1..threads).find_map(|off| {
                                let t = deques[(w + off) % threads].steal();
                                stolen += u64::from(t.is_some());
                                t
                            })
                        });
                        match task {
                            Some(task) => out.push((task, work(&mut state, task))),
                            None => break,
                        }
                    }
                    (out, stolen)
                }));
            }
            for h in handles {
                let (out, stolen) = h.join().expect("scheduler worker panicked");
                results.extend(out);
                steals += stolen;
            }
        });
        SchedulerRun { results, steals }
    }
}

/// Scheduler selection for [`crate::parallel::ParallelConfig`] and the
/// service layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Static contiguous chunks ([`ChunkedScheduler`]).
    Chunked,
    /// Per-worker deques with stealing ([`StealScheduler`]) — the
    /// default.
    #[default]
    WorkStealing,
}

impl SchedulerKind {
    /// Dispatch to the selected scheduler implementation.
    pub fn run<S, R, IS, W>(
        self,
        threads: usize,
        tasks: &[u64],
        init: IS,
        work: W,
    ) -> SchedulerRun<R>
    where
        R: Send,
        S: Send,
        IS: Fn(usize) -> S + Sync,
        W: Fn(&mut S, u64) -> R + Sync,
    {
        match self {
            SchedulerKind::Chunked => ChunkedScheduler.run(threads, tasks, init, work),
            SchedulerKind::WorkStealing => StealScheduler.run(threads, tasks, init, work),
        }
    }
}

/// Wave-barrier dispatch: how the unified negotiated router executes
/// one conflict-free wave of net searches.
///
/// A wave's tasks are mutually independent by construction (their
/// search boxes are disjoint), so *what* they compute never depends on
/// the schedule — only wall clock does. `run_wave` exploits that:
/// results always come back sorted in task-submission order (the commit
/// barrier wants a fixed order), tiny waves and `threads == 1` execute
/// inline on the calling thread with zero spawn cost, and
/// [`WaveExec::deterministic`] forces the inline path even for large
/// waves, giving the service's deterministic mode a replayable
/// single-consumer schedule (identical results, identical telemetry
/// interleaving).
#[derive(Debug, Clone, Copy)]
pub struct WaveExec {
    /// Worker threads available to a wave (clamped to the wave size).
    pub threads: usize,
    /// How a threaded wave's tasks are spread over the workers.
    pub scheduler: SchedulerKind,
    /// Execute every wave inline in task order on the calling thread,
    /// regardless of `threads`.
    pub deterministic: bool,
}

impl WaveExec {
    /// Execute one wave. `tasks` must be distinct. Results are returned
    /// in task-submission order whichever path ran.
    pub fn run_wave<S, R, IS, W>(&self, tasks: &[u64], init: IS, work: W) -> SchedulerRun<R>
    where
        R: Send,
        S: Send,
        IS: Fn(usize) -> S + Sync,
        W: Fn(&mut S, u64) -> R + Sync,
    {
        if self.deterministic || self.threads <= 1 || tasks.len() <= 1 {
            let mut state = init(0);
            return SchedulerRun {
                results: tasks.iter().map(|&t| (t, work(&mut state, t))).collect(),
                steals: 0,
            };
        }
        let mut run = self.scheduler.run(self.threads, tasks, init, work);
        let order: std::collections::HashMap<u64, usize> =
            tasks.iter().enumerate().map(|(k, &t)| (t, k)).collect();
        run.results.sort_by_key(|(t, _)| order[t]);
        run
    }
}

/// A shared pool of worker threads divided among concurrent batch
/// executors.
///
/// The multi-tenant service front-end (`jroute-svc::server`) runs one
/// routing executor per tenant, each of which would happily spin up its
/// own full-width worker set — oversubscribing the machine by the tenant
/// count. A `ThreadBudget` caps the *sum* of concurrently leased workers
/// at `total`: each executor takes a [`ThreadLease`] for the duration of
/// one batch and sizes its scheduler to the granted width.
///
/// Grants never block and never return zero: when the pool is
/// oversubscribed a lease is clamped down, but always to at least one
/// worker, so every tenant keeps making progress (liveness over
/// fairness). Because of that floor the in-flight sum may transiently
/// exceed `total` under heavy contention — the budget is a throttle, not
/// a hard mutex.
#[derive(Debug)]
pub struct ThreadBudget {
    total: usize,
    used: AtomicU64,
}

impl ThreadBudget {
    /// A budget of `total` workers (clamped to at least 1).
    pub fn new(total: usize) -> Self {
        ThreadBudget {
            total: total.max(1),
            used: AtomicU64::new(0),
        }
    }

    /// The configured pool width.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Workers currently out on leases (racy snapshot).
    #[inline]
    pub fn in_use(&self) -> usize {
        self.used.load(Ordering::SeqCst) as usize
    }

    /// Lease up to `want` workers. The grant is
    /// `clamp(total - in_use, 1, want)`: full width while the pool is
    /// idle, shrinking as siblings hold leases, never below one. The
    /// grant is returned to the pool when the [`ThreadLease`] drops.
    pub fn lease(self: &std::sync::Arc<Self>, want: usize) -> ThreadLease {
        let want = want.max(1);
        let granted = loop {
            let used = self.used.load(Ordering::SeqCst);
            let free = self.total.saturating_sub(used as usize);
            let grant = free.clamp(1, want) as u64;
            if self
                .used
                .compare_exchange(used, used + grant, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break grant as usize;
            }
        };
        ThreadLease {
            budget: std::sync::Arc::clone(self),
            granted,
        }
    }
}

/// RAII grant from a [`ThreadBudget`]; the granted width flows back to
/// the pool on drop.
#[derive(Debug)]
pub struct ThreadLease {
    budget: std::sync::Arc<ThreadBudget>,
    granted: usize,
}

impl ThreadLease {
    /// Number of workers this lease grants (always ≥ 1).
    #[inline]
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for ThreadLease {
    fn drop(&mut self) {
        self.budget
            .used
            .fetch_sub(self.granted as u64, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn deque_is_lifo_for_owner_fifo_for_thief() {
        let d = StealDeque::with_capacity(8);
        for v in [10, 20, 30] {
            d.push(v).unwrap();
        }
        assert_eq!(d.len(), 3);
        assert_eq!(d.steal(), Some(10), "thief takes the oldest");
        assert_eq!(d.pop(), Some(30), "owner takes the newest");
        assert_eq!(d.pop(), Some(20));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn deque_rejects_push_beyond_capacity() {
        let d = StealDeque::with_capacity(3); // rounds up to 4
        assert_eq!(d.capacity(), 4);
        for v in 0..4 {
            d.push(v).unwrap();
        }
        assert_eq!(d.push(99), Err(DequeFull));
        assert_eq!(d.steal(), Some(0));
        d.push(99).unwrap(); // freed one slot
    }

    #[test]
    fn deque_survives_concurrent_thieves() {
        let n = 10_000u64;
        let d = StealDeque::with_capacity(n as usize);
        for v in 0..n {
            d.push(v).unwrap();
        }
        let taken = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    while let Some(v) = d.steal() {
                        local.push(v);
                    }
                    taken.lock().unwrap().extend(local);
                });
            }
            // The owner fights for the same tasks from the other end.
            let mut local = Vec::new();
            while let Some(v) = d.pop() {
                local.push(v);
            }
            taken.lock().unwrap().extend(local);
        });
        let mut got = taken.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>(), "each task exactly once");
    }

    fn exercise(kind: SchedulerKind, threads: usize, n: u64) {
        let tasks: Vec<u64> = (0..n).collect();
        let run = kind.run(
            threads,
            &tasks,
            |w| w,
            |&mut w, task| {
                assert!(w < threads.max(1));
                task * 2
            },
        );
        assert_eq!(run.results.len(), tasks.len());
        let ids: HashSet<u64> = run.results.iter().map(|&(t, _)| t).collect();
        assert_eq!(ids.len(), tasks.len(), "every task ran exactly once");
        assert!(run.results.iter().all(|&(t, r)| r == t * 2));
    }

    #[test]
    fn both_schedulers_run_every_task_once() {
        for kind in [SchedulerKind::Chunked, SchedulerKind::WorkStealing] {
            for threads in [1, 3, 8] {
                exercise(kind, threads, 100);
            }
        }
    }

    #[test]
    fn schedulers_handle_empty_and_tiny_batches() {
        for kind in [SchedulerKind::Chunked, SchedulerKind::WorkStealing] {
            exercise(kind, 4, 0);
            exercise(kind, 4, 1);
            exercise(kind, 1, 5);
        }
    }

    #[test]
    fn run_wave_returns_results_in_task_order() {
        let tasks: Vec<u64> = [9u64, 3, 7, 1, 5, 0, 8, 2, 6, 4].to_vec();
        for (threads, deterministic) in [(1, false), (4, false), (4, true)] {
            let exec = WaveExec {
                threads,
                scheduler: SchedulerKind::default(),
                deterministic,
            };
            let run = exec.run_wave(
                &tasks,
                |_| (),
                |_, t| {
                    if t % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    t * 10
                },
            );
            let got: Vec<(u64, u64)> = run.results;
            let want: Vec<(u64, u64)> = tasks.iter().map(|&t| (t, t * 10)).collect();
            assert_eq!(got, want, "threads={threads} det={deterministic}");
        }
    }

    #[test]
    fn thread_budget_grants_shrink_under_load_and_recover() {
        let budget = std::sync::Arc::new(ThreadBudget::new(8));
        assert_eq!(budget.total(), 8);
        let a = budget.lease(8);
        assert_eq!(a.granted(), 8, "idle pool grants full width");
        let b = budget.lease(4);
        assert_eq!(b.granted(), 1, "exhausted pool still grants one");
        drop(a);
        let c = budget.lease(4);
        assert_eq!(c.granted(), 4, "released width is reusable");
        let d = budget.lease(8);
        assert_eq!(d.granted(), 3, "partial pool grants the remainder");
        drop(b);
        drop(c);
        drop(d);
        assert_eq!(budget.in_use(), 0, "all leases returned");
        assert_eq!(budget.lease(3).granted(), 3);
    }

    #[test]
    fn thread_budget_never_grants_zero() {
        let budget = std::sync::Arc::new(ThreadBudget::new(1));
        let held: Vec<ThreadLease> = (0..5).map(|_| budget.lease(4)).collect();
        assert!(held.iter().all(|l| l.granted() >= 1));
        assert_eq!(budget.lease(0).granted(), 1, "want is floored at one");
    }

    #[test]
    fn stealing_rebalances_a_skewed_batch() {
        // Worker 0's stripe holds all the slow tasks; with stealing the
        // other workers must take some of them.
        let tasks: Vec<u64> = (0..32).collect();
        let executed_by = Mutex::new(vec![0usize; 32]);
        let run = StealScheduler.run(
            4,
            &tasks,
            |w| w,
            |&mut w, task| {
                if task % 4 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                executed_by.lock().unwrap()[task as usize] = w;
                task
            },
        );
        assert_eq!(run.results.len(), 32);
        assert!(
            run.steals > 0,
            "a 4x-skewed batch must trigger at least one steal"
        );
    }
}
