//! Ports: virtual pins for core-based design (paper §3.2).
//!
//! *"With JRoute, a core can define ports. Ports are virtual pins that
//! provide input or output points to the core. ... The core can define a
//! connection from internal pins to ports. It can also specify
//! connections from ports of internal cores to its own ports."*
//!
//! A port therefore binds to a list of *targets*, each either a physical
//! pin or another port (hierarchy); resolution flattens the chain to
//! physical pins. The paper's routing guidelines are enforced here:
//! every port belongs to a named *group* (*"each port needs to be in a
//! group ... The group can be of any size greater than zero"*), and
//! [`PortDb::get_ports`] is the paper's per-group `getPorts()`.

use crate::endpoint::{EndPoint, Pin, PortId};
use crate::error::{Result, RouteError};

/// Direction of a port relative to its core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// The core drives this port.
    Output,
    /// The core consumes this port.
    Input,
}

/// A registered port.
#[derive(Debug, Clone)]
pub struct Port {
    /// Human-readable name (unique within its group by convention).
    pub name: String,
    /// Group name; `getPorts(group)` returns all ports of a group.
    pub group: String,
    /// Direction relative to the defining core.
    pub dir: PortDir,
    /// Bound targets: physical pins and/or inner ports.
    pub targets: Vec<EndPoint>,
}

/// Registry of ports known to a router.
#[derive(Debug, Default)]
pub struct PortDb {
    ports: Vec<Port>,
}

impl PortDb {
    /// Empty port registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a port. Targets may be added/changed later via
    /// [`PortDb::rebind`] (core replacement, §3.3).
    pub fn define(
        &mut self,
        name: impl Into<String>,
        group: impl Into<String>,
        dir: PortDir,
        targets: Vec<EndPoint>,
    ) -> PortId {
        let id = PortId(self.ports.len() as u32);
        self.ports.push(Port {
            name: name.into(),
            group: group.into(),
            dir,
            targets,
        });
        id
    }

    /// Look up a port.
    pub fn port(&self, id: PortId) -> Option<&Port> {
        self.ports.get(id.0 as usize)
    }

    /// The paper's `getPorts()`: every port of a group, in definition
    /// order (bit order for buses).
    pub fn get_ports(&self, group: &str) -> Vec<PortId> {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.group == group)
            .map(|(i, _)| PortId(i as u32))
            .collect()
    }

    /// Rebind a port to new targets (e.g. after replacing the core it
    /// belongs to). Returns the old targets.
    pub fn rebind(&mut self, id: PortId, targets: Vec<EndPoint>) -> Result<Vec<EndPoint>> {
        let port = self
            .ports
            .get_mut(id.0 as usize)
            .ok_or(RouteError::UnboundPort { port: id.0 })?;
        Ok(std::mem::replace(&mut port.targets, targets))
    }

    /// Detach a port from its targets (core removed). Returns the old
    /// targets.
    pub fn unbind(&mut self, id: PortId) -> Result<Vec<EndPoint>> {
        self.rebind(id, Vec::new())
    }

    /// Flatten an endpoint to physical pins. *"The router knows about
    /// ports and when one is encountered, it translates it to the
    /// corresponding list of pins."* (§3.2)
    ///
    /// Fails on unbound ports, unknown port ids, or port cycles.
    pub fn resolve(&self, ep: &EndPoint, out: &mut Vec<Pin>) -> Result<()> {
        let mut visiting = Vec::new();
        self.resolve_inner(ep, out, &mut visiting)
    }

    fn resolve_inner(
        &self,
        ep: &EndPoint,
        out: &mut Vec<Pin>,
        visiting: &mut Vec<PortId>,
    ) -> Result<()> {
        match ep {
            EndPoint::Pin(p) => {
                out.push(*p);
                Ok(())
            }
            EndPoint::Port(id) => {
                if visiting.contains(id) {
                    // A port bound (transitively) to itself can never
                    // resolve to hardware.
                    return Err(RouteError::UnboundPort { port: id.0 });
                }
                let port = self
                    .port(*id)
                    .ok_or(RouteError::UnboundPort { port: id.0 })?;
                if port.targets.is_empty() {
                    return Err(RouteError::UnboundPort { port: id.0 });
                }
                visiting.push(*id);
                for t in &port.targets {
                    self.resolve_inner(t, out, visiting)?;
                }
                visiting.pop();
                Ok(())
            }
        }
    }

    /// Number of registered ports.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// Whether no ports are registered.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::wire;

    #[test]
    fn groups_collect_ports_in_bit_order() {
        let mut db = PortDb::new();
        let mut ids = Vec::new();
        for bit in 0..4 {
            ids.push(db.define(
                format!("sum[{bit}]"),
                "sum",
                PortDir::Output,
                vec![Pin::new(0, bit, wire::S0_YQ).into()],
            ));
        }
        db.define(
            "cin",
            "carry",
            PortDir::Input,
            vec![Pin::new(0, 0, wire::S0_F3).into()],
        );
        assert_eq!(db.get_ports("sum"), ids);
        assert_eq!(db.get_ports("carry").len(), 1);
        assert!(db.get_ports("nope").is_empty());
        assert_eq!(db.len(), 5);
    }

    #[test]
    fn resolve_flattens_port_hierarchies() {
        // Inner core port -> outer core port, as §3.2 describes.
        let mut db = PortDb::new();
        let inner = db.define(
            "q",
            "inner",
            PortDir::Output,
            vec![Pin::new(2, 3, wire::S1_YQ).into()],
        );
        let outer = db.define("out", "outer", PortDir::Output, vec![inner.into()]);
        let mut pins = Vec::new();
        db.resolve(&outer.into(), &mut pins).unwrap();
        assert_eq!(pins, vec![Pin::new(2, 3, wire::S1_YQ)]);
    }

    #[test]
    fn unbound_and_cyclic_ports_fail() {
        let mut db = PortDb::new();
        let a = db.define("a", "g", PortDir::Input, vec![]);
        let mut pins = Vec::new();
        assert!(matches!(
            db.resolve(&a.into(), &mut pins),
            Err(RouteError::UnboundPort { .. })
        ));
        // Bind a to b and b to a: cycle.
        let b = db.define("b", "g", PortDir::Input, vec![a.into()]);
        db.rebind(a, vec![b.into()]).unwrap();
        assert!(db.resolve(&a.into(), &mut pins).is_err());
        // Unknown id.
        assert!(db.resolve(&PortId(99).into(), &mut pins).is_err());
    }

    #[test]
    fn rebind_swaps_targets_for_core_replacement() {
        let mut db = PortDb::new();
        let p = db.define(
            "d",
            "g",
            PortDir::Input,
            vec![Pin::new(0, 0, wire::S0_F3).into()],
        );
        let old = db
            .rebind(p, vec![Pin::new(9, 9, wire::S0_F3).into()])
            .unwrap();
        assert_eq!(old, vec![EndPoint::Pin(Pin::new(0, 0, wire::S0_F3))]);
        let mut pins = Vec::new();
        db.resolve(&p.into(), &mut pins).unwrap();
        assert_eq!(pins, vec![Pin::new(9, 9, wire::S0_F3)]);
        let old = db.unbind(p).unwrap();
        assert_eq!(old.len(), 1);
        assert!(db.resolve(&p.into(), &mut pins).is_err());
    }
}
