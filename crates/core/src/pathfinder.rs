//! PathFinder-style negotiated-congestion router: the "traditional"
//! baseline.
//!
//! The paper contrasts its greedy auto-router with conventional CAD
//! routers: *"In an RTR environment traditional routing algorithms
//! require too much time"* (§3.1), and cites the routability-driven
//! router of Swartz/Betz/Rose [6] as future work (§6). Experiment E8
//! measures that trade-off: this module implements the classic
//! negotiated-congestion scheme (PathFinder, as used by [6] and VPR) over
//! our segment graph.
//!
//! The algorithm routes every net allowing resource overuse, then
//! iterates: shared segments become increasingly expensive (present
//! congestion × a growing factor, plus an accumulated history term) until
//! every segment has at most one net, or the iteration budget runs out.

use crate::endpoint::Pin;
use crate::error::{Result, RouteError};
use crate::maze::{self, MazeConfig, MazeScratch};
use jbits::{Bitstream, Pip};
use jroute_obs::Recorder;
use virtex::{Device, RowCol, SegIdx, SegSpace, SegVec, Segment, StampedSegVec};

/// Dense per-segment congestion state that persists across rip-up
/// iterations.
///
/// PathFinder's accounting step used to rescan the whole segment space
/// every iteration; since only segments whose occupancy changed (or that
/// were already overused) can need a history bump, this tracks a touched
/// set and walks `prev overused ∪ touched` instead — work proportional
/// to routing activity, not device size (ROADMAP E9/E10).
#[derive(Debug)]
struct Congestion {
    /// Nets currently occupying each segment.
    present: SegVec<u16>,
    /// Accumulated history cost (grows while a segment stays overused).
    history: SegVec<u32>,
    /// Segments overused at the last [`Congestion::account`] call.
    overused: Vec<SegIdx>,
    /// Segments whose occupancy changed since the last account.
    touched: Vec<SegIdx>,
    /// Dedup marker for `touched` (O(1) epoch reset per iteration).
    touched_mark: StampedSegVec<()>,
}

impl Congestion {
    fn new(space: SegSpace) -> Self {
        Congestion {
            present: SegVec::new(space, 0),
            history: SegVec::new(space, 0),
            overused: Vec::new(),
            touched: Vec::new(),
            touched_mark: StampedSegVec::new(space),
        }
    }

    fn touch(&mut self, idx: SegIdx) {
        if self.touched_mark.set_once(idx, ()) {
            self.touched.push(idx);
        }
    }

    fn occupy(&mut self, idx: SegIdx) {
        self.present[idx] += 1;
        self.touch(idx);
    }

    fn release(&mut self, idx: SegIdx) {
        self.present[idx] -= 1;
        self.touch(idx);
    }

    fn cost(&self, idx: SegIdx, pres_fac: u32) -> u32 {
        self.history[idx] + self.present[idx] as u32 * pres_fac
    }

    /// End-of-iteration accounting: bump history on every overused
    /// segment and return how many there are. Only segments that were
    /// overused last round or touched since can qualify, so only those
    /// are visited.
    fn account(&mut self, hist_cost: u32) -> usize {
        for &idx in &self.overused {
            if !self.touched_mark.is_set(idx) {
                self.touched.push(idx);
            }
        }
        let mut still = Vec::new();
        for &idx in &self.touched {
            if self.present[idx] > 1 {
                self.history[idx] += hist_cost;
                still.push(idx);
            }
        }
        self.overused = still;
        self.touched.clear();
        self.touched_mark.clear();
        self.overused.len()
    }
}

/// One net to route: a source pin and its sinks.
#[derive(Debug, Clone)]
pub struct NetSpec {
    /// Driving pin.
    pub source: Pin,
    /// Pins to reach.
    pub sinks: Vec<Pin>,
}

impl NetSpec {
    /// Net from `source` to `sinks`.
    pub fn new(source: Pin, sinks: impl Into<Vec<Pin>>) -> Self {
        NetSpec {
            source,
            sinks: sinks.into(),
        }
    }
}

/// PathFinder tuning parameters.
#[derive(Debug, Clone)]
pub struct PathFinderConfig {
    /// Maximum rip-up/re-route iterations before giving up.
    pub max_iterations: usize,
    /// Initial present-congestion factor.
    pub pres_fac: u32,
    /// Multiplier applied to `pres_fac` each iteration.
    pub pres_growth: u32,
    /// History cost added per iteration a segment stays overused.
    pub hist_cost: u32,
    /// Maze options (long lines, node budget).
    pub maze: MazeConfig,
}

impl Default for PathFinderConfig {
    fn default() -> Self {
        PathFinderConfig {
            max_iterations: 30,
            pres_fac: 4,
            pres_growth: 2,
            hist_cost: 2,
            maze: MazeConfig::default(),
        }
    }
}

/// A routed net produced by the negotiated router.
#[derive(Debug, Clone)]
pub struct RoutedNet {
    /// The net as requested.
    pub spec: NetSpec,
    /// PIPs in configuration order.
    pub pips: Vec<(RowCol, Pip)>,
    /// Segments used (for occupancy accounting).
    pub segments: Vec<Segment>,
}

/// Outcome of a negotiated-congestion routing run.
#[derive(Debug)]
pub struct PathFinderResult {
    /// Successfully routed nets (all of them, when `legal`).
    pub nets: Vec<RoutedNet>,
    /// Whether the final state is overuse-free.
    pub legal: bool,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Total maze nodes expanded (effort metric for E8).
    pub nodes_expanded: usize,
    /// Segments still overused when the budget ran out.
    pub overused: usize,
}

/// Route `specs` with negotiated congestion.
pub fn route_all(
    dev: &Device,
    specs: &[NetSpec],
    cfg: &PathFinderConfig,
) -> Result<PathFinderResult> {
    route_all_obs(dev, specs, cfg, &Recorder::disabled())
}

/// [`route_all`] with observability: emits a `pathfinder.route_all` span,
/// per-iteration `pathfinder.overused` events (the congestion curve), a
/// `pathfinder.converged` event on success, and per-search maze metrics.
pub fn route_all_obs(
    dev: &Device,
    specs: &[NetSpec],
    cfg: &PathFinderConfig,
    obs: &Recorder,
) -> Result<PathFinderResult> {
    let mut span = obs.span("pathfinder.route_all");
    span.note(specs.len() as u64);
    let space = dev.seg_space();
    let mut cong = Congestion::new(space);
    let mut scratch = MazeScratch::new(dev);
    let mut routes: Vec<Option<RoutedNet>> = vec![None; specs.len()];
    let mut pres_fac = cfg.pres_fac;
    let mut nodes_expanded = 0usize;

    let mut iterations = 0usize;
    for iter in 0..cfg.max_iterations {
        iterations = iter + 1;
        obs.count("pathfinder.iterations", 1);
        let mut any_failure = false;
        for (i, spec) in specs.iter().enumerate() {
            // Rip up the previous route of this net.
            if let Some(old) = routes[i].take() {
                obs.count("pathfinder.ripups", 1);
                for seg in &old.segments {
                    cong.release(space.index(*seg));
                }
            }
            // Re-route, sink by sink, reusing the tree.
            let src_seg = dev.canonicalize(spec.source.rc, spec.source.wire).ok_or(
                RouteError::NoSuchWire {
                    rc: spec.source.rc,
                    wire: spec.source.wire,
                },
            )?;
            let mut net = RoutedNet {
                spec: spec.clone(),
                pips: Vec::new(),
                segments: Vec::new(),
            };
            let mut starts = vec![(src_seg, 0u32)];
            let mut failed = false;
            for sink in &spec.sinks {
                let goal = dev
                    .canonicalize(sink.rc, sink.wire)
                    .ok_or(RouteError::NoSuchWire {
                        rc: sink.rc,
                        wire: sink.wire,
                    })?;
                let result = maze::search_obs(
                    dev,
                    &starts,
                    goal,
                    &cfg.maze,
                    |_| false, // overuse allowed; congestion is priced
                    |seg| cong.cost(space.index(seg), pres_fac),
                    &mut scratch,
                    obs,
                );
                let Some(r) = result else {
                    failed = true;
                    break;
                };
                nodes_expanded += r.nodes_expanded;
                for seg in &r.segments {
                    starts.push((*seg, 0));
                    net.segments.push(*seg);
                }
                net.pips.extend_from_slice(&r.pips);
            }
            if failed {
                // Node budget exhausted — leave unrouted this iteration;
                // congestion relief may fix it next round.
                any_failure = true;
                continue;
            }
            for seg in &net.segments {
                cong.occupy(space.index(*seg));
            }
            routes[i] = Some(net);
        }

        // Congestion accounting over prev-overused ∪ touched only.
        let overused = cong.account(cfg.hist_cost);
        obs.event("pathfinder.overused", overused as u64);
        obs.record("pathfinder.iter_overuse", overused as u64);
        if overused == 0 && !any_failure && routes.iter().all(|r| r.is_some()) {
            obs.event("pathfinder.converged", iterations as u64);
            let nets = routes.into_iter().map(|r| r.expect("all routed")).collect();
            return Ok(PathFinderResult {
                nets,
                legal: true,
                iterations,
                nodes_expanded,
                overused: 0,
            });
        }
        pres_fac = pres_fac.saturating_mul(cfg.pres_growth);
    }

    // `account` ran at the end of the final iteration, so the residual
    // overuse is exactly the surviving overused set.
    let overused = cong.overused.len();
    obs.count("pathfinder.budget_exhausted", 1);
    let nets = routes.into_iter().flatten().collect();
    Ok(PathFinderResult {
        nets,
        legal: false,
        iterations,
        nodes_expanded,
        overused,
    })
}

/// Program a legal PathFinder result into a bitstream.
///
/// Returns an error if the result is not legal (overuse would configure
/// contention).
pub fn apply(result: &PathFinderResult, bits: &mut Bitstream) -> Result<()> {
    if !result.legal {
        return Err(RouteError::Contention {
            segment: Segment {
                rc: RowCol::new(0, 0),
                wire: virtex::Wire(0),
            },
            owner: None,
        });
    }
    for net in &result.nets {
        for &(rc, pip) in &net.pips {
            bits.set_pip(rc, pip.from, pip.to)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Device, Family};

    fn dev() -> Device {
        Device::new(Family::Xcv50)
    }

    #[test]
    fn routes_disjoint_nets_in_one_iteration() {
        let dev = dev();
        let specs: Vec<NetSpec> = (0..4)
            .map(|i| {
                NetSpec::new(
                    Pin::new(2 + 3 * i, 2, wire::S0_YQ),
                    vec![Pin::new(2 + 3 * i, 8, wire::S0_F3)],
                )
            })
            .collect();
        let r = route_all(&dev, &specs, &PathFinderConfig::default()).unwrap();
        assert!(r.legal);
        assert_eq!(r.nets.len(), 4);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn negotiates_contending_nets_apart() {
        let dev = dev();
        // Several nets squeezed through the same neighbourhood: they must
        // negotiate distinct resources.
        let specs: Vec<NetSpec> = (0..6)
            .map(|i| {
                NetSpec::new(
                    Pin::new(8, 8, wire::slice_out(i % 2, (i / 2 % 4) as u8)),
                    vec![Pin::new(10, 10, wire::slice_in(i % 2, (i % 13) as u8))],
                )
            })
            .collect();
        let r = route_all(&dev, &specs, &PathFinderConfig::default()).unwrap();
        assert!(r.legal, "negotiation should resolve local congestion");
        // No segment shared between different nets.
        let mut seen = std::collections::HashMap::new();
        for (i, net) in r.nets.iter().enumerate() {
            for seg in &net.segments {
                if let Some(prev) = seen.insert(*seg, i) {
                    panic!("segment {seg} shared by nets {prev} and {i}");
                }
            }
        }
    }

    #[test]
    fn legal_result_applies_to_bitstream_without_contention() {
        let dev = dev();
        let specs: Vec<NetSpec> = (0..3)
            .map(|i| {
                NetSpec::new(
                    Pin::new(4, 4 + i, wire::S1_YQ),
                    vec![
                        Pin::new(6, 6 + i, wire::S0_F3),
                        Pin::new(7, 4 + i, wire::S1_F1),
                    ],
                )
            })
            .collect();
        let r = route_all(&dev, &specs, &PathFinderConfig::default()).unwrap();
        assert!(r.legal);
        let mut bits = Bitstream::new(&dev);
        apply(&r, &mut bits).unwrap();
        // Every segment has at most one driver.
        for net in &r.nets {
            for seg in &net.segments {
                assert!(bits.segment_drivers(*seg).len() <= 1, "contention on {seg}");
            }
        }
    }

    #[test]
    fn illegal_results_refuse_to_apply() {
        let dev = dev();
        let r = PathFinderResult {
            nets: vec![],
            legal: false,
            iterations: 0,
            nodes_expanded: 0,
            overused: 1,
        };
        let mut bits = Bitstream::new(&dev);
        assert!(apply(&r, &mut bits).is_err());
    }
}
