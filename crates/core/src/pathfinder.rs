//! PathFinder-style negotiated-congestion router: the "traditional"
//! baseline.
//!
//! The paper contrasts its greedy auto-router with conventional CAD
//! routers: *"In an RTR environment traditional routing algorithms
//! require too much time"* (§3.1), and cites the routability-driven
//! router of Swartz/Betz/Rose [6] as future work (§6). Experiment E8
//! measures that trade-off: this module implements the classic
//! negotiated-congestion scheme (PathFinder, as used by [6] and VPR) over
//! our segment graph.
//!
//! The algorithm routes every net allowing resource overuse, then
//! iterates: shared segments become increasingly expensive (present
//! congestion × a growing factor, plus an accumulated history term) until
//! every segment has at most one net, or the iteration budget runs out.
//!
//! Iterations after the first are *incremental*: only nets whose route
//! touches an overused segment (or that failed last round) are ripped up
//! and rerouted; converged nets stay put with their occupancy priced
//! into everyone else's searches. Combined with per-net bounding-box
//! region pruning and the admissible distance lookahead in
//! [`maze`], late iterations cost time proportional to the surviving
//! congestion, not to the design (ROADMAP E9/E10; cf. the hotspot-aware
//! incremental rerouting of arXiv:2407.00009).

use crate::endpoint::Pin;
use crate::error::{Result, RouteError};
use crate::maze::{self, MazeConfig, MazeScratch, CRIT_ONE};
use crate::partition::{self, ScratchPool, SearchBox};
use crate::schedule::{SchedulerKind, WaveExec};
use crate::steiner;
use jbits::{Bitstream, Pip};
use jroute_obs::{Counter, Recorder};
use std::collections::HashMap;
use virtex::delay::{wire_delay_ps, PIP_DELAY_PS};
use virtex::wire::HEX_SPAN;
use virtex::{BBox, Device, RowCol, SegIdx, SegSpace, SegVec, Segment, StampedSegVec};

/// Dense per-segment congestion state that persists across rip-up
/// iterations.
///
/// PathFinder's accounting step used to rescan the whole segment space
/// every iteration; since only segments whose occupancy changed (or that
/// were already overused) can need a history bump, this tracks a touched
/// set and walks `prev overused ∪ touched` instead — work proportional
/// to routing activity, not device size (ROADMAP E9/E10).
///
/// It also maintains the reverse overused-segment → nets index that
/// drives incremental rip-up: the first occupant of every segment lives
/// in a dense word (`owner`, net id + 1, zero = free) and only the
/// occupants *beyond* the first — which exist exactly on shared,
/// i.e. overused, segments — spill into a side table. Memory stays one
/// word per segment no matter how large the device.
#[derive(Debug)]
struct Congestion {
    /// Nets currently occupying each segment.
    present: SegVec<u16>,
    /// Accumulated history cost (grows while a segment stays overused).
    history: SegVec<u32>,
    /// Segments overused at the last [`Congestion::account`] call.
    overused: Vec<SegIdx>,
    /// Segments whose occupancy changed since the last account.
    touched: Vec<SegIdx>,
    /// Dedup marker for `touched` (O(1) epoch reset per iteration).
    touched_mark: StampedSegVec<()>,
    /// First occupant net of each segment, stored as `net + 1` (0 = free).
    owner: SegVec<u32>,
    /// Occupants beyond the first, keyed by segment (congested slots only).
    extra: HashMap<SegIdx, Vec<u32>>,
}

impl Congestion {
    fn new(space: SegSpace) -> Self {
        Congestion {
            present: SegVec::new(space, 0),
            history: SegVec::new(space, 0),
            overused: Vec::new(),
            touched: Vec::new(),
            touched_mark: StampedSegVec::new(space),
            owner: SegVec::new(space, 0),
            extra: HashMap::new(),
        }
    }

    fn touch(&mut self, idx: SegIdx) {
        if self.touched_mark.set_once(idx, ()) {
            self.touched.push(idx);
        }
    }

    fn occupy(&mut self, idx: SegIdx, net: u32) {
        self.present[idx] += 1;
        if self.owner[idx] == 0 {
            self.owner[idx] = net + 1;
        } else {
            self.extra.entry(idx).or_default().push(net);
        }
        self.touch(idx);
    }

    fn release(&mut self, idx: SegIdx, net: u32) {
        self.present[idx] -= 1;
        if self.owner[idx] == net + 1 {
            self.owner[idx] = match self.extra.get_mut(&idx) {
                Some(v) => {
                    let promoted = v.pop().expect("spill entries are non-empty") + 1;
                    if v.is_empty() {
                        self.extra.remove(&idx);
                    }
                    promoted
                }
                None => 0,
            };
        } else {
            let v = self
                .extra
                .get_mut(&idx)
                .expect("releasing a recorded occupant");
            let p = v
                .iter()
                .position(|&n| n == net)
                .expect("releasing a recorded occupant");
            v.swap_remove(p);
            if v.is_empty() {
                self.extra.remove(&idx);
            }
        }
        self.touch(idx);
    }

    /// Every net currently occupying `idx` (the reverse index).
    fn nets_at(&self, idx: SegIdx) -> impl Iterator<Item = u32> + '_ {
        let first = self.owner[idx].checked_sub(1);
        first
            .into_iter()
            .chain(self.extra.get(&idx).into_iter().flatten().copied())
    }

    fn cost(&self, idx: SegIdx, pres_fac: u32) -> u32 {
        self.history[idx].saturating_add((self.present[idx] as u32).saturating_mul(pres_fac))
    }

    /// End-of-iteration accounting: bump history on every overused
    /// segment and return how many there are. Only segments that were
    /// overused last round or touched since can qualify, so only those
    /// are visited.
    fn account(&mut self, hist_cost: u32) -> usize {
        for &idx in &self.overused {
            if !self.touched_mark.is_set(idx) {
                self.touched.push(idx);
            }
        }
        let mut still = Vec::new();
        for &idx in &self.touched {
            if self.present[idx] > 1 {
                self.history[idx] += hist_cost;
                still.push(idx);
            }
        }
        self.overused = still;
        self.touched.clear();
        self.touched_mark.clear();
        self.overused.len()
    }
}

/// One net to route: a source pin and its sinks.
#[derive(Debug, Clone)]
pub struct NetSpec {
    /// Driving pin.
    pub source: Pin,
    /// Pins to reach.
    pub sinks: Vec<Pin>,
}

impl NetSpec {
    /// Net from `source` to `sinks`.
    pub fn new(source: Pin, sinks: impl Into<Vec<Pin>>) -> Self {
        NetSpec {
            source,
            sinks: sinks.into(),
        }
    }
}

/// Timing-driven negotiation knobs: RWRoute-style criticality blending
/// plus congestion-aware Steiner trees for high-fanout nets.
///
/// Per-sink criticality is `(sink delay / critical delay) ^ crit_exp`,
/// recomputed from the dense per-net delay cache that rides the dirty
/// set (only rerouted nets get fresh delays). It blends the maze edge
/// cost as `(1 − crit)·congestion + crit·delay` ([`MazeConfig::crit`]),
/// so critical connections pay less for congestion and detour last.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingConfig {
    /// Criticality sharpening exponent: higher values focus the delay
    /// weighting on the near-critical tail (RWRoute's recipe).
    pub crit_exp: f32,
    /// Criticality ceiling in [`CRIT_ONE`] fixed-point units, kept below
    /// `CRIT_ONE` so even the critical path stays congestion-aware
    /// enough to converge.
    pub max_crit: u32,
    /// Nets with at least this many sinks route through the
    /// [`steiner`] tree builder instead of greedy sink-by-sink reuse.
    pub steiner_fanout: usize,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            crit_exp: 2.0,
            max_crit: 232, // ≈ 0.91
            steiner_fanout: 6,
        }
    }
}

/// PathFinder tuning parameters.
#[derive(Debug, Clone)]
pub struct PathFinderConfig {
    /// Maximum rip-up/re-route iterations before giving up.
    pub max_iterations: usize,
    /// Initial present-congestion factor.
    pub pres_fac: u32,
    /// Multiplier applied to `pres_fac` each iteration.
    pub pres_growth: u32,
    /// History cost added per iteration a segment stays overused.
    pub hist_cost: u32,
    /// Maze options (long lines, node budget).
    pub maze: MazeConfig,
    /// After the first iteration, rip up only nets that touch an
    /// overused segment or failed last round. `false` restores the
    /// classic full-ripup schedule (the reference the equivalence
    /// property test compares against).
    pub incremental: bool,
    /// Confine each net's searches to its terminal bounding box expanded
    /// by this margin (plus hex reach); the box grows every time the net
    /// is ripped up again, so hard nets asymptotically see the whole
    /// device. `None` disables region pruning.
    pub bbox_margin: Option<u16>,
    /// Drive `pres_fac` growth from the overuse curve (accelerate on
    /// plateau, hold on oscillation) instead of multiplying blindly.
    pub adaptive_pres: bool,
    /// Worker threads for wave dispatch (1 = fully sequential). The
    /// engine's outputs are identical for every value — waves only run
    /// nets whose search regions are disjoint, so thread count changes
    /// wall clock, never results.
    pub threads: usize,
    /// How each wave's nets are spread over the workers.
    pub scheduler: SchedulerKind,
    /// Execute waves inline in net order on the calling thread even when
    /// `threads > 1` — the replayable schedule for the service's
    /// deterministic mode (results are unchanged either way; this pins
    /// the telemetry interleaving too).
    pub deterministic: bool,
    /// Timing-driven negotiation. `None` (the default) is the pure
    /// congestion cost, bit-identical to the pre-timing router; `Some`
    /// folds per-sink criticality into every search and dispatches
    /// high-fanout nets to the Steiner builder. The criticality table is
    /// frozen per iteration before waves dispatch, so results stay
    /// bit-identical across worker counts.
    pub timing: Option<TimingConfig>,
}

impl Default for PathFinderConfig {
    fn default() -> Self {
        PathFinderConfig {
            max_iterations: 30,
            pres_fac: 4,
            pres_growth: 2,
            hist_cost: 2,
            maze: MazeConfig {
                // Admissible search: negotiation wants true minimum-cost
                // reroutes, not the greedy weighted-A* shortcut.
                heuristic_weight: 1,
                ..MazeConfig::default()
            },
            incremental: true,
            bbox_margin: Some(partition::DEFAULT_MARGIN),
            adaptive_pres: true,
            threads: 1,
            scheduler: SchedulerKind::default(),
            deterministic: false,
            timing: None,
        }
    }
}

impl PathFinderConfig {
    /// The default configuration with timing-driven negotiation enabled.
    pub fn timing_driven() -> Self {
        PathFinderConfig {
            timing: Some(TimingConfig::default()),
            ..Default::default()
        }
    }
}

/// A net with its pins resolved to canonical segments and its search
/// region precomputed — built once before iteration 0 instead of
/// re-canonicalizing every pin on every iteration.
#[derive(Debug)]
struct PreparedNet {
    src: Segment,
    sinks: Vec<Segment>,
    /// Canonical search region with its earned growth
    /// ([`SearchBox`] carries the shared growth policy); `None` when
    /// pruning is off.
    sbox: Option<SearchBox>,
}

impl PreparedNet {
    /// The maze search region for this net's current patience level.
    fn search_box(&self, margin: u16, dims: virtex::Dims) -> Option<BBox> {
        self.sbox.map(|b| b.region(margin, dims))
    }

    /// Widen the region by `by` tiles (no-op when pruning is off).
    fn widen(&mut self, by: u16) -> u16 {
        match &mut self.sbox {
            Some(b) => {
                b.widen(by);
                b.growth()
            }
            None => 0,
        }
    }
}

/// Ceiling on the present-congestion factor. Beyond this every shared
/// segment is already effectively forbidden; capping keeps per-segment
/// costs (and therefore accumulated path costs) comfortably inside u32
/// even on the accelerated adaptive schedule.
const PRES_FAC_MAX: u32 = 1 << 20;

/// Next `pres_fac` from the shape of the overuse curve. Classic
/// PathFinder multiplies blindly; this accelerates through plateaus
/// (congestion stopped improving — push harder) and holds through
/// oscillation (nets are trading places — let history accumulate
/// instead of amplifying the swing).
fn next_pres_fac(pres_fac: u32, cfg: &PathFinderConfig, overused: usize, prev: usize) -> u32 {
    let next = if !cfg.adaptive_pres {
        pres_fac.saturating_mul(cfg.pres_growth)
    } else if overused > prev {
        // Oscillation: nets are trading places; hold and let history work.
        pres_fac
    } else if overused * 20 >= prev * 19 {
        // Less than 5% better than last round: a plateau.
        pres_fac.saturating_mul(cfg.pres_growth.saturating_mul(2).max(2))
    } else {
        pres_fac.saturating_mul(cfg.pres_growth)
    };
    next.min(PRES_FAC_MAX)
}

/// A routed net produced by the negotiated router.
#[derive(Debug, Clone)]
pub struct RoutedNet {
    /// The net as requested.
    pub spec: NetSpec,
    /// PIPs in configuration order.
    pub pips: Vec<(RowCol, Pip)>,
    /// Segments used (for occupancy accounting).
    pub segments: Vec<Segment>,
    /// Per-sink arrival delay in picoseconds (aligned with
    /// `spec.sinks`), maintained incrementally while the tree is built.
    /// Empty when timing-driven negotiation is off — the pure-congestion
    /// path does no delay accounting.
    pub sink_delays: Vec<u64>,
}

/// Outcome of a negotiated-congestion routing run.
#[derive(Debug)]
pub struct PathFinderResult {
    /// Successfully routed nets (all of them, when `legal`).
    pub nets: Vec<RoutedNet>,
    /// Whether the final state is overuse-free.
    pub legal: bool,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Total maze nodes expanded (effort metric for E8).
    pub nodes_expanded: usize,
    /// Segments still overused when the budget ran out.
    pub overused: usize,
}

/// Route `specs` with negotiated congestion.
pub fn route_all(
    dev: &Device,
    specs: &[NetSpec],
    cfg: &PathFinderConfig,
) -> Result<PathFinderResult> {
    route_all_obs(dev, specs, cfg, &Recorder::disabled())
}

/// [`route_all`] with observability: emits a `pathfinder.route_all` span,
/// per-iteration `pathfinder.overused` events (the congestion curve) and
/// `pathfinder.pres_fac` events (the adaptive schedule), counters for
/// rip-ups / rerouted nets / bounding-box fallbacks, a
/// `pathfinder.converged` event on success, and per-search maze metrics.
pub fn route_all_obs(
    dev: &Device,
    specs: &[NetSpec],
    cfg: &PathFinderConfig,
    obs: &Recorder,
) -> Result<PathFinderResult> {
    // A negotiation run is a causal root: every maze search below links
    // back to it ambiently (same thread), so a flight recording shows
    // which negotiation triggered which search.
    let mut span = obs.span_root("pathfinder.route_all");
    span.note(specs.len() as u64);
    let c_iterations = obs.counter("pathfinder.iterations");
    let c_rerouted = obs.counter("pathfinder.nets_rerouted");
    let c_ripups = obs.counter("pathfinder.ripups");
    let c_bbox_fallbacks = obs.counter("pathfinder.bbox_fallbacks");
    let c_waves = obs.counter("pathfinder.waves");
    let c_partition_conflicts = obs.counter("pathfinder.partition_conflicts");
    let h_bbox_growth = obs.histogram("pathfinder.bbox_growth");
    let h_iter_overuse = obs.histogram("pathfinder.iter_overuse");
    let h_wave_size = obs.histogram("pathfinder.wave_size");
    let h_crit = obs.histogram("pathfinder.crit");
    let g_crit_max = obs.gauge("pathfinder.crit_max");
    let g_crit_p99 = obs.gauge("pathfinder.crit_p99");
    let space = dev.seg_space();
    let dims = dev.dims();
    let mut cong = Congestion::new(space);
    let pool = ScratchPool::new();
    let exec = WaveExec {
        threads: cfg.threads.max(1),
        scheduler: cfg.scheduler,
        deterministic: cfg.deterministic,
    };
    // Waves require every dirty net to carry a search region that really
    // confines its search: long lines are bbox-exempt in the maze, so a
    // config that uses them falls back to the sequential schedule.
    let waveable = cfg.bbox_margin.is_some() && !cfg.maze.use_long_lines;
    let mut routes: Vec<Option<RoutedNet>> = vec![None; specs.len()];
    let mut pres_fac = cfg.pres_fac;
    let mut nodes_expanded = 0usize;

    // Resolve every pin once, up front (the per-iteration loop used to
    // re-canonicalize all of them on every pass).
    let mut prepared = Vec::with_capacity(specs.len());
    for spec in specs {
        let resolve = |pin: &Pin| {
            dev.canonicalize(pin.rc, pin.wire)
                .ok_or(RouteError::NoSuchWire {
                    rc: pin.rc,
                    wire: pin.wire,
                })
        };
        let src = resolve(&spec.source)?;
        let sinks = spec.sinks.iter().map(resolve).collect::<Result<Vec<_>>>()?;
        let sbox = match cfg.bbox_margin {
            Some(_) => {
                SearchBox::of_points(std::iter::once(src.rc).chain(sinks.iter().map(|s| s.rc)))
            }
            None => None,
        };
        prepared.push(PreparedNet { src, sinks, sbox });
    }

    // Nets to (re)route this iteration; the first pass routes everything.
    let mut dirty: Vec<usize> = (0..specs.len()).collect();
    let mut prev_overused: Option<usize> = None;
    // Timing mode runs one crit-weighted refinement over every net after
    // the first legal convergence (see below); this latches so it
    // happens exactly once.
    let mut refined = false;

    let mut iterations = 0usize;
    for iter in 0..cfg.max_iterations {
        iterations = iter + 1;
        c_iterations.inc();
        c_rerouted.add(dirty.len() as u64);
        // Criticality table for this iteration, frozen before any wave
        // dispatch so workers read it immutably (bit-identical results
        // across worker counts). The per-net delays it normalizes were
        // refreshed incrementally: only nets rerouted last iteration
        // carry new `sink_delays`. Iteration 0 has no delays yet, so the
        // first pass is pure congestion — the classic schedule.
        let crits_iter: Vec<Vec<u32>> = match &cfg.timing {
            Some(t) => {
                let crits = compute_crits(&routes, t);
                let mut all: Vec<u32> = crits.iter().flatten().copied().collect();
                if !all.is_empty() {
                    all.sort_unstable();
                    g_crit_max.set(*all.last().expect("non-empty") as u64);
                    g_crit_p99.set(all[((all.len() * 99) / 100).min(all.len() - 1)] as u64);
                    for &c in &all {
                        h_crit.record(c as u64);
                    }
                }
                crits
            }
            None => Vec::new(),
        };
        let net_timing = |i: usize| -> Option<(&[u32], usize)> {
            cfg.timing.as_ref().map(|t| {
                (
                    crits_iter.get(i).map(|v| v.as_slice()).unwrap_or(&[]),
                    t.steiner_fanout,
                )
            })
        };
        let mut any_failure = false;
        // Nets left for the sequential cleanup pass below: every dirty
        // net when waves are off, else only the wave misses (whose
        // bounded search already failed — they skip straight to an
        // unbounded one).
        let mut serial: Vec<(usize, bool)> = Vec::new();
        if waveable {
            // Partition the dirty set into waves of nets whose search
            // regions are pairwise disjoint: such nets cannot read or
            // write each other's congestion, so ripping up, searching and
            // committing them together is exactly the sequential result.
            let margin = cfg.bbox_margin.expect("waveable implies a margin");
            let boxes: Vec<BBox> = dirty
                .iter()
                .map(|&i| {
                    prepared[i]
                        .search_box(margin, dims)
                        .expect("waveable nets carry a region")
                })
                .collect();
            let plan = partition::partition_waves(&boxes);
            c_waves.add(plan.waves.len() as u64);
            c_partition_conflicts.add(plan.conflicts as u64);
            for wave in &plan.waves {
                h_wave_size.record(wave.len() as u64);
                // Barrier 1 — rip-up, in net order on this thread.
                for &k in wave {
                    let i = dirty[k];
                    if let Some(old) = routes[i].take() {
                        c_ripups.inc();
                        for seg in &old.segments {
                            cong.release(space.index(*seg), i as u32);
                        }
                    }
                }
                // Parallel bounded searches against the now-frozen
                // congestion (shared immutably; workers lease scratches
                // from the pool).
                let tasks: Vec<u64> = wave.iter().map(|&k| k as u64).collect();
                let run = exec.run_wave(
                    &tasks,
                    |_| pool.lease(dev),
                    |scratch, t| {
                        let k = t as usize;
                        route_net_tree(
                            dev,
                            space,
                            &cong,
                            pres_fac,
                            &prepared[dirty[k]],
                            net_timing(dirty[k]),
                            Some(boxes[k]),
                            &cfg.maze,
                            None,
                            scratch,
                            obs,
                        )
                    },
                );
                // Barrier 2 — commit, in net order. Disjointness makes
                // the order immaterial for results; fixing it anyway
                // keeps the run reproducible down to iteration counts.
                for (t, (built, nodes)) in run.results {
                    let i = dirty[t as usize];
                    nodes_expanded += nodes;
                    match built {
                        Some((pips, segments, sink_delays)) => {
                            for seg in &segments {
                                cong.occupy(space.index(*seg), i as u32);
                            }
                            routes[i] = Some(RoutedNet {
                                spec: specs[i].clone(),
                                pips,
                                segments,
                                sink_delays,
                            });
                        }
                        None => serial.push((i, true)),
                    }
                }
            }
            serial.sort_unstable();
        } else {
            serial.extend(dirty.iter().map(|&i| (i, false)));
        }
        for &(i, skip_bounded) in &serial {
            // Rip up the previous route of this net (no-op for wave
            // misses — the wave already released them).
            if let Some(old) = routes[i].take() {
                c_ripups.inc();
                for seg in &old.segments {
                    cong.release(space.index(*seg), i as u32);
                }
            }
            let prep = &prepared[i];
            let bbox = if skip_bounded {
                // The bounded wave search missed: the region was too
                // tight for a legal detour. Count the fallback once and
                // search the whole device so bounding can slow a route
                // down but never lose one.
                c_bbox_fallbacks.inc();
                None
            } else {
                cfg.bbox_margin.and_then(|m| prep.search_box(m, dims))
            };
            let mut scratch = pool.lease(dev);
            let (built, nodes) = route_net_tree(
                dev,
                space,
                &cong,
                pres_fac,
                prep,
                net_timing(i),
                bbox,
                &cfg.maze,
                Some(&c_bbox_fallbacks),
                &mut scratch,
                obs,
            );
            nodes_expanded += nodes;
            let Some((pips, segments, sink_delays)) = built else {
                // Node budget exhausted — leave unrouted this iteration;
                // congestion relief may fix it next round.
                any_failure = true;
                let g = prepared[i].widen(HEX_SPAN);
                h_bbox_growth.record(g as u64);
                continue;
            };
            for seg in &segments {
                cong.occupy(space.index(*seg), i as u32);
            }
            routes[i] = Some(RoutedNet {
                spec: specs[i].clone(),
                pips,
                segments,
                sink_delays,
            });
        }

        // Congestion accounting over prev-overused ∪ touched only.
        let overused = cong.account(cfg.hist_cost);
        obs.event("pathfinder.overused", overused as u64);
        h_iter_overuse.record(overused as u64);
        if overused == 0 && !any_failure && routes.iter().all(|r| r.is_some()) {
            if cfg.timing.is_some() && !refined && iterations < cfg.max_iterations {
                // First legal convergence under timing: the initial pass
                // routed with an *empty* criticality table (no delays
                // existed yet), so the delay term has not steered
                // anything. Re-route every net once against the now
                // measured criticalities — critical sinks move onto fast
                // wires, non-critical sinks stay congestion-priced — and
                // negotiate any overuse that introduces as usual. One
                // latched pass keeps the schedule deterministic.
                refined = true;
                dirty = (0..specs.len()).collect();
                continue;
            }
            obs.event("pathfinder.converged", iterations as u64);
            let nets = routes.into_iter().map(|r| r.expect("all routed")).collect();
            return Ok(PathFinderResult {
                nets,
                legal: true,
                iterations,
                nodes_expanded,
                overused: 0,
            });
        }

        if cfg.incremental {
            // Dirty set for the next pass: nets without a route plus every
            // occupant of a surviving overused segment (via the reverse
            // index — cost proportional to the congestion, not the design).
            let mut next: Vec<usize> = (0..specs.len()).filter(|&i| routes[i].is_none()).collect();
            for &o in &cong.overused {
                next.extend(cong.nets_at(o).map(|n| n as usize));
            }
            next.sort_unstable();
            next.dedup();
            // A net that keeps coming back earns a wider search region.
            for &i in &next {
                let g = prepared[i].widen(1);
                h_bbox_growth.record(g as u64);
            }
            dirty = next;
        }

        pres_fac = match prev_overused {
            Some(prev) => next_pres_fac(pres_fac, cfg, overused, prev),
            None => pres_fac.saturating_mul(cfg.pres_growth).min(PRES_FAC_MAX),
        };
        obs.event("pathfinder.pres_fac", pres_fac as u64);
        prev_overused = Some(overused);
    }

    // `account` ran at the end of the final iteration, so the residual
    // overuse is exactly the surviving overused set.
    let overused = cong.overused.len();
    obs.count("pathfinder.budget_exhausted", 1);
    let nets = routes.into_iter().flatten().collect();
    Ok(PathFinderResult {
        nets,
        legal: false,
        iterations,
        nodes_expanded,
        overused,
    })
}

/// Per-net, per-sink criticality table for one iteration, in
/// [`CRIT_ONE`] fixed-point units: `(delay / critical delay) ^ crit_exp`
/// capped at `max_crit`. The delays come from the dense per-net cache on
/// [`RoutedNet::sink_delays`] — refreshed only for nets the dirty set
/// rerouted, so the expensive part of the pass rides rip-up activity,
/// not design size. Unrouted nets (and iteration 0, before any delays
/// exist) get empty rows, which read as criticality zero.
fn compute_crits(routes: &[Option<RoutedNet>], tcfg: &TimingConfig) -> Vec<Vec<u32>> {
    let max_ps = routes
        .iter()
        .flatten()
        .flat_map(|r| &r.sink_delays)
        .copied()
        .max()
        .unwrap_or(0);
    if max_ps == 0 {
        return vec![Vec::new(); routes.len()];
    }
    let cap = tcfg.max_crit.min(CRIT_ONE);
    routes
        .iter()
        .map(|r| match r {
            Some(net) => net
                .sink_delays
                .iter()
                .map(|&d| {
                    let frac = d as f64 / max_ps as f64;
                    let c = (frac.powf(tcfg.crit_exp as f64) * CRIT_ONE as f64) as u32;
                    c.min(cap)
                })
                .collect(),
            None => Vec::new(),
        })
        .collect()
}

/// One net's tree construction against a frozen congestion snapshot.
/// Pure with respect to shared state — nothing is occupied or released
/// here; the caller commits (at the wave barrier or inline).
///
/// `timing` carries this net's per-sink criticalities and the Steiner
/// fanout threshold; `None` is the pure-congestion sink-by-sink loop,
/// bit-identical to the pre-timing router. `retry_unbounded` selects the
/// serial-pass semantics: a bounded miss counts a fallback and re-runs
/// unbounded (wave workers pass `None` and fail fast — their misses take
/// the serial path afterwards). Returns the built route or `None`, plus
/// the nodes expanded either way (partial effort still counts toward
/// the E8 metric).
#[allow(clippy::too_many_arguments)]
fn route_net_tree(
    dev: &Device,
    space: SegSpace,
    cong: &Congestion,
    pres_fac: u32,
    prep: &PreparedNet,
    timing: Option<(&[u32], usize)>,
    bbox: Option<BBox>,
    maze_cfg: &MazeConfig,
    retry_unbounded: Option<&Counter>,
    scratch: &mut MazeScratch,
    obs: &Recorder,
) -> RouteAttempt {
    // High-fanout nets go through the best-of-two Steiner builder, with
    // every leg priced by the same congestion snapshot.
    if let Some((crits, fanout)) = timing {
        if prep.sinks.len() >= fanout {
            let mut mc = maze_cfg.clone();
            mc.bbox = bbox;
            let mut tree = steiner::build_tree_obs(
                dev,
                prep.src,
                &prep.sinks,
                crits,
                &mc,
                |_| false, // overuse allowed; congestion is priced
                |seg| cong.cost(space.index(seg), pres_fac),
                scratch,
                obs,
            );
            if tree.is_none() && mc.bbox.is_some() {
                if let Some(ctr) = retry_unbounded {
                    ctr.inc();
                    mc.bbox = None;
                    tree = steiner::build_tree_obs(
                        dev,
                        prep.src,
                        &prep.sinks,
                        crits,
                        &mc,
                        |_| false,
                        |seg| cong.cost(space.index(seg), pres_fac),
                        scratch,
                        obs,
                    );
                } else {
                    return (None, 0);
                }
            }
            return match tree {
                Some(t) => (Some((t.pips, t.segments, t.sink_delays)), t.nodes_expanded),
                None => (None, 0),
            };
        }
    }
    let crits: &[u32] = timing.map(|(c, _)| c).unwrap_or(&[]);
    let timing_on = timing.is_some();
    let mut mc = maze_cfg.clone();
    let mut bbox = bbox;
    let mut pips = Vec::new();
    let mut segments = Vec::new();
    let mut sink_delays = if timing_on {
        vec![0u64; prep.sinks.len()]
    } else {
        Vec::new()
    };
    // The growing tree: start segments plus their arrival times. With
    // timing off every start cost is zero and arrivals are not tracked —
    // exactly the original loop.
    let mut starts = vec![(prep.src, 0u32)];
    let mut tree_ps: Vec<u64> = vec![0];
    let mut arrivals: HashMap<Segment, u64> = HashMap::new();
    if timing_on {
        arrivals.insert(prep.src, 0);
    }
    let mut nodes = 0usize;
    for (s_idx, &goal) in prep.sinks.iter().enumerate() {
        let crit = crits.get(s_idx).copied().unwrap_or(0).min(CRIT_ONE);
        mc.crit = crit;
        mc.bbox = bbox;
        if timing_on {
            // Re-price the tree starts for this sink's criticality.
            for (k, s) in starts.iter_mut().enumerate() {
                s.1 = steiner::start_cost(crit, tree_ps[k]);
            }
        }
        let mut result = maze::search_obs(
            dev,
            &starts,
            goal,
            &mc,
            |_| false, // overuse allowed; congestion is priced
            |seg| cong.cost(space.index(seg), pres_fac),
            scratch,
            obs,
        );
        if result.is_none() && mc.bbox.is_some() {
            let Some(ctr) = retry_unbounded else {
                return (None, nodes);
            };
            // Region too tight for this sink — fall back to the whole
            // device for this and every later sink.
            ctr.inc();
            bbox = None;
            mc.bbox = None;
            result = maze::search_obs(
                dev,
                &starts,
                goal,
                &mc,
                |_| false,
                |seg| cong.cost(space.index(seg), pres_fac),
                scratch,
                obs,
            );
        }
        let Some(mut r) = result else {
            return (None, nodes);
        };
        nodes += r.nodes_expanded;
        if timing_on {
            if r.segments.is_empty() {
                // The goal was already on the tree (duplicate sink).
                sink_delays[s_idx] = arrivals.get(&goal).copied().unwrap_or(0);
                continue;
            }
            // With crit-scaled start costs a search can undercut a tree
            // start and route through it; drop the redundant prefix so
            // the tree never double-drives its own wiring.
            let graft = steiner::trim_reentry(&arrivals, &mut r).or_else(|| {
                r.pips
                    .first()
                    .and_then(|&(rc, pip)| dev.canonicalize(rc, pip.from))
            });
            let mut at = graft.and_then(|g| arrivals.get(&g).copied()).unwrap_or(0);
            for seg in &r.segments {
                at += PIP_DELAY_PS + wire_delay_ps(seg.wire);
                arrivals.insert(*seg, at);
                starts.push((*seg, 0));
                tree_ps.push(at);
                segments.push(*seg);
            }
            sink_delays[s_idx] = at;
        } else {
            for seg in &r.segments {
                starts.push((*seg, 0));
                tree_ps.push(0);
                segments.push(*seg);
            }
        }
        pips.extend_from_slice(&r.pips);
    }
    (Some((pips, segments, sink_delays)), nodes)
}

/// Result of [`route_net_tree`]: the built `(pips, segments,
/// sink_delays)` when every sink was reached, plus nodes expanded.
type RouteAttempt = (Option<(Vec<(RowCol, Pip)>, Vec<Segment>, Vec<u64>)>, usize);

/// Program a legal PathFinder result into a bitstream.
///
/// Returns an error if the result is not legal (overuse would configure
/// contention).
pub fn apply(result: &PathFinderResult, bits: &mut Bitstream) -> Result<()> {
    if !result.legal {
        return Err(RouteError::Contention {
            segment: Segment {
                rc: RowCol::new(0, 0),
                wire: virtex::Wire(0),
            },
            owner: None,
        });
    }
    for net in &result.nets {
        for &(rc, pip) in &net.pips {
            bits.set_pip(rc, pip.from, pip.to)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Device, Family};

    fn dev() -> Device {
        Device::new(Family::Xcv50)
    }

    #[test]
    fn routes_disjoint_nets_in_one_iteration() {
        let dev = dev();
        let specs: Vec<NetSpec> = (0..4)
            .map(|i| {
                NetSpec::new(
                    Pin::new(2 + 3 * i, 2, wire::S0_YQ),
                    vec![Pin::new(2 + 3 * i, 8, wire::S0_F3)],
                )
            })
            .collect();
        let r = route_all(&dev, &specs, &PathFinderConfig::default()).unwrap();
        assert!(r.legal);
        assert_eq!(r.nets.len(), 4);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn negotiates_contending_nets_apart() {
        let dev = dev();
        // Several nets squeezed through the same neighbourhood: they must
        // negotiate distinct resources.
        let specs: Vec<NetSpec> = (0..6)
            .map(|i| {
                NetSpec::new(
                    Pin::new(8, 8, wire::slice_out(i % 2, (i / 2 % 4) as u8)),
                    vec![Pin::new(10, 10, wire::slice_in(i % 2, (i % 13) as u8))],
                )
            })
            .collect();
        let r = route_all(&dev, &specs, &PathFinderConfig::default()).unwrap();
        assert!(r.legal, "negotiation should resolve local congestion");
        // No segment shared between different nets.
        let mut seen = std::collections::HashMap::new();
        for (i, net) in r.nets.iter().enumerate() {
            for seg in &net.segments {
                if let Some(prev) = seen.insert(*seg, i) {
                    panic!("segment {seg} shared by nets {prev} and {i}");
                }
            }
        }
    }

    /// A workload congested enough to need several negotiation rounds:
    /// sixteen nets from two source tiles all funnelled into the input
    /// pins of a single sink tile.
    fn contended_specs() -> Vec<NetSpec> {
        (0..16u16)
            .map(|i| {
                let src = if i < 8 {
                    Pin::new(8, 8, wire::slice_out((i % 2) as usize, (i / 2) as u8))
                } else {
                    Pin::new(
                        12,
                        12,
                        wire::slice_out((i % 2) as usize, ((i - 8) / 2) as u8),
                    )
                };
                NetSpec::new(
                    src,
                    vec![Pin::new(
                        10,
                        10,
                        wire::slice_in((i % 2) as usize, (i / 2 % 13) as u8),
                    )],
                )
            })
            .collect()
    }

    #[test]
    fn incremental_reroutes_strictly_fewer_nets_than_full_ripup() {
        let dev = dev();
        let specs = contended_specs();
        let full_cfg = PathFinderConfig {
            incremental: false,
            bbox_margin: None,
            adaptive_pres: false,
            ..Default::default()
        };
        let incr_cfg = PathFinderConfig::default();
        let full_obs = Recorder::enabled();
        let full = route_all_obs(&dev, &specs, &full_cfg, &full_obs).unwrap();
        let incr_obs = Recorder::enabled();
        let incr = route_all_obs(&dev, &specs, &incr_cfg, &incr_obs).unwrap();
        assert!(full.legal && incr.legal);
        assert!(incr.iterations > 1, "workload must actually contend");
        let full_n = full_obs
            .report()
            .counter("pathfinder.nets_rerouted")
            .unwrap();
        let incr_n = incr_obs
            .report()
            .counter("pathfinder.nets_rerouted")
            .unwrap();
        // Full rip-up redoes every net every round; incremental only the
        // congested ones, so its total net-searches must be strictly lower.
        assert!(
            incr_n < full_n,
            "incremental rerouted {incr_n} nets vs full {full_n}"
        );
        assert_eq!(full_n, (specs.len() * full.iterations) as u64);
    }

    #[test]
    fn incremental_negotiation_is_contention_free() {
        let dev = dev();
        let r = route_all(&dev, &contended_specs(), &PathFinderConfig::default()).unwrap();
        assert!(r.legal);
        let mut seen = std::collections::HashMap::new();
        for (i, net) in r.nets.iter().enumerate() {
            for seg in &net.segments {
                if let Some(prev) = seen.insert(*seg, i) {
                    panic!("segment {seg} shared by nets {prev} and {i}");
                }
            }
        }
    }

    #[test]
    fn legal_result_applies_to_bitstream_without_contention() {
        let dev = dev();
        let specs: Vec<NetSpec> = (0..3)
            .map(|i| {
                NetSpec::new(
                    Pin::new(4, 4 + i, wire::S1_YQ),
                    vec![
                        Pin::new(6, 6 + i, wire::S0_F3),
                        Pin::new(7, 4 + i, wire::S1_F1),
                    ],
                )
            })
            .collect();
        let r = route_all(&dev, &specs, &PathFinderConfig::default()).unwrap();
        assert!(r.legal);
        let mut bits = Bitstream::new(&dev);
        apply(&r, &mut bits).unwrap();
        // Every segment has at most one driver.
        for net in &r.nets {
            for seg in &net.segments {
                assert!(bits.segment_drivers(*seg).len() <= 1, "contention on {seg}");
            }
        }
    }

    #[test]
    fn illegal_results_refuse_to_apply() {
        let dev = dev();
        let r = PathFinderResult {
            nets: vec![],
            legal: false,
            iterations: 0,
            nodes_expanded: 0,
            overused: 1,
        };
        let mut bits = Bitstream::new(&dev);
        assert!(apply(&r, &mut bits).is_err());
    }
}
