//! Congestion-aware Steiner-tree construction for high-fanout nets.
//!
//! The paper's fan-out router grows a tree greedily: *"Each sink gets
//! routed in order of increasing distance from the source. For each
//! sink, the router attempts to reuse the previous paths as much as
//! possible"* (§3.1). That order is a poor Steiner approximation when
//! sinks cluster far from the source — the first leg commits wiring the
//! later sinks cannot profit from. This module implements the classic
//! sequential (Takahashi–Matsuyama-style) alternative: connect the
//! *nearest unconnected sink to the partial tree*, branching from the
//! cheapest point on it, with every leg found by the maze engine's
//! bounded searches so congestion (and, when criticality is set, delay)
//! is priced into each branch.
//!
//! Because neither insertion order dominates on every instance, the
//! builder runs both — the caller's greedy order and nearest-to-tree —
//! and commits the cheaper tree. The greedy arm replicates
//! `Router::route_fanout` exactly (same order, same zero-cost tree
//! starts when criticality is zero), which gives a structural guarantee
//! the benches assert: the returned tree's weighted wirelength never
//! exceeds the greedy path-reuse tree's on the same instance.
//!
//! The builder is a pure function of its inputs (device, congestion
//! snapshot, criticalities): it allocates its scratch from the caller
//! (`ScratchPool`-leased in the partition-parallel waves) and performs
//! no global mutation, so it composes with the PR 8 wave engine and
//! stays bit-identical across worker counts.

use crate::maze::{self, blend, MazeConfig, MazeResult, MazeScratch, CRIT_ONE};
use jbits::Pip;
use jroute_obs::Recorder;
use std::collections::HashMap;
use virtex::delay::{ps_to_units, wire_delay_ps, PIP_DELAY_PS};
use virtex::{Device, RowCol, Segment};

/// A routed multi-sink tree.
#[derive(Debug, Clone)]
pub struct SteinerTree {
    /// PIPs to configure, concatenated leg by leg in connection order
    /// (each leg is source-to-sink ordered, so a prefix of the list is
    /// always a connected tree).
    pub pips: Vec<(RowCol, Pip)>,
    /// New segments entered by the tree, aligned with `pips`.
    pub segments: Vec<Segment>,
    /// Per-sink arrival delay in picoseconds, aligned with the *input*
    /// goal order (not connection order).
    pub sink_delays: Vec<u64>,
    /// Total blended search cost over all legs (congestion-priced; the
    /// arm-selection metric).
    pub cost: u32,
    /// Weighted wirelength: Σ base `wire_cost` over `segments`,
    /// congestion-free — the E3 comparison metric.
    pub wirelength: u32,
    /// Maze nodes expanded across every search of both arms.
    pub nodes_expanded: usize,
    /// Whether the nearest-to-tree arm beat the greedy arm strictly.
    pub steiner_won: bool,
    /// Distinct non-source branch points in the winning tree.
    pub branches: usize,
    /// Legs that grafted onto reused tree wiring rather than the source.
    pub reuse_hits: usize,
}

/// One grown arm (candidate tree) before arm selection.
struct Arm {
    pips: Vec<(RowCol, Pip)>,
    segments: Vec<Segment>,
    sink_delays: Vec<u64>,
    cost: u32,
    wirelength: u32,
    nodes_expanded: usize,
    branches: usize,
    reuse_hits: usize,
}

/// Crit-scaled initial cost of a tree start: an arrival of `ps` weighs
/// `crit · delay_units(ps)` in the blended cost space (zero when
/// criticality is zero — the paper's plain zero-cost tree reuse).
#[inline]
pub(crate) fn start_cost(crit: u32, ps: u64) -> u32 {
    blend(crit.min(CRIT_ONE), 0, ps_to_units(ps))
}

/// Drop the redundant prefix of a maze leg that re-entered the existing
/// tree. With crit-scaled (non-zero) start costs a search may reach a
/// tree segment more cheaply than its offered start cost and route
/// *through* it; the prefix before the last such segment would
/// double-drive wiring the tree already drives. Returns the graft
/// segment the kept suffix branches from, or `None` if the leg begins
/// at a start marker (graft = the start itself).
pub(crate) fn trim_reentry(
    arrivals: &HashMap<Segment, u64>,
    r: &mut MazeResult,
) -> Option<Segment> {
    let last = r
        .segments
        .iter()
        .rposition(|seg| arrivals.contains_key(seg));
    if let Some(j) = last {
        let graft = r.segments[j];
        r.segments.drain(..=j);
        r.pips.drain(..=j);
        Some(graft)
    } else {
        None
    }
}

/// Grow one tree in the given `order` of goal indices. Returns `None`
/// if any leg is unroutable under `cfg` (callers retry unbounded or
/// report the miss, exactly like single-sink routing).
#[allow(clippy::too_many_arguments)]
fn grow(
    dev: &Device,
    src: Segment,
    goals: &[Segment],
    crits: &[u32],
    order: &[usize],
    cfg: &MazeConfig,
    blocked: &mut dyn FnMut(Segment) -> bool,
    extra_cost: &mut dyn FnMut(Segment) -> u32,
    scratch: &mut MazeScratch,
    obs: &Recorder,
) -> Option<Arm> {
    let la = dev.lookahead();
    let mut arrivals: HashMap<Segment, u64> = HashMap::new();
    arrivals.insert(src, 0);
    // Insertion-ordered (segment, arrival ps) list: the start set for
    // every leg. Deterministic order keeps Dial-queue tie-breaking — and
    // therefore results — independent of map iteration.
    let mut tree: Vec<(Segment, u64)> = vec![(src, 0)];
    let mut arm = Arm {
        pips: Vec::new(),
        segments: Vec::new(),
        sink_delays: vec![0; goals.len()],
        cost: 0,
        wirelength: 0,
        nodes_expanded: 0,
        branches: 0,
        reuse_hits: 0,
    };
    let mut grafts: Vec<Segment> = Vec::new();
    let mut starts: Vec<(Segment, u32)> = Vec::new();
    for &i in order {
        let crit = crits.get(i).copied().unwrap_or(0).min(CRIT_ONE);
        starts.clear();
        starts.extend(tree.iter().map(|&(seg, ps)| (seg, start_cost(crit, ps))));
        let leg_cfg = MazeConfig {
            crit,
            ..cfg.clone()
        };
        let mut r = maze::search_obs(
            dev,
            &starts,
            goals[i],
            &leg_cfg,
            &mut *blocked,
            &mut *extra_cost,
            scratch,
            obs,
        )?;
        arm.nodes_expanded += r.nodes_expanded;
        arm.cost = arm.cost.saturating_add(r.cost);
        let graft = trim_reentry(&arrivals, &mut r).or_else(|| {
            r.pips
                .first()
                .and_then(|&(rc, pip)| dev.canonicalize(rc, pip.from))
        });
        let Some(graft) = graft else {
            // Empty leg: the goal was already on the tree.
            arm.sink_delays[i] = arrivals.get(&goals[i]).copied().unwrap_or(0);
            continue;
        };
        if graft != src {
            arm.reuse_hits += 1;
            if !grafts.contains(&graft) {
                grafts.push(graft);
            }
        }
        let mut at = arrivals.get(&graft).copied().unwrap_or(0);
        for (j, &seg) in r.segments.iter().enumerate() {
            at += PIP_DELAY_PS + wire_delay_ps(seg.wire);
            arm.wirelength += la.model().wire_cost(seg.wire);
            arrivals.insert(seg, at);
            if !seg.wire.is_clb_input() {
                tree.push((seg, at));
            }
            debug_assert!(j < r.pips.len());
        }
        arm.sink_delays[i] = at;
        arm.pips.extend_from_slice(&r.pips);
        arm.segments.extend_from_slice(&r.segments);
    }
    arm.branches = grafts.len();
    Some(arm)
}

/// The nearest-unconnected-sink-to-tree insertion order: repeatedly pick
/// the remaining goal with the smallest lookahead distance to any tree
/// terminal (source or connected sink), smallest index on ties.
fn nearest_order(dev: &Device, src: Segment, goals: &[Segment], longs: bool) -> Vec<usize> {
    let la = dev.lookahead();
    let mut terminals: Vec<RowCol> = vec![src.rc];
    let mut remaining: Vec<usize> = (0..goals.len()).collect();
    let mut order = Vec::with_capacity(goals.len());
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| {
                let d = terminals
                    .iter()
                    .map(|&t| la.estimate(goals[i], t, longs))
                    .min()
                    .unwrap_or(u32::MAX);
                (d, i)
            })
            .expect("remaining is non-empty");
        remaining.swap_remove(pos);
        order.push(best);
        terminals.push(goals[best].rc);
    }
    order
}

/// Build a multi-sink tree from `src` to every goal, trying both the
/// caller's (greedy, distance-sorted) order and the nearest-to-tree
/// Steiner order, and returning the cheaper tree by total blended
/// search cost. `crits` holds per-goal criticalities in [`CRIT_ONE`]
/// fixed-point units (empty for pure-congestion routing). Returns
/// `None` if either arm fails to route every goal under `cfg` — the
/// caller retries unbounded or falls back, exactly as for single legs.
#[allow(clippy::too_many_arguments)]
pub fn build_tree_obs(
    dev: &Device,
    src: Segment,
    goals: &[Segment],
    crits: &[u32],
    cfg: &MazeConfig,
    mut blocked: impl FnMut(Segment) -> bool,
    mut extra_cost: impl FnMut(Segment) -> u32,
    scratch: &mut MazeScratch,
    obs: &Recorder,
) -> Option<SteinerTree> {
    let greedy_order: Vec<usize> = (0..goals.len()).collect();
    let greedy = grow(
        dev,
        src,
        goals,
        crits,
        &greedy_order,
        cfg,
        &mut blocked,
        &mut extra_cost,
        scratch,
        obs,
    )?;
    // With fewer than three sinks both orders coincide (the nearest
    // unconnected sink to a source-only tree is the nearest to the
    // source): skip the second arm.
    let steiner = if goals.len() >= 3 {
        let order = nearest_order(dev, src, goals, cfg.use_long_lines);
        if order == greedy_order {
            None
        } else {
            grow(
                dev,
                src,
                goals,
                crits,
                &order,
                cfg,
                &mut blocked,
                &mut extra_cost,
                scratch,
                obs,
            )
        }
    } else {
        None
    };
    let total_nodes = greedy.nodes_expanded + steiner.as_ref().map_or(0, |s| s.nodes_expanded);
    // Strict improvement only: on a tie the paper's greedy tree stands.
    let steiner_won = steiner.as_ref().is_some_and(|s| s.cost < greedy.cost);
    let arm = if steiner_won {
        steiner.expect("won arm exists")
    } else {
        greedy
    };
    obs.counter("steiner.builds").inc();
    if steiner_won {
        obs.counter("steiner.wins").inc();
    }
    obs.counter("steiner.branches").add(arm.branches as u64);
    obs.counter("steiner.reuse_hits").add(arm.reuse_hits as u64);
    Some(SteinerTree {
        pips: arm.pips,
        segments: arm.segments,
        sink_delays: arm.sink_delays,
        cost: arm.cost,
        wirelength: arm.wirelength,
        nodes_expanded: total_nodes,
        steiner_won,
        branches: arm.branches,
        reuse_hits: arm.reuse_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::Pin;
    use virtex::{wire, Device, Family};

    fn dev() -> Device {
        Device::new(Family::Xcv300)
    }

    fn seg_of(dev: &Device, pin: Pin) -> Segment {
        dev.canonicalize(pin.rc, pin.wire).unwrap()
    }

    /// A source at the center-left with a far cluster of sinks: the
    /// greedy order routes each cluster sink from near-equal distance,
    /// while the Steiner order rides one trunk and branches locally.
    fn cluster(dev: &Device) -> (Segment, Vec<Segment>) {
        let src = seg_of(dev, Pin::new(16, 4, wire::S0_YQ));
        use virtex::wire::{slice_in, slice_in_pin};
        let sinks = vec![
            seg_of(dev, Pin::new(14, 30, slice_in(0, slice_in_pin::F1))),
            seg_of(dev, Pin::new(15, 31, slice_in(1, slice_in_pin::F2))),
            seg_of(dev, Pin::new(16, 30, slice_in(0, slice_in_pin::G1))),
            seg_of(dev, Pin::new(17, 31, slice_in(1, slice_in_pin::F3))),
            seg_of(dev, Pin::new(18, 30, slice_in(0, slice_in_pin::F4))),
            seg_of(dev, Pin::new(14, 32, slice_in(1, slice_in_pin::G2))),
        ];
        (src, sinks)
    }

    #[test]
    fn tree_reaches_every_sink_without_duplicates() {
        let dev = dev();
        let (src, sinks) = cluster(&dev);
        let mut scratch = MazeScratch::new(&dev);
        let t = build_tree_obs(
            &dev,
            src,
            &sinks,
            &[],
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
            &Recorder::disabled(),
        )
        .expect("tree routes");
        for s in &sinks {
            assert!(t.segments.contains(s), "sink {s} reached");
        }
        let mut seen = std::collections::HashSet::new();
        for s in &t.segments {
            assert!(seen.insert(*s), "segment {s} appears twice (cycle)");
        }
        assert_eq!(t.pips.len(), t.segments.len());
        assert_eq!(t.sink_delays.len(), sinks.len());
        assert!(t.sink_delays.iter().all(|&d| d > 0));
    }

    #[test]
    fn never_worse_than_greedy_and_wins_on_clusters() {
        let dev = dev();
        let (src, sinks) = cluster(&dev);
        let mut scratch = MazeScratch::new(&dev);
        // The greedy reference: input order only.
        let greedy = grow(
            &dev,
            src,
            &sinks,
            &[],
            &(0..sinks.len()).collect::<Vec<_>>(),
            &MazeConfig::default(),
            &mut |_| false,
            &mut |_| 0,
            &mut scratch,
            &Recorder::disabled(),
        )
        .expect("greedy routes");
        let t = build_tree_obs(
            &dev,
            src,
            &sinks,
            &[],
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
            &Recorder::disabled(),
        )
        .expect("tree routes");
        assert!(t.cost <= greedy.cost, "best-of-two can never lose");
        assert!(
            t.wirelength <= greedy.wirelength || t.cost < greedy.cost,
            "picked arm is cheaper"
        );
    }

    #[test]
    fn blocked_segments_are_respected() {
        let dev = dev();
        let (src, sinks) = cluster(&dev);
        let mut scratch = MazeScratch::new(&dev);
        let t = build_tree_obs(
            &dev,
            src,
            &sinks,
            &[],
            &MazeConfig::default(),
            |_| false,
            |_| 0,
            &mut scratch,
            &Recorder::disabled(),
        )
        .unwrap();
        let banned = t.segments[t.segments.len() / 2];
        if banned.wire.is_clb_input() {
            return; // picking a pin would block a sink itself
        }
        let t2 = build_tree_obs(
            &dev,
            src,
            &sinks,
            &[],
            &MazeConfig::default(),
            |s| s == banned,
            |_| 0,
            &mut scratch,
            &Recorder::disabled(),
        )
        .expect("detour exists");
        assert!(!t2.segments.contains(&banned));
    }

    #[test]
    fn per_sink_criticality_scales_start_costs() {
        assert_eq!(start_cost(0, 10_000), 0);
        assert_eq!(
            start_cost(CRIT_ONE, 10_000),
            ps_to_units(10_000),
            "full criticality charges the whole arrival"
        );
        assert!(start_cost(CRIT_ONE / 2, 10_000) < ps_to_units(10_000));
    }
}
