//! Net bookkeeping: which segments belong to which net.
//!
//! The router records every net it creates so that it can avoid
//! contention (§3.4), unroute (§3.3) and answer `is_on` queries without
//! rescanning the bitstream. The invariant maintained throughout is
//! **single-driver**: every canonical segment has at most one on-PIP
//! driving it, and belongs to at most one net.

use crate::endpoint::Pin;
use crate::error::{NetId, Result, RouteError};
use jbits::Pip;
use std::collections::HashMap;
use virtex::{segment, RowCol, SegSpace, SegVec, Segment};

/// One routed net: a source, the PIPs configured for it, and its sinks.
#[derive(Debug, Clone)]
pub struct Net {
    /// Identifier within the owning router.
    pub id: NetId,
    /// Canonical segment of the net's source.
    pub source: Segment,
    /// The source as the user named it.
    pub source_pin: Pin,
    /// Every PIP configured for this net, in configuration order.
    pub pips: Vec<(RowCol, Pip)>,
    /// Sink pins the router was asked to reach (auto-routing calls record
    /// these; manual PIP calls do not know the intent).
    pub sinks: Vec<Pin>,
    /// Endpoint-level connection intents (`route(src, sink)` calls) that
    /// produced this net. Kept so port connections can be *"removed, but
    /// remembered"* across an unroute (paper §3.3).
    pub intents: Vec<(crate::endpoint::EndPoint, crate::endpoint::EndPoint)>,
}

impl Net {
    /// Number of routing-resource segments the net occupies (source plus
    /// one per driving PIP).
    pub fn segment_count(&self) -> usize {
        1 + self.pips.len()
    }
}

/// The net database: nets, their resources, and global segment ownership.
///
/// Ownership is stored densely over the device's [`SegSpace`]: `owner` /
/// `is_used` are O(1) array reads on the maze router's hot blocked-check
/// path, and releasing a net touches only the segments it owned.
#[derive(Debug)]
pub struct NetDb {
    nets: HashMap<NetId, Net>,
    /// Source segment -> net rooted there (dense over the segment space).
    by_source: SegVec<Option<NetId>>,
    /// Segment -> owning net. Set for the source segment and for the
    /// target segment of every net PIP.
    occ: SegVec<Option<NetId>>,
    /// Number of `Some` slots in `occ` (kept so `used_segments` stays
    /// O(1)).
    used: usize,
    next: u32,
}

impl NetDb {
    /// Empty net database over the segment space of one device.
    pub fn new(space: SegSpace) -> Self {
        NetDb {
            nets: HashMap::new(),
            by_source: SegVec::new(space, None),
            occ: SegVec::new(space, None),
            used: 0,
            next: 0,
        }
    }

    /// The segment space this database covers.
    #[inline]
    pub fn space(&self) -> SegSpace {
        self.occ.space()
    }

    /// Net that owns `seg`, if any.
    #[inline]
    pub fn owner(&self, seg: Segment) -> Option<NetId> {
        self.occ[self.space().index(seg)]
    }

    /// Whether `seg` is currently used by any net.
    #[inline]
    pub fn is_used(&self, seg: Segment) -> bool {
        self.owner(seg).is_some()
    }

    /// Net rooted at source segment `seg`.
    #[inline]
    pub fn net_at_source(&self, seg: Segment) -> Option<NetId> {
        self.by_source[self.space().index(seg)]
    }

    /// Look up a net.
    #[inline]
    pub fn net(&self, id: NetId) -> Option<&Net> {
        self.nets.get(&id)
    }

    /// Iterate all nets.
    pub fn iter(&self) -> impl Iterator<Item = &Net> {
        self.nets.values()
    }

    /// Number of live nets.
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Whether no nets exist.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Create a net rooted at `source` (canonical `seg`). Fails with
    /// [`RouteError::ResourceInUse`] if the source segment belongs to
    /// another net — use [`NetDb::net_at_source`] to extend instead.
    pub fn create(&mut self, source_pin: Pin, seg: Segment) -> Result<NetId> {
        let idx = self.space().index(seg);
        if let Some(owner) = self.occ[idx] {
            // Rooting a second net at the same source is a user error;
            // extending the existing net is the supported operation.
            return Err(RouteError::ResourceInUse {
                segment: seg,
                owner: Some(owner),
            });
        }
        let id = NetId(self.next);
        self.next += 1;
        self.nets.insert(
            id,
            Net {
                id,
                source: seg,
                source_pin,
                pips: Vec::new(),
                sinks: Vec::new(),
                intents: Vec::new(),
            },
        );
        self.by_source[idx] = Some(id);
        self.occupy(seg, id);
        Ok(id)
    }

    /// Record a PIP configured for net `id`, claiming the PIP's target
    /// segment. Fails if the target belongs to a different net.
    ///
    /// `target` must be the canonical segment of `(rc, pip.to)` — the
    /// caller has usually just canonicalized it to check drive legality,
    /// so it is passed in rather than re-derived.
    pub fn add_pip(&mut self, id: NetId, rc: RowCol, pip: Pip, target: Segment) -> Result<()> {
        debug_assert_eq!(
            segment::canonicalize(self.space().dims(), rc, pip.to),
            Some(target),
            "add_pip target must canonicalize from (rc, pip.to)"
        );
        match self.owner(target) {
            Some(owner) if owner != id => {
                return Err(RouteError::Contention {
                    segment: target,
                    owner: Some(owner),
                })
            }
            _ => {}
        }
        let net = self.nets.get_mut(&id).expect("add_pip on dead net");
        // Re-claiming an existing PIP of the same net (e.g. a template
        // walk sharing a prefix with an earlier branch) must not create a
        // duplicate record, or unroute accounting would double-count.
        if !net.pips.iter().any(|&(r, p)| r == rc && p == pip) {
            net.pips.push((rc, pip));
        }
        self.occupy(target, id);
        Ok(())
    }

    /// Record an endpoint-level connection intent on net `id` (port
    /// memory, §3.3).
    pub fn add_intent(
        &mut self,
        id: NetId,
        src: crate::endpoint::EndPoint,
        sink: crate::endpoint::EndPoint,
    ) {
        if let Some(net) = self.nets.get_mut(&id) {
            if !net.intents.contains(&(src, sink)) {
                net.intents.push((src, sink));
            }
        }
    }

    /// Record an intended sink of net `id`.
    pub fn add_sink(&mut self, id: NetId, sink: Pin) {
        if let Some(net) = self.nets.get_mut(&id) {
            if !net.sinks.contains(&sink) {
                net.sinks.push(sink);
            }
        }
    }

    /// Remove one PIP from net `id`, releasing its target segment.
    /// Returns `true` if the PIP was recorded for the net.
    pub fn remove_pip(&mut self, id: NetId, rc: RowCol, pip: Pip, target: Segment) -> bool {
        let Some(net) = self.nets.get_mut(&id) else {
            return false;
        };
        let Some(pos) = net.pips.iter().position(|&(r, p)| r == rc && p == pip) else {
            return false;
        };
        net.pips.remove(pos);
        self.release(target);
        true
    }

    /// Remove a recorded sink from net `id` (used by branch unrouting).
    pub fn remove_sink(&mut self, id: NetId, sink: Pin) {
        if let Some(net) = self.nets.get_mut(&id) {
            net.sinks.retain(|s| *s != sink);
        }
    }

    /// Delete an entire net, releasing every segment it owned. Returns the
    /// net's PIPs so the caller can clear them from the bitstream.
    ///
    /// Cost is proportional to the net's own size (source + one release
    /// per PIP target), not to the number of segments in the database.
    pub fn remove_net(&mut self, id: NetId) -> Option<Net> {
        let net = self.nets.remove(&id)?;
        let space = self.space();
        let src = space.index(net.source);
        if self.by_source[src] == Some(id) {
            self.by_source[src] = None;
        }
        self.release_owned(net.source, id);
        for &(rc, pip) in &net.pips {
            if let Some(target) = segment::canonicalize(space.dims(), rc, pip.to) {
                self.release_owned(target, id);
            }
        }
        Some(net)
    }

    /// Total segments currently owned across all nets (the paper's
    /// "routing resources used" metric for E3).
    pub fn used_segments(&self) -> usize {
        self.used
    }

    /// Iterate every owned segment as `(Segment, NetId)` — the dense
    /// census walk behind `stats::ResourceUsage`.
    pub fn iter_used(&self) -> impl Iterator<Item = (Segment, NetId)> + '_ {
        let space = self.space();
        self.occ
            .iter()
            .filter_map(move |(idx, v)| v.map(|id| (space.segment(idx), id)))
    }

    /// Deterministically ordered census of every owned segment: the
    /// state-comparison key used by the service-layer stress tests
    /// (dense-index order, so two databases over the same space compare
    /// element-wise).
    pub fn census(&self) -> Vec<(Segment, NetId)> {
        let space = self.space();
        let mut v: Vec<(Segment, NetId)> = self.iter_used().collect();
        v.sort_by_key(|&(seg, _)| space.index(seg).0);
        v
    }

    /// Mark `seg` owned by `id`.
    fn occupy(&mut self, seg: Segment, id: NetId) {
        let idx = self.space().index(seg);
        if self.occ[idx].is_none() {
            self.used += 1;
        }
        self.occ[idx] = Some(id);
    }

    /// Release `seg` regardless of owner.
    fn release(&mut self, seg: Segment) {
        let idx = self.space().index(seg);
        if self.occ[idx].take().is_some() {
            self.used -= 1;
        }
    }

    /// Release `seg` only if `id` owns it (two PIPs of one net may share a
    /// target; the second release must not clobber the accounting).
    fn release_owned(&mut self, seg: Segment, id: NetId) {
        let idx = self.space().index(seg);
        if self.occ[idx] == Some(id) {
            self.occ[idx] = None;
            self.used -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Dir};

    fn seg(r: u16, c: u16, w: virtex::Wire) -> Segment {
        Segment {
            rc: RowCol::new(r, c),
            wire: w,
        }
    }

    fn db() -> NetDb {
        NetDb::new(SegSpace::new(virtex::Dims::new(16, 24)))
    }

    #[test]
    fn create_claims_source_segment() {
        let mut db = db();
        let src = Pin::new(5, 7, wire::S1_YQ);
        let s = seg(5, 7, wire::S1_YQ);
        let id = db.create(src, s).unwrap();
        assert_eq!(db.owner(s), Some(id));
        assert_eq!(db.net_at_source(s), Some(id));
        assert!(db.is_used(s));
        // A second net at the same source is refused.
        let err = db.create(src, s).unwrap_err();
        assert!(matches!(err, RouteError::ResourceInUse { .. }));
    }

    #[test]
    fn add_pip_claims_target_and_conflicts_are_contention() {
        let mut db = db();
        let a = db
            .create(Pin::new(0, 0, wire::S0_YQ), seg(0, 0, wire::S0_YQ))
            .unwrap();
        let b = db
            .create(Pin::new(1, 0, wire::S1_YQ), seg(1, 0, wire::S1_YQ))
            .unwrap();
        let shared = seg(0, 0, wire::single(Dir::East, 3));
        let pip = Pip::new(wire::out(0), wire::single(Dir::East, 3));
        db.add_pip(a, RowCol::new(0, 0), pip, shared).unwrap();
        let err = db.add_pip(b, RowCol::new(0, 0), pip, shared).unwrap_err();
        assert!(matches!(err, RouteError::Contention { owner: Some(o), .. } if o == a));
        // Re-claiming by the same net is allowed (branch reuse).
        db.add_pip(a, RowCol::new(0, 0), pip, shared).unwrap();
    }

    #[test]
    fn remove_pip_releases_segment() {
        let mut db = db();
        let a = db
            .create(Pin::new(0, 0, wire::S0_YQ), seg(0, 0, wire::S0_YQ))
            .unwrap();
        let target = seg(0, 0, wire::out(3));
        let pip = Pip::new(wire::S0_YQ, wire::out(3));
        db.add_pip(a, RowCol::new(0, 0), pip, target).unwrap();
        assert!(db.is_used(target));
        assert!(db.remove_pip(a, RowCol::new(0, 0), pip, target));
        assert!(!db.is_used(target));
        assert!(
            !db.remove_pip(a, RowCol::new(0, 0), pip, target),
            "double remove"
        );
    }

    #[test]
    fn remove_net_releases_everything() {
        let mut db = db();
        let src = seg(0, 0, wire::S0_YQ);
        let a = db.create(Pin::new(0, 0, wire::S0_YQ), src).unwrap();
        let t1 = seg(0, 0, wire::out(3));
        let t2 = seg(0, 0, wire::single(Dir::East, 1));
        db.add_pip(
            a,
            RowCol::new(0, 0),
            Pip::new(wire::S0_YQ, wire::out(3)),
            t1,
        )
        .unwrap();
        db.add_pip(
            a,
            RowCol::new(0, 0),
            Pip::new(wire::out(3), wire::single(Dir::East, 1)),
            t2,
        )
        .unwrap();
        db.add_sink(a, Pin::new(0, 1, wire::S0_F3));
        assert_eq!(db.used_segments(), 3);
        let net = db.remove_net(a).unwrap();
        assert_eq!(net.pips.len(), 2);
        assert_eq!(net.sinks.len(), 1);
        assert_eq!(db.used_segments(), 0);
        assert!(db.is_empty());
        assert!(db.remove_net(a).is_none());
    }

    #[test]
    fn sinks_are_deduplicated() {
        let mut db = db();
        let a = db
            .create(Pin::new(0, 0, wire::S0_YQ), seg(0, 0, wire::S0_YQ))
            .unwrap();
        let sink = Pin::new(3, 3, wire::S0_F3);
        db.add_sink(a, sink);
        db.add_sink(a, sink);
        assert_eq!(db.net(a).unwrap().sinks.len(), 1);
        db.remove_sink(a, sink);
        assert!(db.net(a).unwrap().sinks.is_empty());
    }
}
