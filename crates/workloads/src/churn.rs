//! Continuous compose / relocate / replace churn over RTP cores.
//!
//! The paper's run-time model (§5) is cores arriving, moving and being
//! swapped while the design runs. This module drives that model for
//! thousands of steps against the `jroute-svc` batch front-end: a
//! [`ChurnScenario`] owns a [`RoutingService`], a
//! [`jroute_cores::Floorplan`] and a seeded [`DetRng`], and each
//! [`ChurnScenario::step`] performs one churn action —
//!
//! * **compose** — first-fit place a new core and atomically route its
//!   nets (`Replace { remove: [], add }`: all-or-nothing, like a core);
//! * **relocate** — place a second region, translate the core's nets to
//!   it, and atomically swap old for new (`Replace`);
//! * **replace** — swap the core's nets for a different variant in the
//!   same region;
//! * **retire** — unroute the core and free its region;
//!
//! — then runs the batch and audits the committed state (claim-vs-NetDb
//! leak check, net-count census, monotonic service counters). Any
//! violation is returned as a [`ChurnViolation`]; a clean soak of N
//! steps is N `Ok` results.
//!
//! Every submission is simultaneously recorded into a
//! [`Trace`](jroute_svc::Trace), so a finished soak can be replayed
//! into a *fresh* deterministic service and the two censuses compared —
//! the strongest end-to-end check the scenario corpus has (and the
//! `e16_scenarios` fixture source).
//!
//! The telemetry loop closes here too: [`ChurnScenario::retune`] folds
//! the recorder's window through [`jroute::tuner::TunerReport`] and
//! applies the derived maze budget to the service for subsequent steps.

use detrand::DetRng;
use jroute::pathfinder::{NetSpec, PathFinderConfig, PathFinderResult};
use jroute::tuner::TunerReport;
use jroute::Pin;
use jroute_cores::floorplan::{Floorplan, Region, RegionId};
use jroute_obs::Recorder;
use jroute_svc::{RequestId, RequestKind, RoutingService, ServiceConfig, Trace, TraceId, TraceOp};
use virtex::wire::{self, slice_in_pin};
use virtex::{Device, RowCol};

/// Knobs of a churn scenario.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// Core footprint rows.
    pub core_rows: u16,
    /// Core footprint columns.
    pub core_cols: u16,
    /// Nets per core (all routed/torn as one atomic request).
    pub nets_per_core: usize,
    /// Ceiling on simultaneously live cores; composes beyond it are
    /// skipped in favour of churning the live set.
    pub max_live_cores: usize,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            core_rows: 3,
            core_cols: 3,
            nets_per_core: 3,
            max_live_cores: 6,
        }
    }
}

/// What one step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnAction {
    /// Placed and routed a new core.
    Compose,
    /// Moved a core to a different region.
    Relocate,
    /// Swapped a core's nets for a new variant in place.
    Replace,
    /// Unrouted a core and freed its region.
    Retire,
}

/// One audited churn step.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// 0-based step index.
    pub step: usize,
    /// Action attempted.
    pub action: ChurnAction,
    /// Whether the service committed it (a congested or rejected request
    /// leaves the previous state intact — that is not a violation).
    pub committed: bool,
    /// Live cores after the step.
    pub live_cores: usize,
    /// Live nets after the step.
    pub live_nets: usize,
}

/// An invariant the audit caught broken. Any of these failing means the
/// service corrupted committed state — the soak must abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnViolation {
    /// Claim table and net database disagree (leaked or lost segments).
    LeakedClaims {
        /// Step that caught it.
        step: usize,
        /// Disagreeing claim-table slots.
        slots: usize,
    },
    /// The database's net count does not match the live-core bookkeeping.
    NetCount {
        /// Step that caught it.
        step: usize,
        /// Nets in the database.
        db: usize,
        /// Nets the live cores should own.
        expected: usize,
    },
    /// A cumulative service counter went backwards.
    CounterRegressed {
        /// Step that caught it.
        step: usize,
        /// Counter name.
        name: &'static str,
        /// Previous value.
        prev: u64,
        /// Current (smaller) value.
        now: u64,
    },
    /// The submission queue rejected a scenario request (the scenario
    /// always drains between steps, so this means the queue is
    /// misconfigured for the core size).
    QueueFull,
}

impl std::fmt::Display for ChurnViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnViolation::LeakedClaims { step, slots } => {
                write!(
                    f,
                    "step {step}: {slots} claim slots disagree with the database"
                )
            }
            ChurnViolation::NetCount { step, db, expected } => {
                write!(
                    f,
                    "step {step}: database holds {db} nets, cores own {expected}"
                )
            }
            ChurnViolation::CounterRegressed {
                step,
                name,
                prev,
                now,
            } => write!(f, "step {step}: counter {name} regressed {prev} -> {now}"),
            ChurnViolation::QueueFull => write!(f, "submission queue full mid-scenario"),
        }
    }
}

impl std::error::Error for ChurnViolation {}

/// Cumulative counters the audit requires to be monotonic.
const MONOTONIC: [&str; 4] = ["svc.batches", "svc.executed", "svc.routed", "svc.replaced"];

#[derive(Debug)]
struct LiveCore {
    region_id: RegionId,
    region: Region,
    /// Committed request currently owning the core's nets.
    owner: RequestId,
    /// The same request in the trace-id namespace.
    trace_owner: TraceId,
    specs: Vec<NetSpec>,
}

/// The churn soak driver. See the module docs for the step semantics.
#[derive(Debug)]
pub struct ChurnScenario<'d> {
    svc: RoutingService<'d>,
    fp: Floorplan,
    rng: DetRng,
    params: ChurnParams,
    trace: Trace,
    live: Vec<LiveCore>,
    step: usize,
    submitted: u32,
    next_region: RegionId,
    counters: Vec<(&'static str, u64)>,
}

impl<'d> ChurnScenario<'d> {
    /// Scenario over `dev`. The config's `audit` flag is forced on —
    /// the per-step leak check is the point of the soak. Use a
    /// [`jroute_svc::ExecMode::Deterministic`] mode if the trace will
    /// be replayed for census comparison.
    pub fn new(dev: &'d Device, mut cfg: ServiceConfig, params: ChurnParams, seed: u64) -> Self {
        cfg.audit = true;
        Self::with_recorder(dev, cfg, params, seed, Recorder::disabled())
    }

    /// [`ChurnScenario::new`] with a live recorder — required for
    /// [`ChurnScenario::retune`] to have telemetry to read.
    pub fn with_recorder(
        dev: &'d Device,
        mut cfg: ServiceConfig,
        params: ChurnParams,
        seed: u64,
        obs: Recorder,
    ) -> Self {
        cfg.audit = true;
        ChurnScenario {
            svc: RoutingService::with_recorder(dev, cfg, obs),
            fp: Floorplan::new(dev.dims()),
            rng: DetRng::seed_from_u64(seed),
            params,
            trace: Trace::new(dev.family()),
            live: Vec::new(),
            step: 0,
            submitted: 0,
            next_region: 0,
            counters: MONOTONIC.iter().map(|&n| (n, 0)).collect(),
        }
    }

    /// The service (committed state, recorder).
    pub fn svc(&self) -> &RoutingService<'d> {
        &self.svc
    }

    /// The request trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Live cores.
    pub fn live_cores(&self) -> usize {
        self.live.len()
    }

    /// Nets the live cores own.
    pub fn live_nets(&self) -> usize {
        self.live.iter().map(|c| c.specs.len()).sum()
    }

    /// Specs of every live net — the incremental negotiator's input.
    pub fn live_specs(&self) -> Vec<NetSpec> {
        self.live
            .iter()
            .flat_map(|c| c.specs.iter().cloned())
            .collect()
    }

    /// Steps executed.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Run the unified PathFinder negotiator over the live nets (a
    /// from-scratch legality cross-check of the scenario's current
    /// demand) through the service — which applies its thread count and
    /// deterministic policy, and whose recorder catches the wave/search
    /// telemetry in the same window the tuner reads.
    pub fn negotiate(&self, cfg: &PathFinderConfig) -> jroute::Result<PathFinderResult> {
        self.svc.negotiate(&self.live_specs(), cfg)
    }

    /// Fold the recorder's current window through the tuner and apply
    /// the derived maze options to the service for subsequent steps.
    /// Returns the tuned PathFinder config (for callers that also
    /// negotiate), or `None` when the window holds no search telemetry.
    pub fn retune(&mut self, base: &PathFinderConfig) -> Option<PathFinderConfig> {
        let report = self.svc.recorder().report();
        let tuner = TunerReport::from_report(&report)?;
        let tuned = tuner.tune(base);
        self.svc.set_maze(tuned.maze.clone());
        Some(tuned)
    }

    /// Execute one churn action, run the batch, audit. `Ok` carries what
    /// happened; `Err` means committed state is corrupt and the soak
    /// should abort.
    pub fn step(&mut self) -> Result<StepOutcome, ChurnViolation> {
        let step = self.step;
        self.step += 1;
        let roll: u32 = self.rng.gen_range(0..100u32);
        let action =
            if self.live.len() < 2 || (self.live.len() < self.params.max_live_cores && roll < 35) {
                ChurnAction::Compose
            } else if roll < 55 {
                ChurnAction::Relocate
            } else if roll < 80 {
                ChurnAction::Replace
            } else {
                ChurnAction::Retire
            };
        let committed = match action {
            ChurnAction::Compose => self.compose(step)?,
            ChurnAction::Relocate => self.relocate(step)?,
            ChurnAction::Replace => self.replace(step)?,
            ChurnAction::Retire => self.retire(step)?,
        };
        Ok(StepOutcome {
            step,
            action,
            committed,
            live_cores: self.live.len(),
            live_nets: self.live_nets(),
        })
    }

    /// Nets of a core occupying `region`: sources and sinks on distinct
    /// tiles inside it. Regions are disjoint, so per-core uniqueness
    /// gives global uniqueness for free.
    fn core_netlist(&mut self, region: Region) -> Vec<NetSpec> {
        let mut used_src = std::collections::HashSet::new();
        let mut used_sink = std::collections::HashSet::new();
        let mut specs = Vec::with_capacity(self.params.nets_per_core);
        let mut guard = 0usize;
        while specs.len() < self.params.nets_per_core {
            guard += 1;
            assert!(
                guard < self.params.nets_per_core * 1000,
                "core netlist starved — footprint too small for {} nets",
                self.params.nets_per_core
            );
            let tile = |rng: &mut DetRng| {
                RowCol::new(
                    region.origin.row + rng.gen_range(0..region.rows),
                    region.origin.col + rng.gen_range(0..region.cols),
                )
            };
            let src_rc = tile(&mut self.rng);
            let sink_rc = tile(&mut self.rng);
            if src_rc == sink_rc {
                continue;
            }
            let src = Pin::at(
                src_rc,
                wire::slice_out(self.rng.gen_range(0..2usize), self.rng.gen_range(0..4u8)),
            );
            let sink = Pin::at(
                sink_rc,
                wire::slice_in(
                    self.rng.gen_range(0..2usize),
                    self.rng.gen_range(slice_in_pin::F1..=slice_in_pin::G4),
                ),
            );
            if !used_src.insert(src) {
                continue;
            }
            if !used_sink.insert(sink) {
                used_src.remove(&src);
                continue;
            }
            specs.push(NetSpec::new(src, vec![sink]));
        }
        specs
    }

    /// Submit one request (recording it), run the batch, audit, and
    /// report whether the request committed.
    fn run_one(
        &mut self,
        step: usize,
        kind: RequestKind,
        op: TraceOp,
    ) -> Result<(RequestId, TraceId, bool), ChurnViolation> {
        let trace_id = self.trace.record(128, None, op);
        debug_assert_eq!(trace_id, self.submitted);
        self.submitted += 1;
        let Ok(id) = self.svc.submit(kind) else {
            return Err(ChurnViolation::QueueFull);
        };
        let report = self.svc.run_batch();
        self.trace.end_batch();
        if let Some(slots) = report.leaked_claims {
            if slots != 0 {
                return Err(ChurnViolation::LeakedClaims { step, slots });
            }
        }
        let committed = report.outcome(id).is_some_and(|o| o.is_success());
        self.audit(step)?;
        Ok((id, trace_id, committed))
    }

    /// Post-batch invariants beyond the service's own leak check.
    fn audit(&mut self, step: usize) -> Result<(), ChurnViolation> {
        let db = self.svc.db().len();
        let expected = self.live_nets();
        if db != expected {
            return Err(ChurnViolation::NetCount { step, db, expected });
        }
        let report = self.svc.recorder().report();
        if report.enabled {
            for (name, prev) in &mut self.counters {
                let now = report.counter(name).unwrap_or(0);
                if now < *prev {
                    return Err(ChurnViolation::CounterRegressed {
                        step,
                        name,
                        prev: *prev,
                        now,
                    });
                }
                *prev = now;
            }
        }
        Ok(())
    }

    fn compose(&mut self, step: usize) -> Result<bool, ChurnViolation> {
        let (rows, cols) = (self.params.core_rows, self.params.core_cols);
        let region_id = self.next_region;
        let Some(origin) = self.fp.place(region_id, rows, cols) else {
            // Device full: churn the live set instead.
            return self.retire(step);
        };
        self.next_region += 1;
        let region = Region { origin, rows, cols };
        let specs = self.core_netlist(region);
        // Note: audit() runs inside run_one *before* the live list knows
        // about this core, so account for it through `pending_nets`.
        self.live.push(LiveCore {
            region_id,
            region,
            owner: 0,
            trace_owner: 0,
            specs: specs.clone(),
        });
        let res = self.run_one(
            step,
            RequestKind::Replace {
                remove: vec![],
                add: specs.clone(),
            },
            TraceOp::Replace {
                remove: vec![],
                add: specs,
            },
        );
        match res {
            Ok((id, tid, true)) => {
                let core = self.live.last_mut().expect("just pushed");
                core.owner = id;
                core.trace_owner = tid;
                Ok(true)
            }
            Ok((_, _, false)) => {
                self.live.pop();
                self.fp.release(region_id);
                // The failed attempt changed nothing; re-audit with the
                // bookkeeping rolled back.
                self.audit(step)?;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    fn pick_core(&mut self) -> usize {
        self.rng.gen_range(0..self.live.len())
    }

    fn relocate(&mut self, step: usize) -> Result<bool, ChurnViolation> {
        let idx = self.pick_core();
        let (rows, cols) = (self.live[idx].region.rows, self.live[idx].region.cols);
        let region_id = self.next_region;
        let Some(origin) = self.fp.place(region_id, rows, cols) else {
            // Nowhere to move: replace in place instead.
            return self.replace(step);
        };
        self.next_region += 1;
        let new_region = Region { origin, rows, cols };
        let old = &self.live[idx];
        let (old_origin, old_region_id) = (old.region.origin, old.region_id);
        // Translate the core's nets to the new origin: same footprint,
        // same internal topology, different tiles.
        let dr = origin.row as i32 - old_origin.row as i32;
        let dc = origin.col as i32 - old_origin.col as i32;
        let shift = |pin: &Pin| {
            Pin::at(
                RowCol::new(
                    (pin.rc.row as i32 + dr) as u16,
                    (pin.rc.col as i32 + dc) as u16,
                ),
                pin.wire,
            )
        };
        let moved: Vec<NetSpec> = old
            .specs
            .iter()
            .map(|s| {
                NetSpec::new(
                    shift(&s.source),
                    s.sinks.iter().map(&shift).collect::<Vec<_>>(),
                )
            })
            .collect();
        let (owner, trace_owner) = (old.owner, old.trace_owner);
        // Pre-commit the bookkeeping so the mid-run audit sees the
        // post-swap world; roll back on failure.
        let saved = std::mem::replace(
            &mut self.live[idx],
            LiveCore {
                region_id,
                region: new_region,
                owner,
                trace_owner,
                specs: moved.clone(),
            },
        );
        let res = self.run_one(
            step,
            RequestKind::Replace {
                remove: vec![owner],
                add: moved.clone(),
            },
            TraceOp::Replace {
                remove: vec![trace_owner],
                add: moved,
            },
        );
        match res {
            Ok((id, tid, true)) => {
                self.fp.release(old_region_id);
                let core = &mut self.live[idx];
                core.owner = id;
                core.trace_owner = tid;
                Ok(true)
            }
            Ok((_, _, false)) => {
                self.live[idx] = saved;
                self.fp.release(region_id);
                self.audit(step)?;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    fn replace(&mut self, step: usize) -> Result<bool, ChurnViolation> {
        let idx = self.pick_core();
        let region = self.live[idx].region;
        let variant = self.core_netlist(region);
        let (owner, trace_owner) = (self.live[idx].owner, self.live[idx].trace_owner);
        let saved = std::mem::replace(&mut self.live[idx].specs, variant.clone());
        let res = self.run_one(
            step,
            RequestKind::Replace {
                remove: vec![owner],
                add: variant.clone(),
            },
            TraceOp::Replace {
                remove: vec![trace_owner],
                add: variant,
            },
        );
        match res {
            Ok((id, tid, true)) => {
                let core = &mut self.live[idx];
                core.owner = id;
                core.trace_owner = tid;
                Ok(true)
            }
            Ok((_, _, false)) => {
                self.live[idx].specs = saved;
                self.audit(step)?;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    fn retire(&mut self, step: usize) -> Result<bool, ChurnViolation> {
        if self.live.is_empty() {
            return Ok(false);
        }
        let idx = self.pick_core();
        let core = self.live.swap_remove(idx);
        let res = self.run_one(
            step,
            RequestKind::Unroute(core.owner),
            TraceOp::Unroute(core.trace_owner),
        );
        match res {
            Ok((_, _, true)) => {
                self.fp.release(core.region_id);
                Ok(true)
            }
            Ok((_, _, false)) => {
                // An unroute of a committed request cannot fail unless
                // state is corrupt; surface it as a count mismatch.
                self.live.push(core);
                self.audit(step)?;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jroute_svc::ExecMode;
    use virtex::Family;

    fn det_cfg(threads: usize, seed: u64) -> ServiceConfig {
        ServiceConfig {
            threads,
            mode: ExecMode::Deterministic { seed },
            audit: true,
            ..Default::default()
        }
    }

    #[test]
    fn a_short_soak_stays_clean_and_replays() {
        let dev = Device::new(Family::Xcv50);
        let mut sc = ChurnScenario::new(&dev, det_cfg(2, 5), ChurnParams::default(), 5);
        let mut actions = std::collections::HashSet::new();
        for _ in 0..60 {
            let out = sc.step().expect("no violations");
            actions.insert(out.action);
        }
        assert!(sc.live_cores() >= 2, "the scenario keeps cores live");
        assert!(
            actions.len() >= 3,
            "60 steps should exercise several action kinds, saw {actions:?}"
        );
        // The recorded trace replays into a fresh service onto the
        // identical census.
        let mut fresh = RoutingService::new(&dev, det_cfg(2, 5));
        sc.trace().replay(&mut fresh).expect("trace replays");
        assert_eq!(fresh.db().census(), sc.svc().db().census());
    }

    #[test]
    fn negotiator_routes_the_live_demand() {
        let dev = Device::new(Family::Xcv50);
        let mut sc = ChurnScenario::new(&dev, det_cfg(1, 9), ChurnParams::default(), 9);
        for _ in 0..20 {
            sc.step().unwrap();
        }
        let res = sc
            .negotiate(&PathFinderConfig::default())
            .expect("pins resolve");
        assert!(res.legal, "live demand must be routable from scratch");
        assert_eq!(res.nets.len(), sc.live_nets());
    }

    #[test]
    fn retune_applies_telemetry_derived_budgets() {
        let dev = Device::new(Family::Xcv50);
        let mut sc = ChurnScenario::with_recorder(
            &dev,
            det_cfg(1, 3),
            ChurnParams::default(),
            3,
            Recorder::enabled(),
        );
        let base = PathFinderConfig::default();
        assert!(
            sc.retune(&base).is_none(),
            "no searches yet — nothing to tune from"
        );
        for _ in 0..10 {
            sc.step().unwrap();
        }
        sc.negotiate(&base).unwrap();
        let tuned = sc.retune(&base).expect("telemetry present");
        assert!(tuned.maze.max_nodes <= base.maze.max_nodes);
    }
}
