//! Multi-tenant submission mixes for the `svc::server` front-end.
//!
//! The server (DESIGN.md §3.8) routes one device shard per tenant; its
//! stress tests and the E19 bench need traces whose requests interleave
//! tenants the way independent producers would, while every
//! `Unroute`/`Replace` victim stays inside the issuing tenant's shard —
//! the invariant [`Trace::validate`] enforces. [`tenant_mix`] generates
//! exactly that: a tenant-tagged [`Trace`] of route / unroute / replace
//! traffic, round-robin-ish across tenants with seeded jitter, victims
//! drawn only from the tenant's own earlier routes, batch boundaries cut
//! every [`TenantMixParams::batch_every`] global submissions.
//!
//! The trace is self-validating (the generator panics if it ever emits a
//! cross-tenant or forward victim reference), so a seeded call is a
//! ready-to-replay server scenario: feed it to `server::replay_trace`,
//! or project per-tenant shards with [`Trace::subtrace`] and replay each
//! against a [`SequentialModel`](jroute_svc::model::SequentialModel).

use crate::scenarios::fanout_spec;
use detrand::DetRng;
use jroute_svc::{TenantId, Trace, TraceId, TraceOp};
use virtex::{Device, RowCol};

/// Knobs of a multi-tenant mix.
#[derive(Debug, Clone)]
pub struct TenantMixParams {
    /// Number of tenant shards (≥ 1).
    pub tenants: u16,
    /// Requests per tenant.
    pub per_tenant: usize,
    /// Cut a recorded batch boundary every this many global submissions
    /// (0 = single batch).
    pub batch_every: usize,
    /// Sinks per routed net.
    pub fanout: usize,
    /// CLB radius sinks are scattered within.
    pub span: u16,
    /// Percent (0–100) of post-warmup requests that unroute a live net.
    pub unroute_pct: u32,
    /// Percent (0–100) of post-warmup requests that atomically replace a
    /// live net with a fresh one.
    pub replace_pct: u32,
}

impl Default for TenantMixParams {
    fn default() -> Self {
        TenantMixParams {
            tenants: 2,
            per_tenant: 16,
            batch_every: 8,
            fanout: 3,
            span: 4,
            unroute_pct: 20,
            replace_pct: 20,
        }
    }
}

/// Generate a tenant-tagged trace of interleaved route / unroute /
/// replace traffic over `dev`. See the module docs for the shape.
///
/// Priorities cycle 0–3 per tenant so in-tenant ordering is exercised;
/// deadlines are left unset (the server stress tests add their own).
///
/// # Panics
///
/// Panics if `params.tenants == 0` or the emitted trace fails
/// [`Trace::validate`] — the latter would be a generator bug.
pub fn tenant_mix(dev: &Device, params: &TenantMixParams, rng: &mut DetRng) -> Trace {
    assert!(params.tenants >= 1, "need at least one tenant");
    let dims = dev.dims();
    let mut trace = Trace::new(dev.family());
    // Per-tenant pool of live (routed, not yet victimised) trace ids.
    let mut live: Vec<Vec<TraceId>> = vec![Vec::new(); usize::from(params.tenants)];
    let mut emitted = 0usize;
    let total = usize::from(params.tenants) * params.per_tenant;
    // Interleave: walk tenants round-robin but let the rng swap-ahead so
    // the order is not strictly cyclic (producers race in practice).
    let mut order: Vec<TenantId> = (0..params.tenants)
        .flat_map(|t| std::iter::repeat_n(t, params.per_tenant))
        .collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for &tenant in &order {
        let shard = &mut live[usize::from(tenant)];
        let roll = rng.gen_range(0..100u32);
        let spec_for = |rng: &mut DetRng| {
            let source = RowCol::new(
                rng.gen_range(1..dims.rows - 1),
                rng.gen_range(1..dims.cols - 1),
            );
            fanout_spec(dev, source, params.fanout, params.span, rng)
        };
        let op = if !shard.is_empty() && roll < params.unroute_pct {
            let victim = shard.swap_remove(rng.gen_range(0..shard.len()));
            TraceOp::Unroute(victim)
        } else if !shard.is_empty() && roll < params.unroute_pct + params.replace_pct {
            let victim = shard.swap_remove(rng.gen_range(0..shard.len()));
            TraceOp::Replace {
                remove: vec![victim],
                add: vec![spec_for(rng)],
            }
        } else {
            TraceOp::Route(spec_for(rng))
        };
        let routes = matches!(op, TraceOp::Route(_) | TraceOp::Replace { .. });
        let priority = (emitted % 4) as u8;
        let id = trace.record_for(tenant, priority, None, op);
        if routes {
            live[usize::from(tenant)].push(id);
        }
        emitted += 1;
        if params.batch_every > 0 && emitted.is_multiple_of(params.batch_every) && emitted < total {
            trace.end_batch();
        }
    }
    trace
        .validate()
        .expect("tenant_mix emits only in-tenant, backward victim references");
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::Family;

    fn mix(seed: u64, params: &TenantMixParams) -> Trace {
        let dev = Device::new(Family::Xcv50);
        let mut rng = DetRng::seed_from_u64(seed);
        tenant_mix(&dev, params, &mut rng)
    }

    #[test]
    fn generates_requested_volume_across_all_tenants() {
        let params = TenantMixParams {
            tenants: 3,
            per_tenant: 10,
            ..Default::default()
        };
        let trace = mix(7, &params);
        assert_eq!(trace.len(), 30);
        assert_eq!(trace.tenant_count(), 3);
        for t in 0..3u16 {
            assert_eq!(
                trace.iter().filter(|r| r.tenant == t).count(),
                10,
                "tenant {t} volume"
            );
        }
    }

    #[test]
    fn batch_boundaries_cut_at_the_requested_cadence() {
        let params = TenantMixParams {
            tenants: 2,
            per_tenant: 8,
            batch_every: 4,
            ..Default::default()
        };
        let trace = mix(8, &params);
        assert_eq!(trace.batches.len(), 4);
        assert!(trace.batches.iter().all(|b| b.len() == 4));
    }

    #[test]
    fn mix_contains_mutating_ops_and_stays_valid() {
        let params = TenantMixParams {
            tenants: 4,
            per_tenant: 32,
            unroute_pct: 30,
            replace_pct: 30,
            ..Default::default()
        };
        let trace = mix(9, &params);
        let unroutes = trace
            .iter()
            .filter(|r| matches!(r.op, TraceOp::Unroute(_)))
            .count();
        let replaces = trace
            .iter()
            .filter(|r| matches!(r.op, TraceOp::Replace { .. }))
            .count();
        assert!(unroutes > 0, "mix exercises unroute");
        assert!(replaces > 0, "mix exercises replace");
        // validate() ran inside the generator; run it again on the
        // value the caller sees.
        trace.validate().unwrap();
    }

    #[test]
    fn identical_seeds_reproduce_identical_traces() {
        use virtex::codec::Codec;
        let params = TenantMixParams::default();
        let (a, b) = (mix(42, &params), mix(42, &params));
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert_ne!(a.to_bytes(), mix(43, &params).to_bytes());
    }
}
