//! Adversarial netlist generators.
//!
//! The random and window netlists in [`crate::netgen`] measure typical
//! behaviour; these generators construct the traffic patterns that are
//! *designed* to hurt, the scenario-corpus counterpart of the congestion
//! stressors in the parallel-routing literature (arXiv:2407.00009):
//!
//! * [`congestion_cliques`] — groups of nets whose bounding boxes all
//!   overlap pairwise, so PathFinder-style region pruning buys nothing
//!   inside a clique and every member negotiates against every other;
//! * [`long_line_starvation`] — chip-spanning nets packed into a few
//!   rows, all competing for the same east-west corridor (and, when long
//!   lines are enabled, for the one long line per row that covers it);
//! * [`hotspot_storm`] — fan-in traffic from all over the device
//!   converging on one small window, the §5 run-time hotspot that
//!   saturates a neighbourhood's entry wires.
//!
//! All generators are seeded ([`detrand::DetRng`]) and uphold the
//! netlist validity contract the property suite checks: every pin is
//! on-device, sources are globally distinct, and sinks are globally
//! distinct.

use detrand::{DetRng, SliceRandom};
use jroute::pathfinder::NetSpec;
use jroute::Pin;
use virtex::wire::{self, slice_in_pin};
use virtex::{Device, RowCol};

/// Shared dedup state: the uniqueness contract is global per generated
/// netlist, matching [`crate::netgen::random_netlist`].
#[derive(Default)]
struct PinPool {
    sources: std::collections::HashSet<Pin>,
    sinks: std::collections::HashSet<Pin>,
}

impl PinPool {
    /// A not-yet-used slice-output pin at `rc`, if any remains.
    fn source_at(&mut self, rc: RowCol, rng: &mut DetRng) -> Option<Pin> {
        let mut candidates: Vec<Pin> = (0..2)
            .flat_map(|s| (0..4).map(move |p| Pin::at(rc, wire::slice_out(s, p))))
            .filter(|p| !self.sources.contains(p))
            .collect();
        candidates.shuffle(rng);
        let pin = candidates.first().copied()?;
        self.sources.insert(pin);
        Some(pin)
    }

    /// A not-yet-used LUT-input pin at `rc`, if any remains.
    fn sink_at(&mut self, rc: RowCol, rng: &mut DetRng) -> Option<Pin> {
        let mut candidates: Vec<Pin> = (0..2usize)
            .flat_map(|s| {
                (slice_in_pin::F1..=slice_in_pin::G4)
                    .map(move |p| Pin::at(rc, wire::slice_in(s, p)))
            })
            .filter(|p| !self.sinks.contains(p))
            .collect();
        candidates.shuffle(rng);
        let pin = candidates.first().copied()?;
        self.sinks.insert(pin);
        Some(pin)
    }
}

/// `cliques` groups of `nets_per_clique` nets each, every net crossing
/// its clique's `window`-sized square, so all bounding boxes within a
/// clique overlap pairwise (each spans the full window). Windows are
/// placed round-robin across the device and may themselves overlap on
/// small fabrics, which only sharpens the contention.
///
/// Panics if the device cannot host the requested load (starvation
/// guard, same policy as [`crate::netgen`]).
pub fn congestion_cliques(
    dev: &Device,
    cliques: usize,
    nets_per_clique: usize,
    window: u16,
    rng: &mut DetRng,
) -> Vec<NetSpec> {
    let d = dev.dims();
    let window = window.clamp(2, d.rows.min(d.cols));
    let mut pool = PinPool::default();
    let mut specs = Vec::with_capacity(cliques * nets_per_clique);
    for _ in 0..cliques {
        let origin = RowCol::new(
            rng.gen_range(0..=d.rows - window),
            rng.gen_range(0..=d.cols - window),
        );
        let mut made = 0usize;
        let mut guard = 0usize;
        while made < nets_per_clique {
            guard += 1;
            assert!(
                guard < nets_per_clique * 1000,
                "congestion clique starved — window {window} too small for {nets_per_clique} nets"
            );
            // West column to east column of the window, with the source
            // in the top half and the sink in the bottom half (or
            // mirrored): every bbox spans the window's columns and
            // contains its middle row, so all clique members overlap
            // pairwise.
            let mid = window / 2;
            let (src_row, sink_row) = if rng.gen_range(0..2u32) == 0 {
                (rng.gen_range(0..=mid), rng.gen_range(mid..window))
            } else {
                (rng.gen_range(mid..window), rng.gen_range(0..=mid))
            };
            let src_rc = RowCol::new(origin.row + src_row, origin.col);
            let sink_rc = RowCol::new(origin.row + sink_row, origin.col + window - 1);
            let Some(src) = pool.source_at(src_rc, rng) else {
                continue;
            };
            let Some(sink) = pool.sink_at(sink_rc, rng) else {
                pool.sources.remove(&src);
                continue;
            };
            specs.push(NetSpec::new(src, vec![sink]));
            made += 1;
        }
    }
    specs
}

/// `nets` chip-spanning nets confined to `rows` adjacent rows: every net
/// runs from the westmost columns to the eastmost, so all of them fight
/// for the same horizontal corridor. With long lines enabled this
/// starves the per-row long lines; without, it saturates the hex
/// corridor the same way.
pub fn long_line_starvation(
    dev: &Device,
    nets: usize,
    rows: u16,
    rng: &mut DetRng,
) -> Vec<NetSpec> {
    let d = dev.dims();
    let rows = rows.clamp(1, d.rows);
    let top = rng.gen_range(0..=d.rows - rows);
    let mut pool = PinPool::default();
    let mut specs = Vec::with_capacity(nets);
    let mut guard = 0usize;
    while specs.len() < nets {
        guard += 1;
        assert!(
            guard < nets * 1000,
            "long-line starvation starved — {rows} rows cannot host {nets} spanning nets"
        );
        let src_rc = RowCol::new(
            top + rng.gen_range(0..rows),
            rng.gen_range(0..2.min(d.cols)),
        );
        let sink_rc = RowCol::new(
            top + rng.gen_range(0..rows),
            d.cols - 1 - rng.gen_range(0..2.min(d.cols)),
        );
        let Some(src) = pool.source_at(src_rc, rng) else {
            continue;
        };
        let Some(sink) = pool.sink_at(sink_rc, rng) else {
            pool.sources.remove(&src);
            continue;
        };
        specs.push(NetSpec::new(src, vec![sink]));
    }
    specs
}

/// `nets` nets converging on a `window`-sized square at `origin`: every
/// sink is inside the window, every source outside it. The classic
/// run-time hotspot — the window's entry wires saturate long before the
/// rest of the device sees any pressure.
pub fn hotspot_storm(
    dev: &Device,
    origin: RowCol,
    window: u16,
    nets: usize,
    rng: &mut DetRng,
) -> Vec<NetSpec> {
    let d = dev.dims();
    let window = window.clamp(1, d.rows.min(d.cols));
    assert!(
        origin.row + window <= d.rows && origin.col + window <= d.cols,
        "hotspot window off-device"
    );
    let inside = |rc: RowCol| {
        (origin.row..origin.row + window).contains(&rc.row)
            && (origin.col..origin.col + window).contains(&rc.col)
    };
    let mut pool = PinPool::default();
    let mut specs = Vec::with_capacity(nets);
    let mut guard = 0usize;
    while specs.len() < nets {
        guard += 1;
        assert!(
            guard < nets * 2000,
            "hotspot storm starved — window {window} cannot sink {nets} nets"
        );
        let src_rc = RowCol::new(rng.gen_range(0..d.rows), rng.gen_range(0..d.cols));
        if inside(src_rc) {
            continue;
        }
        let sink_rc = RowCol::new(
            origin.row + rng.gen_range(0..window),
            origin.col + rng.gen_range(0..window),
        );
        let Some(src) = pool.source_at(src_rc, rng) else {
            continue;
        };
        let Some(sink) = pool.sink_at(sink_rc, rng) else {
            pool.sources.remove(&src);
            continue;
        };
        specs.push(NetSpec::new(src, vec![sink]));
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{BBox, Family};

    fn dev() -> Device {
        Device::new(Family::Xcv50)
    }

    fn rng(seed: u64) -> DetRng {
        DetRng::seed_from_u64(seed)
    }

    fn assert_valid(dev: &Device, specs: &[NetSpec]) {
        let d = dev.dims();
        let mut srcs = std::collections::HashSet::new();
        let mut sinks = std::collections::HashSet::new();
        for s in specs {
            assert!(s.source.rc.row < d.rows && s.source.rc.col < d.cols);
            assert!(srcs.insert(s.source), "duplicate source {:?}", s.source);
            for k in &s.sinks {
                assert!(k.rc.row < d.rows && k.rc.col < d.cols);
                assert!(sinks.insert(*k), "duplicate sink {k:?}");
            }
        }
    }

    #[test]
    fn cliques_overlap_pairwise_and_stay_valid() {
        let dev = dev();
        let specs = congestion_cliques(&dev, 3, 6, 5, &mut rng(1));
        assert_eq!(specs.len(), 18);
        assert_valid(&dev, &specs);
        // Within each clique every pair of terminal bboxes overlaps.
        for clique in specs.chunks(6) {
            let boxes: Vec<BBox> = clique
                .iter()
                .map(|s| {
                    let mut b = BBox::at(s.source.rc);
                    b.include(s.sinks[0].rc);
                    b
                })
                .collect();
            for (i, a) in boxes.iter().enumerate() {
                for b in &boxes[i + 1..] {
                    let overlap = a.min.row <= b.max.row
                        && b.min.row <= a.max.row
                        && a.min.col <= b.max.col
                        && b.min.col <= a.max.col;
                    assert!(overlap, "clique members {a:?} and {b:?} do not overlap");
                }
            }
        }
    }

    #[test]
    fn starvation_nets_span_the_device() {
        let dev = dev();
        let cols = dev.dims().cols;
        let specs = long_line_starvation(&dev, 8, 2, &mut rng(2));
        assert_eq!(specs.len(), 8);
        assert_valid(&dev, &specs);
        let mut rows = std::collections::HashSet::new();
        for s in &specs {
            let span = s.sinks[0].rc.col.abs_diff(s.source.rc.col);
            assert!(span >= cols - 4, "net spans only {span} columns");
            rows.insert(s.source.rc.row);
            rows.insert(s.sinks[0].rc.row);
        }
        assert!(rows.len() <= 2, "nets strayed outside the corridor");
    }

    #[test]
    fn hotspot_sinks_inside_sources_outside() {
        let dev = dev();
        let origin = RowCol::new(6, 9);
        let specs = hotspot_storm(&dev, origin, 3, 20, &mut rng(3));
        assert_eq!(specs.len(), 20);
        assert_valid(&dev, &specs);
        for s in &specs {
            let sink = s.sinks[0].rc;
            assert!(
                (6..9).contains(&sink.row) && (9..12).contains(&sink.col),
                "sink {sink} escaped the hotspot"
            );
            let src = s.source.rc;
            assert!(
                !((6..9).contains(&src.row) && (9..12).contains(&src.col)),
                "source {src} inside the hotspot"
            );
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let dev = dev();
        let a = hotspot_storm(&dev, RowCol::new(4, 4), 3, 10, &mut rng(7));
        let b = hotspot_storm(&dev, RowCol::new(4, 4), 3, 10, &mut rng(7));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.sinks, y.sinks);
        }
    }
}
