//! # jroute-workloads — workload and scenario generators for the
//! evaluation
//!
//! Deterministic (seeded) generators producing the net lists and RTR
//! scenarios used by the experiment suite (DESIGN.md §4). All generators
//! take a seeded [`detrand::DetRng`] so every experiment is reproducible
//! bit-for-bit without any external crates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod churn;
pub mod netgen;
pub mod scenarios;
pub mod tenants;

pub use adversarial::{congestion_cliques, hotspot_storm, long_line_starvation};
pub use churn::{ChurnAction, ChurnParams, ChurnScenario, ChurnViolation, StepOutcome};
pub use netgen::{random_netlist, random_pairs, window_netlist, NetlistParams};
pub use scenarios::{fanout_spec, pipeline_placements};
pub use tenants::{tenant_mix, TenantMixParams};
