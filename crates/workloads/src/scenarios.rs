//! Higher-level experiment scenarios: fan-out nets and data-flow
//! pipeline placements.

use detrand::DetRng;
use jroute::pathfinder::NetSpec;
use jroute::Pin;
use virtex::wire::{self, slice_in_pin};
use virtex::{Device, RowCol};

/// A single source with `fanout` sinks scattered within `span` CLBs —
/// the E3/E9 workload.
pub fn fanout_spec(
    dev: &Device,
    source: RowCol,
    fanout: usize,
    span: u16,
    rng: &mut DetRng,
) -> NetSpec {
    let d = dev.dims();
    let src = Pin::at(source, wire::slice_out(0, wire::slice_out_pin::YQ));
    let mut sinks = Vec::with_capacity(fanout);
    let mut used = std::collections::HashSet::new();
    let mut guard = 0;
    while sinks.len() < fanout {
        guard += 1;
        assert!(guard < fanout * 1000, "fanout spec starved");
        let r = source.row.saturating_sub(span)..=(source.row + span).min(d.rows - 1);
        let c = source.col.saturating_sub(span)..=(source.col + span).min(d.cols - 1);
        let rc = RowCol::new(rng.gen_range(r), rng.gen_range(c));
        if rc == source {
            continue;
        }
        let pin = Pin::at(
            rc,
            wire::slice_in(
                rng.gen_range(0..2usize),
                rng.gen_range(slice_in_pin::F1..=slice_in_pin::G4),
            ),
        );
        if used.insert(pin) {
            sinks.push(pin);
        }
    }
    NetSpec::new(src, sinks)
}

/// Column origins for an `n_stages`-stage data-flow pipeline of cores of
/// the given footprint, spaced `gap` columns apart starting at `start`.
/// Returns `None` if the pipeline does not fit on the device.
pub fn pipeline_placements(
    dev: &Device,
    n_stages: usize,
    footprint: (u16, u16),
    start: RowCol,
    gap: u16,
) -> Option<Vec<RowCol>> {
    let d = dev.dims();
    let (rows, cols) = footprint;
    let mut out = Vec::with_capacity(n_stages);
    let mut col = start.col;
    for _ in 0..n_stages {
        if start.row + rows > d.rows || col + cols > d.cols {
            return None;
        }
        out.push(RowCol::new(start.row, col));
        col += cols + gap;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::Family;

    #[test]
    fn fanout_spec_produces_requested_fanout() {
        let dev = Device::new(Family::Xcv50);
        let mut rng = DetRng::seed_from_u64(5);
        let spec = fanout_spec(&dev, RowCol::new(8, 12), 16, 5, &mut rng);
        assert_eq!(spec.sinks.len(), 16);
        let uniq: std::collections::HashSet<_> = spec.sinks.iter().collect();
        assert_eq!(uniq.len(), 16);
    }

    #[test]
    fn pipeline_placements_fit_or_fail() {
        let dev = Device::new(Family::Xcv50); // 16x24
        let p = pipeline_placements(&dev, 3, (4, 1), RowCol::new(2, 2), 5).unwrap();
        assert_eq!(
            p,
            vec![RowCol::new(2, 2), RowCol::new(2, 8), RowCol::new(2, 14)]
        );
        assert!(pipeline_placements(&dev, 5, (4, 1), RowCol::new(2, 2), 5).is_none());
        assert!(pipeline_placements(&dev, 1, (20, 1), RowCol::new(2, 2), 5).is_none());
    }
}
