//! Random net-list generation.

use detrand::{DetRng, SliceRandom};
use jroute::pathfinder::NetSpec;
use jroute::Pin;
use virtex::wire::{self, slice_in_pin};
use virtex::{Device, RowCol};

/// Parameters of a random netlist.
#[derive(Debug, Clone)]
pub struct NetlistParams {
    /// Number of nets.
    pub nets: usize,
    /// Sinks per net are drawn uniformly from `1..=max_fanout`.
    pub max_fanout: usize,
    /// Maximum Manhattan span from source to each sink (bounds net
    /// bounding boxes). `None` = whole chip.
    pub max_span: Option<u16>,
}

impl Default for NetlistParams {
    fn default() -> Self {
        NetlistParams {
            nets: 20,
            max_fanout: 1,
            max_span: None,
        }
    }
}

/// All source pin positions of a tile (slice outputs).
fn out_pins(rc: RowCol) -> [Pin; 8] {
    let mut i = 0;
    [(); 8].map(|_| {
        let p = Pin::at(rc, wire::slice_out(i / 4, (i % 4) as u8));
        i += 1;
        p
    })
}

/// All LUT-input pin positions of a tile.
fn in_pins(rc: RowCol) -> Vec<Pin> {
    let mut v = Vec::with_capacity(16);
    for slice in 0..2usize {
        for pin in slice_in_pin::F1..=slice_in_pin::G4 {
            v.push(Pin::at(rc, wire::slice_in(slice, pin)));
        }
    }
    v
}

fn random_tile(dev: &Device, rng: &mut DetRng) -> RowCol {
    let d = dev.dims();
    RowCol::new(rng.gen_range(0..d.rows), rng.gen_range(0..d.cols))
}

fn tile_near(dev: &Device, around: RowCol, span: u16, rng: &mut DetRng) -> RowCol {
    let d = dev.dims();
    let lo_r = around.row.saturating_sub(span);
    let hi_r = (around.row + span).min(d.rows - 1);
    let lo_c = around.col.saturating_sub(span);
    let hi_c = (around.col + span).min(d.cols - 1);
    RowCol::new(rng.gen_range(lo_r..=hi_r), rng.gen_range(lo_c..=hi_c))
}

/// Generate `params.nets` nets with globally distinct source pins and
/// distinct sink pins.
pub fn random_netlist(dev: &Device, params: &NetlistParams, rng: &mut DetRng) -> Vec<NetSpec> {
    let mut used_src = std::collections::HashSet::new();
    let mut used_sink = std::collections::HashSet::new();
    let mut specs = Vec::with_capacity(params.nets);
    let mut guard = 0usize;
    while specs.len() < params.nets {
        guard += 1;
        assert!(
            guard < params.nets * 1000,
            "netlist generation starved — device too small"
        );
        let src_rc = random_tile(dev, rng);
        let Some(&src) = out_pins(src_rc).choose(rng) else {
            continue;
        };
        if !used_src.insert(src) {
            continue;
        }
        let fanout = rng.gen_range(1..=params.max_fanout.max(1));
        let mut sinks = Vec::with_capacity(fanout);
        for _ in 0..fanout {
            for _attempt in 0..100 {
                let rc = match params.max_span {
                    Some(s) => tile_near(dev, src_rc, s, rng),
                    None => random_tile(dev, rng),
                };
                if rc == src_rc {
                    continue;
                }
                let Some(&sink) = in_pins(rc).choose(rng) else {
                    continue;
                };
                if used_sink.insert(sink) {
                    sinks.push(sink);
                    break;
                }
            }
        }
        if sinks.is_empty() {
            used_src.remove(&src);
            continue;
        }
        specs.push(NetSpec::new(src, sinks));
    }
    specs
}

/// Point-to-point pairs (fanout 1), convenience wrapper.
pub fn random_pairs(dev: &Device, n: usize, rng: &mut DetRng) -> Vec<(Pin, Pin)> {
    random_netlist(
        dev,
        &NetlistParams {
            nets: n,
            max_fanout: 1,
            max_span: None,
        },
        rng,
    )
    .into_iter()
    .map(|s| {
        let sink = s.sinks[0];
        (s.source, sink)
    })
    .collect()
}

/// Nets crammed into a `window`-sized square region — the congestion
/// stressor for experiments E4 and E8.
pub fn window_netlist(
    _dev: &Device,
    nets: usize,
    window: u16,
    origin: RowCol,
    rng: &mut DetRng,
) -> Vec<NetSpec> {
    let mut used_src = std::collections::HashSet::new();
    let mut used_sink = std::collections::HashSet::new();
    let mut specs = Vec::with_capacity(nets);
    let mut guard = 0usize;
    while specs.len() < nets {
        guard += 1;
        assert!(
            guard < nets * 2000,
            "window netlist starved — window too small for {nets} nets"
        );
        let src_rc = RowCol::new(
            origin.row + rng.gen_range(0..window),
            origin.col + rng.gen_range(0..window),
        );
        let sink_rc = RowCol::new(
            origin.row + rng.gen_range(0..window),
            origin.col + rng.gen_range(0..window),
        );
        if src_rc == sink_rc {
            continue;
        }
        let Some(&src) = out_pins(src_rc).choose(rng) else {
            continue;
        };
        let Some(&sink) = in_pins(sink_rc).choose(rng) else {
            continue;
        };
        if !used_src.insert(src) {
            continue;
        }
        if !used_sink.insert(sink) {
            used_src.remove(&src);
            continue;
        }
        specs.push(NetSpec::new(src, vec![sink]));
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::Family;

    fn rng(seed: u64) -> DetRng {
        DetRng::seed_from_u64(seed)
    }

    #[test]
    fn netlists_are_deterministic_per_seed() {
        let dev = Device::new(Family::Xcv50);
        let p = NetlistParams {
            nets: 10,
            max_fanout: 3,
            max_span: Some(6),
        };
        let a = random_netlist(&dev, &p, &mut rng(42));
        let b = random_netlist(&dev, &p, &mut rng(42));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.sinks, y.sinks);
        }
        let c = random_netlist(&dev, &p, &mut rng(43));
        assert!(a.iter().zip(&c).any(|(x, y)| x.source != y.source));
    }

    #[test]
    fn sources_and_sinks_are_disjoint_pins() {
        let dev = Device::new(Family::Xcv50);
        let p = NetlistParams {
            nets: 30,
            max_fanout: 4,
            max_span: None,
        };
        let nl = random_netlist(&dev, &p, &mut rng(7));
        let mut srcs = std::collections::HashSet::new();
        let mut sinks = std::collections::HashSet::new();
        for n in &nl {
            assert!(srcs.insert(n.source), "duplicate source {:?}", n.source);
            for s in &n.sinks {
                assert!(sinks.insert(*s), "duplicate sink {s:?}");
            }
        }
    }

    #[test]
    fn max_span_bounds_bounding_boxes() {
        let dev = Device::new(Family::Xcv50);
        let p = NetlistParams {
            nets: 20,
            max_fanout: 2,
            max_span: Some(3),
        };
        for n in random_netlist(&dev, &p, &mut rng(1)) {
            for s in &n.sinks {
                assert!(s.rc.row.abs_diff(n.source.rc.row) <= 3);
                assert!(s.rc.col.abs_diff(n.source.rc.col) <= 3);
            }
        }
    }

    #[test]
    fn window_netlist_stays_in_window() {
        let dev = Device::new(Family::Xcv50);
        let origin = RowCol::new(4, 4);
        for n in window_netlist(&dev, 25, 5, origin, &mut rng(3)) {
            for rc in [n.source.rc, n.sinks[0].rc] {
                assert!((4..9).contains(&rc.row) && (4..9).contains(&rc.col));
            }
        }
    }

    #[test]
    fn random_pairs_have_distinct_endpoints() {
        let dev = Device::new(Family::Xcv50);
        let pairs = random_pairs(&dev, 15, &mut rng(9));
        assert_eq!(pairs.len(), 15);
        for (s, k) in &pairs {
            assert_ne!(s.rc, k.rc);
        }
    }
}
