//! # jroute-bench — shared helpers for the experiment harness
//!
//! The Criterion bench targets (`benches/e*.rs`) regenerate every
//! experiment in DESIGN.md §4; this small library holds the helpers they
//! share. Each bench prints the experiment's table rows (via
//! `eprintln!`) in addition to Criterion's timing output, so
//! EXPERIMENTS.md can be refreshed by running `cargo bench`.

/// Standard seed for all experiment RNGs (reproducibility).
pub const SEED: u64 = 0x4A52_4F55_5445; // "JROUTE"

/// Format a ratio as `x.yz×`.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "∞".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}
