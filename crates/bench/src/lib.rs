//! # jroute-bench — shared helpers for the experiment harness
//!
//! The bench targets (`benches/e*.rs`) regenerate every experiment in
//! DESIGN.md §4 on the in-repo `harness` microbench driver; this small
//! library holds the helpers they share. Each bench prints the
//! experiment's table rows (via `eprintln!`) in addition to the timing
//! output, and writes machine-readable `BENCH_<target>.json` under
//! `target/bench-json/`, so EXPERIMENTS.md can be refreshed by running
//! `cargo bench`.

/// Standard seed for all experiment RNGs (reproducibility).
pub const SEED: u64 = 0x4A52_4F55_5445; // "JROUTE"

/// Format a ratio as `x.yz×`.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "∞".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}
