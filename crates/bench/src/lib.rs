//! # jroute-bench — shared helpers for the experiment harness
//!
//! The bench targets (`benches/e*.rs`) regenerate every experiment in
//! DESIGN.md §4 on the in-repo `harness` microbench driver; this small
//! library holds the helpers they share. Each bench prints the
//! experiment's table rows (via `eprintln!`) in addition to the timing
//! output, and writes machine-readable `BENCH_<target>.json` under
//! `target/bench-json/`, so EXPERIMENTS.md can be refreshed by running
//! `cargo bench`.

/// Standard seed for all experiment RNGs (reproducibility).
pub const SEED: u64 = 0x4A52_4F55_5445; // "JROUTE"

/// Worker-count sweep for the scaling experiments (e10/e12/e18),
/// overridable with the `JROUTE_THREADS` environment variable — a
/// comma-separated list, e.g. `JROUTE_THREADS=1,2`. Invalid or zero
/// entries are dropped; an empty or unset override yields `default`.
pub fn thread_counts(default: &[usize]) -> Vec<usize> {
    let parsed: Vec<usize> = std::env::var("JROUTE_THREADS")
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .unwrap_or_default();
    if parsed.is_empty() {
        default.to_vec()
    } else {
        parsed
    }
}

/// Format a ratio as `x.yz×`.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "∞".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}
