//! Bench regression comparator.
//!
//! Diffs the medians in freshly generated `target/bench-json/BENCH_*.json`
//! reports against the checked-in baselines under `bench-baseline/` and
//! exits non-zero when any benchmark regressed by more than the threshold
//! (`--max-regress <pct>`, else `BENCH_REGRESSION_PCT`, default 10%).
//!
//! ```text
//! cargo run -p jroute-bench --bin compare
//! cargo run -p jroute-bench --bin compare -- --baseline DIR --current DIR
//! cargo run -p jroute-bench --bin compare -- --max-regress 10
//! cargo run -p jroute-bench --bin compare -- --record
//! ```
//!
//! `--record` refreshes the baselines instead of comparing: every
//! `BENCH_*.json` in the current directory is copied into the baseline
//! directory (replacing any file of the same name, leaving others
//! untouched). Run it after an intentional performance change, then
//! commit the refreshed `bench-baseline/`.
//!
//! `scripts/verify.sh` runs this behind `BENCH_BASELINE=1` after
//! regenerating the benches the baseline covers. Only bench files present
//! in *both* directories are compared; a baseline with no counterpart is
//! reported but does not fail the run (partial bench runs are normal).
//! Comparing zero files is an error (exit 2) — it means the bench step
//! did not produce output where the comparator looked.

use jroute_obs::json::{self, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default regression threshold, percent.
const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// One benchmark id compared between baseline and current.
#[derive(Debug, PartialEq)]
struct Row {
    id: String,
    base_median_ns: f64,
    cur_median_ns: Option<f64>,
    /// Percent change in the median, current vs baseline (positive =
    /// slower).
    delta_pct: Option<f64>,
    /// Percent change in the per-run minimum sample. The minimum is far
    /// less sensitive to scheduler noise than the median, so a real
    /// regression moves both while a noisy run usually moves only the
    /// median.
    min_delta_pct: Option<f64>,
}

impl Row {
    /// Regression = both the median and the min moved past the
    /// threshold. Requiring the min too keeps noisy-but-unchanged
    /// benchmarks from failing the gate.
    fn is_regression(&self, threshold_pct: f64) -> bool {
        self.delta_pct.is_some_and(|d| d > threshold_pct)
            && self.min_delta_pct.is_none_or(|d| d > threshold_pct)
    }
}

/// Extract `(id, median_ns, min_ns)` triples from a `BENCH_*.json`
/// document.
fn medians(doc: &Value) -> Vec<(String, f64, Option<f64>)> {
    let mut out = Vec::new();
    let Some(results) = doc.get("results").and_then(Value::as_arr) else {
        return out;
    };
    for r in results {
        let id = r.get("id").and_then(Value::as_str);
        let ns = r.get("ns_per_iter");
        let med = ns.and_then(|n| n.get("median")).and_then(Value::as_f64);
        let min = ns.and_then(|n| n.get("min")).and_then(Value::as_f64);
        if let (Some(id), Some(med)) = (id, med) {
            out.push((id.to_string(), med, min));
        }
    }
    out
}

/// Compare every id in `base` against `cur`.
fn compare_docs(base: &Value, cur: &Value) -> Vec<Row> {
    let cur_medians = medians(cur);
    medians(base)
        .into_iter()
        .map(|(id, base_med, base_min)| {
            let cur = cur_medians.iter().find(|(i, _, _)| *i == id);
            let cur_med = cur.map(|(_, m, _)| *m);
            let pct = |b: f64, c: f64| if b == 0.0 { 0.0 } else { (c - b) / b * 100.0 };
            let delta = cur_med.map(|c| pct(base_med, c));
            let min_delta = match (base_min, cur.and_then(|(_, _, m)| *m)) {
                (Some(b), Some(c)) => Some(pct(b, c)),
                _ => None,
            };
            Row {
                id,
                base_median_ns: base_med,
                cur_median_ns: cur_med,
                delta_pct: delta,
                min_delta_pct: min_delta,
            }
        })
        .collect()
}

fn load(path: &Path) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    json::parse(&text)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Workspace root: the outermost ancestor holding a `Cargo.toml`
/// (mirrors `harness::bench::write_report`).
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    cwd.ancestors()
        .filter(|a| a.join("Cargo.toml").exists())
        .last()
        .unwrap_or(&cwd)
        .to_path_buf()
}

/// Copy every `BENCH_*.json` report from `current_dir` into
/// `baseline_dir`, creating it if needed. Returns the file names copied
/// (sorted); existing baselines not present in `current_dir` are kept.
fn record(current_dir: &Path, baseline_dir: &Path) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(baseline_dir)?;
    let mut copied = Vec::new();
    for entry in std::fs::read_dir(current_dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            std::fs::copy(&path, baseline_dir.join(name))?;
            copied.push(name.to_string());
        }
    }
    copied.sort();
    Ok(copied)
}

/// Threshold precedence: `--max-regress` flag, then the
/// `BENCH_REGRESSION_PCT` environment variable, then the built-in
/// default.
fn threshold_pct(flag: Option<f64>) -> f64 {
    flag.or_else(|| {
        std::env::var("BENCH_REGRESSION_PCT")
            .ok()
            .and_then(|v| v.trim().parse().ok())
    })
    .unwrap_or(DEFAULT_THRESHOLD_PCT)
}

fn main() -> ExitCode {
    let root = workspace_root();
    let mut baseline_dir = root.join("bench-baseline");
    let mut current_dir = std::env::var("BENCH_JSON_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| root.join("target").join("bench-json"));

    let mut record_mode = false;
    let mut max_regress: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                baseline_dir = PathBuf::from(args.next().expect("--baseline needs a dir"))
            }
            "--current" => current_dir = PathBuf::from(args.next().expect("--current needs a dir")),
            "--max-regress" => {
                let v = args.next().expect("--max-regress needs a percentage");
                match v.trim().parse::<f64>() {
                    Ok(pct) if pct >= 0.0 => max_regress = Some(pct),
                    _ => {
                        eprintln!("compare: --max-regress needs a non-negative number, got {v:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--record" => record_mode = true,
            other => {
                eprintln!("compare: unknown argument {other:?}");
                eprintln!(
                    "usage: compare [--baseline DIR] [--current DIR] \
                     [--max-regress PCT] [--record]"
                );
                return ExitCode::from(2);
            }
        }
    }
    if record_mode {
        return match record(&current_dir, &baseline_dir) {
            Ok(copied) if copied.is_empty() => {
                eprintln!(
                    "compare --record: no BENCH_*.json in {} — run the benches first",
                    current_dir.display()
                );
                ExitCode::from(2)
            }
            Ok(copied) => {
                for name in &copied {
                    eprintln!("  recorded {name}");
                }
                eprintln!(
                    "compare --record: {} baseline(s) refreshed into {}",
                    copied.len(),
                    baseline_dir.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("compare --record: {e}");
                ExitCode::from(2)
            }
        };
    }
    let threshold = threshold_pct(max_regress);

    let mut baselines: Vec<PathBuf> = match std::fs::read_dir(&baseline_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!(
                "compare: cannot read baseline dir {}: {e}",
                baseline_dir.display()
            );
            return ExitCode::from(2);
        }
    };
    baselines.sort();

    let mut compared = 0usize;
    let mut regressions = 0usize;
    let mut skipped_files = 0usize;
    let mut missing_ids = 0usize;

    eprintln!(
        "compare: baseline {} vs current {} (threshold {threshold:.0}%)",
        baseline_dir.display(),
        current_dir.display()
    );
    for base_path in &baselines {
        let name = base_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?");
        let cur_path = current_dir.join(name);
        if !cur_path.exists() {
            eprintln!("  {name}: no current report — skipped (run its bench to compare)");
            skipped_files += 1;
            continue;
        }
        let (Some(base), Some(cur)) = (load(base_path), load(&cur_path)) else {
            eprintln!("compare: {name}: unparseable JSON");
            return ExitCode::from(2);
        };
        for row in compare_docs(&base, &cur) {
            match (row.cur_median_ns, row.delta_pct) {
                (Some(cur_med), Some(delta)) => {
                    compared += 1;
                    let verdict = if row.is_regression(threshold) {
                        regressions += 1;
                        "REGRESSION"
                    } else if delta < -threshold {
                        "improved"
                    } else {
                        "ok"
                    };
                    let min_note = row
                        .min_delta_pct
                        .map(|d| format!(" (min {d:+.1}%)"))
                        .unwrap_or_default();
                    eprintln!(
                        "  {:<44} {:>12} -> {:>12}  {:>+8.1}%  {}{}",
                        row.id,
                        fmt_ns(row.base_median_ns),
                        fmt_ns(cur_med),
                        delta,
                        verdict,
                        min_note
                    );
                }
                _ => {
                    missing_ids += 1;
                    eprintln!("  {:<44} missing from current report", row.id);
                }
            }
        }
    }

    eprintln!(
        "compare: {compared} compared, {regressions} regression(s), \
         {skipped_files} baseline file(s) skipped, {missing_ids} id(s) missing"
    );
    if compared == 0 {
        eprintln!(
            "compare: nothing compared — did the bench step write into {}?",
            current_dir.display()
        );
        return ExitCode::from(2);
    }
    if regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &[(&str, f64, f64)]) -> Value {
        let results = entries
            .iter()
            .map(|(id, med, min)| {
                format!(
                    "{{\"id\": \"{id}\", \"samples\": 3, \"iters_per_sample\": 1, \
                     \"ns_per_iter\": {{\"min\": {min}, \"median\": {med}, \"mean\": 1.0, \"max\": 9.0}}}}"
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        json::parse(&format!("{{\"bench\": \"t\", \"results\": [{results}]}}")).unwrap()
    }

    #[test]
    fn medians_extract_id_median_and_min() {
        let d = doc(&[("e1/a", 100.0, 90.0), ("e1/b", 250.0, 200.0)]);
        assert_eq!(
            medians(&d),
            vec![
                ("e1/a".into(), 100.0, Some(90.0)),
                ("e1/b".into(), 250.0, Some(200.0))
            ]
        );
    }

    #[test]
    fn compare_flags_only_above_threshold() {
        let base = doc(&[("a", 100.0, 90.0), ("b", 100.0, 90.0), ("c", 100.0, 90.0)]);
        let cur = doc(&[("a", 120.0, 108.0), ("b", 130.0, 117.0), ("c", 60.0, 54.0)]);
        let rows = compare_docs(&base, &cur);
        assert!(
            !rows[0].is_regression(25.0),
            "+20% is inside a 25% threshold"
        );
        assert!(
            rows[1].is_regression(25.0),
            "+30% in both median and min regresses"
        );
        assert!(!rows[2].is_regression(25.0), "improvements never fail");
        assert!((rows[1].delta_pct.unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_median_with_steady_min_is_not_a_regression() {
        // Median ballooned (+50%) but the best sample is unchanged: a
        // loaded machine, not a slower program.
        let base = doc(&[("a", 100.0, 90.0)]);
        let cur = doc(&[("a", 150.0, 91.0)]);
        let rows = compare_docs(&base, &cur);
        assert!(!rows[0].is_regression(25.0));
        // ...whereas without min data the median alone decides.
        assert!(Row {
            min_delta_pct: None,
            ..compare_docs(&base, &cur).remove(0)
        }
        .is_regression(25.0));
    }

    #[test]
    fn missing_current_id_is_reported_not_compared() {
        let base = doc(&[("a", 100.0, 90.0), ("gone", 50.0, 40.0)]);
        let cur = doc(&[("a", 100.0, 90.0)]);
        let rows = compare_docs(&base, &cur);
        assert_eq!(rows[1].cur_median_ns, None);
        assert!(!rows[1].is_regression(0.0));
    }

    #[test]
    fn record_copies_bench_reports_and_keeps_unrelated_baselines() {
        let tmp =
            std::env::temp_dir().join(format!("jroute-compare-record-{}", std::process::id()));
        let cur = tmp.join("cur");
        let base = tmp.join("base");
        std::fs::create_dir_all(&cur).unwrap();
        std::fs::create_dir_all(&base).unwrap();
        std::fs::write(cur.join("BENCH_e4.json"), "{\"bench\": \"e4\"}").unwrap();
        std::fs::write(cur.join("BENCH_e12.json"), "{\"bench\": \"e12\"}").unwrap();
        std::fs::write(cur.join("OBS_run.json"), "{}").unwrap(); // not a bench report
        std::fs::write(base.join("BENCH_e2.json"), "{\"bench\": \"old\"}").unwrap();
        std::fs::write(base.join("BENCH_e4.json"), "{\"bench\": \"stale\"}").unwrap();

        let copied = record(&cur, &base).unwrap();
        assert_eq!(
            copied,
            vec!["BENCH_e12.json".to_string(), "BENCH_e4.json".to_string()]
        );
        // Refreshed in place...
        let e4 = std::fs::read_to_string(base.join("BENCH_e4.json")).unwrap();
        assert!(e4.contains("\"e4\""));
        // ...new file landed, unrelated baseline kept, non-bench ignored.
        assert!(base.join("BENCH_e12.json").exists());
        assert!(base.join("BENCH_e2.json").exists());
        assert!(!base.join("OBS_run.json").exists());
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn record_creates_the_baseline_dir_and_reports_empty_input() {
        let tmp =
            std::env::temp_dir().join(format!("jroute-compare-record-mk-{}", std::process::id()));
        let cur = tmp.join("cur");
        std::fs::create_dir_all(&cur).unwrap();
        let base = tmp.join("base"); // does not exist yet
        let copied = record(&cur, &base).unwrap();
        assert!(copied.is_empty());
        assert!(base.is_dir(), "--record should create the baseline dir");
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn max_regress_flag_beats_env_and_default() {
        // Flag wins outright; without it the built-in default applies
        // (the env override is exercised by verify.sh, not here, to keep
        // tests free of process-global env races).
        assert_eq!(threshold_pct(Some(5.0)), 5.0);
        assert_eq!(threshold_pct(Some(0.0)), 0.0);
    }

    #[test]
    fn zero_baseline_median_never_divides_by_zero() {
        let base = doc(&[("z", 0.0, 0.0)]);
        let cur = doc(&[("z", 10.0, 10.0)]);
        let rows = compare_docs(&base, &cur);
        assert_eq!(rows[0].delta_pct, Some(0.0));
    }
}
