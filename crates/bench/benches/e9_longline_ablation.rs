//! E9 (§3.1/§6): the long-line ablation.
//!
//! Paper: *"Currently long lines are not supported; only hexes and
//! singles are used. Using long lines would improve the routing of nets
//! with large bounding boxes."* — listed again as future work (§6). Both
//! configurations exist in this implementation, so we measure the claim:
//! segments used and search effort for fan-out nets of growing span,
//! with long lines off (the paper's initial implementation) and on.

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::{EndPoint, Router, RouterOptions};
use jroute_bench::SEED;
use jroute_workloads::fanout_spec;
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Xcv1000)
}

fn route_spanning(dev: &Device, span: u16, use_longs: bool) -> (usize, usize, usize) {
    let mut rng = DetRng::seed_from_u64(SEED);
    let spec = fanout_spec(dev, RowCol::new(32, 48), 8, span, &mut rng);
    let mut r = Router::with_options(
        dev,
        RouterOptions {
            use_long_lines: use_longs,
            ..Default::default()
        },
    );
    let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
    r.route_fanout(&spec.source.into(), &sinks).unwrap();
    let u = r.resource_usage();
    (u.total(), u.longs, r.stats().maze_nodes_expanded)
}

fn table() {
    eprintln!("\n=== E9: long-line ablation (paper §3.1 / §6) ===");
    eprintln!(
        "{:<6} | {:>10} {:>8} | {:>10} {:>8} {:>8}",
        "span", "segs(off)", "nodes", "segs(on)", "longs", "nodes"
    );
    let dev = dev();
    for span in [4u16, 8, 16, 24, 31] {
        let (segs_off, _, nodes_off) = route_spanning(&dev, span, false);
        let (segs_on, longs_on, nodes_on) = route_spanning(&dev, span, true);
        eprintln!(
            "{:<6} | {:>10} {:>8} | {:>10} {:>8} {:>8}",
            span, segs_off, nodes_off, segs_on, longs_on, nodes_on
        );
    }
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let mut g = c.benchmark_group("e9");
    for span in [8u16, 24] {
        g.bench_function(format!("longs_off_span_{span}"), |b| {
            b.iter_batched(
                || (),
                |_| route_spanning(&dev, span, false),
                BatchSize::PerIteration,
            )
        });
        g.bench_function(format!("longs_on_span_{span}"), |b| {
            b.iter_batched(
                || (),
                |_| route_spanning(&dev, span, true),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
