//! E10 (§2/§5): scaling across the Virtex family.
//!
//! The paper supports devices from 16x24 to 64x96 CLBs through one
//! architecture class; the router must stay usable across that 16x range
//! of fabric size. We route the same *relative* workload (nets scaled to
//! device area, same seed) on every family member and report per-net
//! routing effort.

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::pathfinder::{self, PathFinderConfig};
use jroute::Router;
use jroute_bench::{thread_counts, SEED};
use jroute_workloads::{random_netlist, NetlistParams};
use virtex::{Device, Family};

fn workload(dev: &Device) -> Vec<jroute::pathfinder::NetSpec> {
    // 1 net per 24 CLBs keeps relative density constant.
    let nets = dev.dims().tiles() / 24;
    let mut rng = DetRng::seed_from_u64(SEED);
    random_netlist(
        dev,
        &NetlistParams {
            nets,
            max_fanout: 2,
            max_span: Some(10),
        },
        &mut rng,
    )
}

fn route_all(dev: &Device) -> (usize, usize, usize) {
    let specs = workload(dev);
    let mut r = Router::new(dev);
    let mut ok = 0usize;
    for s in &specs {
        let sinks: Vec<jroute::EndPoint> = s.sinks.iter().map(|&p| p.into()).collect();
        if r.route_fanout(&s.source.into(), &sinks).is_ok() {
            ok += 1;
        }
    }
    (specs.len(), ok, r.stats().maze_nodes_expanded)
}

fn table() {
    eprintln!("\n=== E10: scaling across the family (paper §2) ===");
    eprintln!(
        "{:<10} {:>8} {:>8} {:>8} {:>14}",
        "family", "tiles", "nets", "routed", "nodes/net"
    );
    for f in Family::ALL {
        let dev = Device::new(f);
        let (nets, ok, nodes) = route_all(&dev);
        eprintln!(
            "{:<10} {:>8} {:>8} {:>8} {:>14}",
            f.name(),
            dev.dims().tiles(),
            nets,
            ok,
            nodes.checked_div(ok).unwrap_or(0)
        );
    }
    // The synthetic super-Virtex tier (2x/4x/8x the XCV1000) goes
    // through the partition-parallel negotiator — the engine built to
    // scale past the real family — at each JROUTE_THREADS worker count
    // (default 1 here; E18 carries the full sweep).
    eprintln!("--- synthetic tier (partition-parallel negotiation) ---");
    for f in Family::SYNTHETIC {
        let dev = Device::new(f);
        let nets = dev.dims().tiles() / 96;
        let mut rng = DetRng::seed_from_u64(SEED);
        let specs = random_netlist(
            &dev,
            &NetlistParams {
                nets,
                max_fanout: 2,
                max_span: Some(10),
            },
            &mut rng,
        );
        for threads in thread_counts(&[1]) {
            let cfg = PathFinderConfig {
                threads,
                ..PathFinderConfig::default()
            };
            let r = pathfinder::route_all(&dev, &specs, &cfg).unwrap();
            eprintln!(
                "{:<7}x{:<2} {:>8} {:>8} {:>8} {:>14}",
                f.name(),
                threads,
                dev.dims().tiles(),
                specs.len(),
                r.nets.len(),
                r.nodes_expanded.checked_div(r.nets.len()).unwrap_or(0)
            );
        }
    }
}

fn bench(c: &mut Bench) {
    table();
    let mut g = c.benchmark_group("e10");
    for f in [Family::Xcv50, Family::Xcv300, Family::Xcv1000] {
        let dev = Device::new(f);
        g.bench_function(format!("route_workload_{}", f.name()), |b| {
            b.iter_batched(|| (), |_| route_all(&dev), BatchSize::PerIteration)
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
