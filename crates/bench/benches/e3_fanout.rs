//! E3 (§3.1): fan-out routing with tree reuse vs per-sink routing.
//!
//! Paper: *"This call should be used instead of connecting each sink
//! individually, since it minimizes the routing resources used."* We
//! route one source to K sinks (a) with `route_fanout` (greedy
//! nearest-first with tree reuse) and (b) each sink from scratch with no
//! reuse, and compare segments consumed.

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::maze::{self, MazeConfig, MazeScratch};
use jroute::{EndPoint, Router};
use jroute_bench::SEED;
use jroute_workloads::fanout_spec;
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Xcv300)
}

/// Route with the paper's fan-out call.
fn with_reuse(dev: &Device, fanout: usize) -> usize {
    let mut rng = DetRng::seed_from_u64(SEED);
    let spec = fanout_spec(dev, RowCol::new(16, 24), fanout, 8, &mut rng);
    let mut r = Router::new(dev);
    let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
    r.route_fanout(&spec.source.into(), &sinks).unwrap();
    r.nets().used_segments()
}

/// Route each sink independently, sharing only the OMUX stage.
///
/// A slice output physically reaches the fabric through two OMUX lines,
/// so a truly share-nothing baseline is unroutable beyond fan-out 2; the
/// honest naive baseline reuses the OMUX departure segments (as repeated
/// `route(src, sink)` calls would) but duplicates every fabric wire.
fn without_reuse(dev: &Device, fanout: usize) -> usize {
    let mut rng = DetRng::seed_from_u64(SEED);
    let spec = fanout_spec(dev, RowCol::new(16, 24), fanout, 8, &mut rng);
    let mut scratch = MazeScratch::new(dev);
    let src = dev.canonicalize(spec.source.rc, spec.source.wire).unwrap();
    let mut used: std::collections::HashSet<virtex::Segment> = std::collections::HashSet::new();
    let mut starts: Vec<(virtex::Segment, u32)> = vec![(src, 0)];
    for sink in &spec.sinks {
        let goal = dev.canonicalize(sink.rc, sink.wire).unwrap();
        let r = maze::search(
            dev,
            &starts,
            goal,
            &MazeConfig::default(),
            |s| used.contains(&s),
            |_| 0,
            &mut scratch,
        )
        .expect("routable");
        for seg in &r.segments {
            used.insert(*seg);
            if matches!(seg.wire.kind(), virtex::WireKind::Out(_)) {
                starts.push((*seg, 0));
            }
        }
    }
    used.len() + 1 // + source segment, to match the netdb census
}

fn table() {
    eprintln!("\n=== E3: fan-out — segments used, reuse vs per-sink (paper §3.1) ===");
    eprintln!(
        "{:<8} {:>12} {:>12} {:>9}",
        "fanout", "route_fanout", "per-sink", "saving"
    );
    let dev = dev();
    for fanout in [2usize, 4, 8, 16, 32] {
        let a = with_reuse(&dev, fanout);
        let b = without_reuse(&dev, fanout);
        eprintln!(
            "{:<8} {:>12} {:>12} {:>8.0}%",
            fanout,
            a,
            b,
            100.0 * (b as f64 - a as f64) / b as f64
        );
        assert!(a <= b, "reuse must never use more resources");
    }
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let mut g = c.benchmark_group("e3");
    for fanout in [4usize, 16] {
        g.bench_function(format!("route_fanout_{fanout}"), |b| {
            b.iter_batched(|| (), |_| with_reuse(&dev, fanout), BatchSize::SmallInput)
        });
        g.bench_function(format!("per_sink_{fanout}"), |b| {
            b.iter_batched(
                || (),
                |_| without_reuse(&dev, fanout),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
