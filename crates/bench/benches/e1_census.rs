//! E1 (paper Fig. 1 / §2): architecture census.
//!
//! Verifies and prints the routing-resource counts the paper publishes
//! for the Virtex fabric, per family member, and benchmarks the
//! architecture-class queries the routers depend on.

use harness::{bench_group, bench_main, BatchSize, Bench};
use virtex::wire::{self, HEXES_PER_DIR, NUM_GCLK, NUM_LONG, SINGLES_PER_DIR};
use virtex::{Device, Dir, Family, RowCol, Wire};

fn census() {
    eprintln!("\n=== E1: architecture census (paper §2) ===");
    eprintln!(
        "{:<10} {:>6} {:>8} {:>12} {:>10} {:>8} {:>6}",
        "family", "rows", "cols", "singles/dir", "hexes/dir", "longs", "gclk"
    );
    for f in Family::ALL {
        let dev = Device::new(f);
        let rc = RowCol::new(dev.dims().rows / 2, dev.dims().cols / 2);
        let singles = (0..SINGLES_PER_DIR)
            .filter(|&i| dev.wire_exists(rc, wire::single(Dir::North, i)))
            .count();
        let hexes = (0..HEXES_PER_DIR)
            .filter(|&i| dev.wire_exists(rc, wire::hex(Dir::East, i)))
            .count();
        eprintln!(
            "{:<10} {:>6} {:>8} {:>12} {:>10} {:>8} {:>6}",
            f.name(),
            dev.dims().rows,
            dev.dims().cols,
            singles,
            hexes,
            2 * NUM_LONG,
            NUM_GCLK
        );
        assert_eq!(singles, 24, "paper: 24 singles per direction");
        assert_eq!(hexes, 12, "paper: 12 accessible hexes per direction");
    }
    // Long-line access spacing.
    let dev = Device::new(Family::Xcv300);
    let access: Vec<u16> = (0..dev.dims().cols)
        .filter(|&c| dev.wire_exists(RowCol::new(3, c), wire::long_h(0)))
        .collect();
    assert!(
        access.windows(2).all(|w| w[1] - w[0] == 6),
        "longs accessible every 6 blocks"
    );
    eprintln!("long-line access columns (XCV300): every 6 CLBs ✓");
}

fn bench(c: &mut Bench) {
    census();
    let dev = Device::new(Family::Xcv1000);
    let rc = RowCol::new(32, 48);
    c.bench_function("e1/pips_from_full_tile", |b| {
        b.iter_batched(
            || Vec::with_capacity(64),
            |mut buf| {
                for w in Wire::all() {
                    buf.clear();
                    dev.arch().pips_from(rc, w, &mut buf);
                }
                buf
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("e1/canonicalize_full_tile", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for w in Wire::all() {
                if dev.canonicalize(rc, w).is_some() {
                    n += 1;
                }
            }
            n
        })
    });
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
