//! E18: partition-parallel negotiation scaled past the XCV1000.
//!
//! The unified engine partitions each PathFinder iteration's dirty-net
//! set into bbox-disjoint waves and routes every wave on the
//! work-stealing pool, so negotiation throughput should scale with
//! worker count — on fabrics bigger than anything the paper's Virtex
//! family shipped. This bench routes a scattered-plus-hotspots workload
//! on the synthetic `SUPER4` member (4x the XCV1000 tile count) across a
//! worker sweep and reports nets-routed/sec per worker count.
//!
//! The engine is determinism-by-construction (waves only hold nets whose
//! search regions are disjoint), so the table *asserts* that every
//! worker count produces the identical result — same legality, same
//! iteration count, same overuse, same net-by-net segment census. The
//! speedup column is reported but not asserted: CI machines may have a
//! single core, where every thread count degenerates to the same
//! wall-clock.
//!
//! Worker counts honour the `JROUTE_THREADS` override (comma-separated).

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::pathfinder::{self, NetSpec, PathFinderConfig, PathFinderResult};
use jroute_bench::{thread_counts, SEED};
use jroute_workloads::{random_netlist, window_netlist, NetlistParams};
use std::time::Instant;
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Super4)
}

/// Scattered short nets across the whole super-fabric plus two congested
/// windows: the windows force multi-iteration negotiation (serialized
/// waves around the hotspots), the scattered majority is what the
/// partitioner should spread across the workers in a handful of wide
/// waves.
fn workload(dev: &Device, scattered: usize, hot: usize) -> Vec<NetSpec> {
    let mut rng = DetRng::seed_from_u64(SEED);
    let mut specs = random_netlist(
        dev,
        &NetlistParams {
            nets: scattered,
            max_fanout: 2,
            max_span: Some(8),
        },
        &mut rng,
    );
    specs.extend(window_netlist(dev, hot, 3, RowCol::new(40, 60), &mut rng));
    specs.extend(window_netlist(dev, hot, 3, RowCol::new(90, 130), &mut rng));
    specs
}

fn cfg(threads: usize) -> PathFinderConfig {
    PathFinderConfig {
        threads,
        ..PathFinderConfig::default()
    }
}

/// The equivalence fingerprint: everything the engine promises is
/// invariant under thread count.
fn fingerprint(r: &PathFinderResult) -> (bool, usize, usize, Vec<Vec<virtex::Segment>>) {
    (
        r.legal,
        r.iterations,
        r.overused,
        r.nets.iter().map(|n| n.segments.clone()).collect(),
    )
}

fn table() {
    eprintln!("\n=== E18: partition-parallel negotiation on SUPER4 (4x XCV1000) ===");
    let dev = dev();
    let specs = workload(&dev, 96, 24);
    eprintln!(
        "device {} ({} tiles), {} nets",
        dev.family().name(),
        dev.dims().tiles(),
        specs.len()
    );
    eprintln!(
        "{:<8} {:>6} {:>6} {:>8} {:>10} {:>10} {:>9}",
        "workers", "legal", "iters", "waves", "time", "nets/s", "speedup"
    );
    let mut reference: Option<(bool, usize, usize, Vec<Vec<virtex::Segment>>)> = None;
    let mut base_dt: Option<f64> = None;
    for workers in thread_counts(&[1, 2, 4, 8]) {
        let obs = jroute::Recorder::enabled();
        let t0 = Instant::now();
        let r = pathfinder::route_all_obs(&dev, &specs, &cfg(workers), &obs).unwrap();
        let dt = t0.elapsed().as_secs_f64();
        let waves = obs.report().counter("pathfinder.waves").unwrap_or(0);
        let base = *base_dt.get_or_insert(dt);
        eprintln!(
            "{:<8} {:>6} {:>6} {:>8} {:>8.0}ms {:>10.0} {:>8.2}x",
            workers,
            r.legal,
            r.iterations,
            waves,
            dt * 1e3,
            specs.len() as f64 / dt,
            base / dt
        );
        let fp = fingerprint(&r);
        match &reference {
            None => reference = Some(fp),
            Some(want) => {
                assert_eq!(want.0, fp.0, "{workers} workers: legality differs");
                assert_eq!(want.1, fp.1, "{workers} workers: iterations differ");
                assert_eq!(want.2, fp.2, "{workers} workers: overuse differs");
                assert_eq!(want.3, fp.3, "{workers} workers: segment census differs");
            }
        }
    }
    if let Some((legal, ..)) = reference {
        assert!(legal, "the E18 workload must converge");
    }
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    // A smaller workload for the timed sweep keeps the smoke/gate cheap;
    // the scaling table above carries the headline numbers.
    let specs = workload(&dev, 48, 16);
    let mut g = c.benchmark_group("e18");
    for workers in thread_counts(&[1, 8]) {
        let cfg = cfg(workers);
        g.bench_function(format!("negotiate_super4_{workers}t"), |b| {
            b.iter_batched(
                || (),
                |_| pathfinder::route_all(&dev, &specs, &cfg).unwrap(),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
