//! E2 (§3.1): cost of the four levels of control.
//!
//! The paper's claim: manual PIP calls are the cheapest (for real-time
//! configuration constraints); templates trade execution time for
//! abstraction ("The cost is longer execution time"); full auto-routing
//! costs the most. All four levels configure the same physical
//! connection, the paper's worked example: S1_YQ@(5,7) -> S0F3@(6,8).

use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::{EndPoint, Path, Pin, Router, Template};
use virtex::{wire, Device, Dir, Family, TemplateValue as T};

fn fresh() -> Router {
    Router::new(&Device::new(Family::Xcv50))
}

fn level1(r: &mut Router) {
    r.route_rc(5, 7, wire::S1_YQ, wire::out(1)).unwrap();
    r.route_rc(5, 7, wire::out(1), wire::single(Dir::East, 5))
        .unwrap();
    r.route_rc(
        5,
        8,
        wire::single_end(Dir::East, 5),
        wire::single(Dir::North, 0),
    )
    .unwrap();
    r.route_rc(6, 8, wire::single_end(Dir::North, 0), wire::S0_F3)
        .unwrap();
}

fn level2(r: &mut Router) {
    r.route_path(&Path::new(
        5,
        7,
        vec![
            wire::S1_YQ,
            wire::out(1),
            wire::single(Dir::East, 5),
            wire::single(Dir::North, 0),
            wire::S0_F3,
        ],
    ))
    .unwrap();
}

fn level3(r: &mut Router) {
    r.route_template(
        Pin::new(5, 7, wire::S1_YQ),
        wire::S0_F3,
        &Template::new(vec![T::OutMux, T::East1, T::North1, T::ClbIn]),
    )
    .unwrap();
}

fn level4(r: &mut Router, templates: bool) {
    r.options_mut().use_templates_first = templates;
    let src: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
    let sink: EndPoint = Pin::new(6, 8, wire::S0_F3).into();
    r.route(&src, &sink).unwrap();
}

type ApiRun<'a> = (&'a str, Box<dyn Fn(&mut Router)>);

fn table() {
    eprintln!("\n=== E2: API levels, same connection (paper §3.1 example) ===");
    eprintln!("{:<28} {:>6} {:>10}", "level", "pips", "segments");
    let runs: Vec<ApiRun> = vec![
        ("1 manual route(r,c,f,t)", Box::new(level1)),
        ("2 route(Path)", Box::new(level2)),
        ("3 route(Template)", Box::new(level3)),
        (
            "4 auto (templates)",
            Box::new(|r: &mut Router| level4(r, true)),
        ),
        (
            "4 auto (maze only)",
            Box::new(|r: &mut Router| level4(r, false)),
        ),
    ];
    for (name, f) in runs {
        let mut r = fresh();
        f(&mut r);
        eprintln!(
            "{:<28} {:>6} {:>10}",
            name,
            r.stats().pips_set,
            r.resource_usage().total()
        );
    }
}

fn bench(c: &mut Bench) {
    table();
    let mut g = c.benchmark_group("e2");
    g.bench_function("level1_manual", |b| {
        b.iter_batched(fresh, |mut r| level1(&mut r), BatchSize::SmallInput)
    });
    g.bench_function("level2_path", |b| {
        b.iter_batched(fresh, |mut r| level2(&mut r), BatchSize::SmallInput)
    });
    g.bench_function("level3_template", |b| {
        b.iter_batched(fresh, |mut r| level3(&mut r), BatchSize::SmallInput)
    });
    g.bench_function("level4_auto_templates", |b| {
        b.iter_batched(fresh, |mut r| level4(&mut r, true), BatchSize::SmallInput)
    });
    g.bench_function("level4_auto_maze", |b| {
        b.iter_batched(fresh, |mut r| level4(&mut r, false), BatchSize::SmallInput)
    });
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
