//! E17: observability overhead — the flight recorder must be free when
//! off and near-free when on.
//!
//! The tracing/metrics pipeline (causal spans, sharded registry
//! counters, windowed aggregation) rides the hot paths of E2 (single
//! auto-route) and E14 (service batch). This bench re-runs those two
//! workloads twice each — recorder disabled vs. enabled — so the
//! overhead is a directly comparable pair of rows. Acceptance: enabled
//! medians within ~5% of disabled; disabled must be unmeasurable (the
//! recorder is one `Option` check).

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::{EndPoint, Pin, Router};
use jroute_bench::SEED;
use jroute_obs::Recorder;
use jroute_svc::{ExecMode, RequestKind, RoutingService, ServiceConfig};
use jroute_workloads::{random_netlist, NetlistParams};
use virtex::{wire, Device, Family};

/// The E2 level-4 auto-route (maze only), with a chosen recorder.
fn route_once(dev: &Device, rec: &Recorder) {
    let mut r = Router::new(dev);
    r.set_recorder(rec.clone());
    r.options_mut().use_templates_first = false;
    let src: EndPoint = Pin::new(5, 7, wire::S1_YQ).into();
    let sink: EndPoint = Pin::new(6, 8, wire::S0_F3).into();
    r.route(&src, &sink).unwrap();
}

fn workload(dev: &Device, nets: usize) -> Vec<jroute::pathfinder::NetSpec> {
    let mut rng = DetRng::seed_from_u64(SEED);
    random_netlist(
        dev,
        &NetlistParams {
            nets,
            max_fanout: 2,
            max_span: Some(12),
        },
        &mut rng,
    )
}

fn svc_cfg() -> ServiceConfig {
    ServiceConfig {
        threads: 4,
        mode: ExecMode::Deterministic { seed: SEED },
        audit: false,
        ..Default::default()
    }
}

fn bench(c: &mut Bench) {
    let small = Device::new(Family::Xcv50);
    let big = Device::new(Family::Xcv1000);
    let specs = workload(&big, 60);
    let mut g = c.benchmark_group("e17");

    // E2 row: a single fine-grained auto-route, where per-span cost
    // would show up most.
    g.bench_function("e2_route_disabled", |b| {
        b.iter_batched(
            Recorder::disabled,
            |rec| route_once(&small, &rec),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("e2_route_enabled", |b| {
        b.iter_batched(
            Recorder::enabled,
            |rec| route_once(&small, &rec),
            BatchSize::PerIteration,
        )
    });

    // E14 row: a 60-net service batch — queue plumbing, work-stealing
    // dispatch, causal ctx propagation and the per-batch window tick.
    for (name, rec) in [
        ("e14_svc_disabled", Recorder::disabled as fn() -> Recorder),
        ("e14_svc_enabled", Recorder::enabled as fn() -> Recorder),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut svc = RoutingService::with_recorder(&big, svc_cfg(), rec());
                    for s in &specs {
                        svc.submit(RequestKind::Route(s.clone())).unwrap();
                    }
                    svc
                },
                |mut svc| {
                    let report = svc.run_batch();
                    assert!(report.executed >= 60);
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
