//! E13 (§3.1/§6): timing — greedy (non-timing-driven) vs timing-driven
//! fan-out routing.
//!
//! Paper: the greedy fan-out router *"is not timing driven, [so it] is
//! suitable only for non-critical nets"*, and §6 promises *"skew
//! minimization will be addressed"*. Under the delay model we compare
//! critical-path delay and skew of the greedy resource-sharing tree vs
//! the timing-driven independent-branch router.

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::{EndPoint, Router};
use jroute_bench::SEED;
use jroute_timing::{analyze_net, route_fanout_timing_driven};
use jroute_workloads::fanout_spec;
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Xcv300)
}

fn spec(dev: &Device, fanout: usize, seed_off: u64) -> jroute::pathfinder::NetSpec {
    let mut rng = DetRng::seed_from_u64(SEED + seed_off);
    fanout_spec(dev, RowCol::new(16, 24), fanout, 10, &mut rng)
}

fn greedy(dev: &Device, fanout: usize, seed_off: u64) -> (u64, u64, usize) {
    let s = spec(dev, fanout, seed_off);
    let mut r = Router::new(dev);
    let sinks: Vec<EndPoint> = s.sinks.iter().map(|&p| p.into()).collect();
    r.route_fanout(&s.source.into(), &sinks).unwrap();
    let t = analyze_net(
        r.bits(),
        dev.canonicalize(s.source.rc, s.source.wire).unwrap(),
    );
    (t.max_delay(), t.skew(), r.bits().on_pip_count())
}

fn timing_driven(dev: &Device, fanout: usize, seed_off: u64) -> (u64, u64, usize) {
    let s = spec(dev, fanout, seed_off);
    let mut r = Router::new(dev);
    let sinks: Vec<EndPoint> = s.sinks.iter().map(|&p| p.into()).collect();
    route_fanout_timing_driven(&mut r, &s.source.into(), &sinks).unwrap();
    let t = analyze_net(
        r.bits(),
        dev.canonicalize(s.source.rc, s.source.wire).unwrap(),
    );
    (t.max_delay(), t.skew(), r.bits().on_pip_count())
}

fn table() {
    eprintln!("\n=== E13: greedy vs timing-driven fan-out (paper §3.1 / §6) ===");
    eprintln!(
        "{:<8} | {:>9} {:>8} {:>6} | {:>9} {:>8} {:>6}",
        "fanout", "g-max(ps)", "g-skew", "g-pips", "t-max(ps)", "t-skew", "t-pips"
    );
    let dev = dev();
    for fanout in [2usize, 4, 8, 12] {
        let (gm, gs, gp) = greedy(&dev, fanout, fanout as u64);
        let (tm, ts, tp) = timing_driven(&dev, fanout, fanout as u64);
        eprintln!(
            "{:<8} | {:>9} {:>8} {:>6} | {:>9} {:>8} {:>6}",
            fanout, gm, gs, gp, tm, ts, tp
        );
        // Strict dominance is not guaranteed (sinks claim resources in
        // order), but the timing-driven variant must stay within a small
        // factor of greedy's critical path while usually beating it.
        assert!(
            tm as f64 <= gm as f64 * 1.15,
            "timing-driven {tm}ps much worse than greedy {gm}ps"
        );
    }
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let mut g = c.benchmark_group("e13");
    for fanout in [4usize, 12] {
        g.bench_function(format!("greedy_fanout_{fanout}"), |b| {
            b.iter_batched(
                || (),
                |_| greedy(&dev, fanout, fanout as u64),
                BatchSize::PerIteration,
            )
        });
        g.bench_function(format!("timing_driven_fanout_{fanout}"), |b| {
            b.iter_batched(
                || (),
                |_| timing_driven(&dev, fanout, fanout as u64),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
