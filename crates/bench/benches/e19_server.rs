//! E19: multi-tenant server throughput and latency.
//!
//! The async server front-end (DESIGN.md §3.8) multiplexes many tenant
//! shards over one shared routing pool: producer handles feed a driver
//! loop that cuts per-tenant batches on size/age watermarks and
//! pipelines them across tenant executors. This bench measures what the
//! multiplexing costs and buys: end-to-end admission→completion
//! throughput and p50/p99 request latency at 1, 2 and 4 tenants over a
//! worker sweep (`JROUTE_THREADS` override honoured).
//!
//! Each tenant's producer runs on its own thread, submitting a seeded
//! route/unroute mix against the tenant's private device shard and
//! waiting all tickets; latencies come from the server's own
//! `svc.server.request_ns{tenant}` histograms (submission to terminal
//! outcome, queueing included — the client-observable number). The
//! deterministic-equivalence story is *not* re-proven here (the server
//! stress suite owns it); the table asserts only sanity: every
//! admission reaches a terminal outcome and no tenant poisons.

use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute_bench::thread_counts;
use jroute_obs::{labeled, Recorder};
use jroute_svc::{serve, ExecMode, RequestKind, ServerConfig, TenantId};
use jroute_workloads::fanout_spec;
use std::time::Instant;
use virtex::{Device, Family, RowCol};

/// Requests each tenant's producer submits per run.
const PER_TENANT: usize = 48;

fn server_cfg(workers: usize) -> ServerConfig {
    ServerConfig {
        threads: workers,
        tenant_threads: 2,
        mode: ExecMode::Threaded,
        audit: false,
        batch_max: 16,
        batch_wait: 8,
        ..Default::default()
    }
}

/// One tenant's producer: a seeded mix of routes and unroutes of its own
/// earlier admissions, flushed at the end, every ticket waited. Returns
/// the number of successful requests.
fn produce(handle: &jroute_svc::TenantHandle, tenant: TenantId, n: usize, dev: &Device) -> usize {
    let mut rng = detrand::DetRng::seed_from_u64(jroute_bench::SEED ^ u64::from(tenant));
    let mut tickets = Vec::with_capacity(n);
    let mut routed: Vec<u64> = Vec::new();
    for i in 0..n {
        let kind = if i % 4 == 3 && !routed.is_empty() {
            RequestKind::Unroute(routed.swap_remove(rng.gen_range(0..routed.len())))
        } else {
            let source = RowCol::new(rng.gen_range(1u16..14), rng.gen_range(1u16..22));
            RequestKind::Route(fanout_spec(dev, source, 2, 4, &mut rng))
        };
        let route = matches!(kind, RequestKind::Route(_));
        let ticket = handle.submit(kind).expect("gate sized for the workload");
        if route {
            routed.push(ticket.id());
        }
        tickets.push(ticket);
    }
    handle.flush();
    tickets.iter().filter(|t| t.wait().is_success()).count()
}

/// Run one configuration and return (wall seconds, successes, worst
/// per-tenant p50 ns, worst per-tenant p99 ns).
fn run(tenants: usize, workers: usize) -> (f64, usize, u64, u64) {
    let devices: Vec<Device> = (0..tenants).map(|_| Device::new(Family::Xcv50)).collect();
    let refs: Vec<&Device> = devices.iter().collect();
    let obs = Recorder::enabled();
    let t0 = Instant::now();
    let (ok, report) = serve(&refs, server_cfg(workers), obs.clone(), |client| {
        std::thread::scope(|s| {
            let joins: Vec<_> = (0..tenants)
                .map(|t| {
                    let handle = client.tenant(t as TenantId);
                    let dev = &devices[t];
                    s.spawn(move || produce(&handle, t as TenantId, PER_TENANT, dev))
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).sum::<usize>()
        })
    });
    let dt = t0.elapsed().as_secs_f64();
    assert!(report.tenants.iter().all(|t| !t.poisoned));
    for t in &report.tenants {
        assert_eq!(t.outcomes.len(), PER_TENANT, "every admission answered");
    }
    let snapshot = obs.report();
    let (mut p50, mut p99) = (0u64, 0u64);
    for t in 0..tenants {
        if let Some(h) = snapshot.hist(&labeled("svc.server.request_ns", "tenant", t)) {
            p50 = p50.max(h.p50());
            p99 = p99.max(h.p99());
        }
    }
    (dt, ok, p50, p99)
}

fn table() {
    eprintln!("\n=== E19: multi-tenant server throughput/latency (XCV50 shards) ===");
    eprintln!("{PER_TENANT} requests per tenant, batch watermarks 16 reqs / 8 steps");
    eprintln!(
        "{:<8} {:>8} {:>6} {:>10} {:>10} {:>12} {:>12}",
        "tenants", "workers", "ok", "time", "req/s", "p50", "p99"
    );
    for tenants in [1usize, 2, 4] {
        for workers in thread_counts(&[1, 2, 4, 8]) {
            let (dt, ok, p50, p99) = run(tenants, workers);
            let total = tenants * PER_TENANT;
            eprintln!(
                "{:<8} {:>8} {:>6} {:>8.0}ms {:>10.0} {:>10.2}ms {:>10.2}ms",
                tenants,
                workers,
                ok,
                dt * 1e3,
                total as f64 / dt,
                p50 as f64 / 1e6,
                p99 as f64 / 1e6,
            );
            assert!(ok > 0, "the mix must commit something");
        }
    }
}

fn bench(c: &mut Bench) {
    table();
    let mut g = c.benchmark_group("e19");
    for tenants in [1usize, 2, 4] {
        g.bench_function(format!("serve_{tenants}ten_4t"), |b| {
            b.iter_batched(|| (), |_| run(tenants, 4), BatchSize::PerIteration)
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
