//! E16: scenario corpus — trace replay, adversarial workloads, and
//! telemetry-driven self-tuning.
//!
//! Three questions this table answers:
//!
//! 1. **Replay fidelity** — a churn soak recorded into a `.jrt` trace
//!    must replay into a fresh deterministic service onto the identical
//!    segment census, and the replay throughput is a benchmark row (the
//!    service's end-to-end cost with zero generation overhead).
//! 2. **Adversarial routability** — the generators built to hurt
//!    (congestion cliques, long-line starvation, hotspot storms) must
//!    still converge under the default negotiated config.
//! 3. **Does the tuner pay?** — route each adversarial workload cold
//!    with the static default, fold the telemetry through
//!    [`TunerReport`], re-route with the tuned config. The gate
//!    asserts the tuned config never loses routability and strictly
//!    reduces search effort (open-list pushes) on at least one row.

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::pathfinder::{self, NetSpec, PathFinderConfig};
use jroute::tuner::TunerReport;
use jroute_bench::SEED;
use jroute_obs::Recorder;
use jroute_svc::{ExecMode, RoutingService, ServiceConfig, Trace};
use jroute_workloads::{
    congestion_cliques, hotspot_storm, long_line_starvation, ChurnParams, ChurnScenario,
};
use virtex::{Device, Family, RowCol};

const CHURN_STEPS: usize = 150;

fn det_cfg(threads: usize) -> ServiceConfig {
    ServiceConfig {
        threads,
        mode: ExecMode::Deterministic { seed: SEED },
        audit: true,
        ..Default::default()
    }
}

/// Soak a churn scenario and hand back its recorded trace plus the
/// census it must replay onto.
fn record_churn(dev: &Device) -> (Trace, Vec<(virtex::Segment, jroute::NetId)>) {
    let mut sc = ChurnScenario::new(dev, det_cfg(2), ChurnParams::default(), SEED);
    for _ in 0..CHURN_STEPS {
        sc.step().expect("churn soak must stay violation-free");
    }
    (sc.trace().clone(), sc.svc().db().census())
}

/// The three adversarial rows of the corpus.
fn adversarial_rows(dev: &Device) -> Vec<(&'static str, Vec<NetSpec>)> {
    let mut rng = DetRng::seed_from_u64(SEED);
    let d = dev.dims();
    vec![
        ("cliques", congestion_cliques(dev, 4, 6, 5, &mut rng)),
        ("starvation", long_line_starvation(dev, 10, 3, &mut rng)),
        (
            "hotspot",
            hotspot_storm(dev, RowCol::new(d.rows / 3, d.cols / 3), 3, 24, &mut rng),
        ),
    ]
}

struct Run {
    legal: bool,
    iterations: usize,
    open_pushes: u64,
    nodes_expanded: usize,
    report: jroute_obs::Report,
}

fn run(dev: &Device, specs: &[NetSpec], cfg: &PathFinderConfig) -> Run {
    let obs = Recorder::enabled();
    let r = pathfinder::route_all_obs(dev, specs, cfg, &obs).unwrap();
    let report = obs.report();
    Run {
        legal: r.legal,
        iterations: r.iterations,
        open_pushes: report.counter("maze.open_pushes").unwrap_or(0),
        nodes_expanded: r.nodes_expanded,
        report,
    }
}

fn table() {
    let dev = Device::new(Family::Xcv300);

    eprintln!("\n=== E16: scenario corpus (XCV300 adversarial, XCV50 churn) ===");
    eprintln!(
        "{:<22} | {:>5} {:>6} {:>6} {:>12} {:>12}",
        "row", "nets", "legal", "iters", "pushes", "nodes"
    );

    let base = PathFinderConfig::default();
    let mut tuned_won = false;
    for (name, specs) in adversarial_rows(&dev) {
        let cold = run(&dev, &specs, &base);
        let tuner = TunerReport::from_report(&cold.report).expect("searches happened");
        let tuned_cfg = tuner.tune(&base);
        let tuned = run(&dev, &specs, &tuned_cfg);
        for (tag, r) in [("static", &cold), ("tuned", &tuned)] {
            eprintln!(
                "{:<15}{:<7} | {:>5} {:>6} {:>6} {:>12} {:>12}",
                name,
                tag,
                specs.len(),
                r.legal,
                r.iterations,
                r.open_pushes,
                r.nodes_expanded
            );
        }
        assert!(cold.legal, "{name}: static default must converge");
        assert!(tuned.legal, "{name}: tuning must not lose routability");
        if tuned.open_pushes < cold.open_pushes {
            tuned_won = true;
        }
    }
    assert!(
        tuned_won,
        "the tuned config must beat the static default on at least one adversarial row"
    );

    // Replay fidelity: the churn trace lands a fresh service on the
    // soaked service's exact census.
    let churn_dev = Device::new(Family::Xcv50);
    let (trace, census) = record_churn(&churn_dev);
    let mut fresh = RoutingService::new(&churn_dev, det_cfg(2));
    let summary = trace.replay(&mut fresh).expect("trace replays");
    assert_eq!(summary.submitted, trace.len());
    assert_eq!(fresh.db().census(), census);
    eprintln!(
        "churn trace: {} steps, {} requests, {} succeeded, census {} segments — replay exact",
        CHURN_STEPS,
        summary.submitted,
        summary.succeeded,
        census.len()
    );
}

fn bench(c: &mut Bench) {
    table();
    let mut g = c.benchmark_group("e16");

    let dev = Device::new(Family::Xcv300);
    let base = PathFinderConfig::default();
    for (name, specs) in adversarial_rows(&dev) {
        let tuned_cfg = TunerReport::from_report(&run(&dev, &specs, &base).report)
            .expect("searches happened")
            .tune(&base);
        g.bench_function(format!("static_{name}"), |b| {
            b.iter_batched(
                || (),
                |_| pathfinder::route_all(&dev, &specs, &base).unwrap(),
                BatchSize::PerIteration,
            )
        });
        g.bench_function(format!("tuned_{name}"), |b| {
            b.iter_batched(
                || (),
                |_| pathfinder::route_all(&dev, &specs, &tuned_cfg).unwrap(),
                BatchSize::PerIteration,
            )
        });
    }

    let churn_dev = Device::new(Family::Xcv50);
    let (trace, _) = record_churn(&churn_dev);
    g.bench_function(format!("replay_churn_{CHURN_STEPS}"), |b| {
        b.iter_batched(
            || RoutingService::new(&churn_dev, det_cfg(2)),
            |mut svc| trace.replay(&mut svc).unwrap(),
            BatchSize::PerIteration,
        )
    });

    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
