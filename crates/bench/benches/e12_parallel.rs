//! E12 (§6 extension): parallel independent-net routing.
//!
//! Router latency is application latency in RTR systems; the paper lists
//! faster algorithms as future work. We measure the optimistic parallel
//! router's speedup over its own single-thread configuration on a large
//! netlist, and verify thread count does not change what gets routed.

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::parallel::{route_parallel, ParallelConfig};
use jroute_bench::{thread_counts, SEED};
use jroute_workloads::{random_netlist, NetlistParams};
use std::time::Instant;
use virtex::{Device, Family};

fn dev() -> Device {
    Device::new(Family::Xcv1000)
}

fn workload(dev: &Device, nets: usize) -> Vec<jroute::pathfinder::NetSpec> {
    let mut rng = DetRng::seed_from_u64(SEED);
    random_netlist(
        dev,
        &NetlistParams {
            nets,
            max_fanout: 2,
            max_span: Some(12),
        },
        &mut rng,
    )
}

fn table() {
    eprintln!("\n=== E12: parallel independent-net routing (extension of §6) ===");
    eprintln!(
        "{:<8} {:>8} {:>8} {:>10} {:>10} {:>9}",
        "threads", "routed", "rounds", "conflicts", "time", "speedup"
    );
    let dev = dev();
    let specs = workload(&dev, 120);
    let mut base = None;
    for threads in thread_counts(&[1, 2, 4, 8]) {
        let cfg = ParallelConfig {
            threads,
            ..Default::default()
        };
        let t0 = Instant::now();
        let r = route_parallel(&dev, &specs, &cfg);
        let dt = t0.elapsed().as_secs_f64();
        let base_dt = *base.get_or_insert(dt);
        eprintln!(
            "{:<8} {:>5}/{:<3} {:>8} {:>10} {:>8.0}ms {:>8.2}x",
            threads,
            r.nets.len(),
            specs.len(),
            r.rounds,
            r.conflicts,
            dt * 1e3,
            base_dt / dt
        );
    }
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let specs = workload(&dev, 60);
    let mut g = c.benchmark_group("e12");
    for threads in thread_counts(&[1, 4, 8]) {
        let cfg = ParallelConfig {
            threads,
            ..Default::default()
        };
        g.bench_function(format!("route_parallel_{threads}t"), |b| {
            b.iter_batched(
                || (),
                |_| route_parallel(&dev, &specs, &cfg),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
