//! E14 (service extension): batch routing front-end throughput.
//!
//! `jroute-svc` turns the parallel router into a request service —
//! bounded queues, priorities, deadlines, work-stealing dispatch. This
//! bench measures what the service layer adds on top of raw
//! `route_parallel`: batch latency for a pure-route burst at several
//! worker counts, the deterministic-mode overhead (single consumer,
//! seeded schedule), and a §5-style reconfiguration burst (unroute +
//! replace + fresh routes against committed state).

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute_bench::SEED;
use jroute_svc::{ExecMode, RequestKind, RoutingService, ServiceConfig};
use jroute_workloads::{random_netlist, NetlistParams};
use virtex::{Device, Family};

fn dev() -> Device {
    Device::new(Family::Xcv1000)
}

fn workload(dev: &Device, nets: usize, seed_salt: u64) -> Vec<jroute::pathfinder::NetSpec> {
    let mut rng = DetRng::seed_from_u64(SEED ^ seed_salt);
    random_netlist(
        dev,
        &NetlistParams {
            nets,
            max_fanout: 2,
            max_span: Some(12),
        },
        &mut rng,
    )
}

fn cfg(threads: usize, mode: ExecMode) -> ServiceConfig {
    ServiceConfig {
        threads,
        mode,
        audit: false,
        ..Default::default()
    }
}

fn bench(c: &mut Bench) {
    let dev = dev();
    let specs = workload(&dev, 60, 0);
    let mut g = c.benchmark_group("e14");

    // Pure route burst, threaded, across worker counts.
    for threads in [1usize, 4, 8] {
        g.bench_function(format!("svc_route_60_{threads}t"), |b| {
            b.iter_batched(
                || {
                    let mut svc = RoutingService::new(&dev, cfg(threads, ExecMode::Threaded));
                    for s in &specs {
                        svc.submit(RequestKind::Route(s.clone())).unwrap();
                    }
                    svc
                },
                |mut svc| {
                    let report = svc.run_batch();
                    assert!(report.executed >= 60);
                },
                BatchSize::PerIteration,
            )
        });
    }

    // Deterministic mode: the replayable-schedule overhead at the same
    // deque topology (single consumer drives 4 deques).
    g.bench_function("svc_route_60_det_4t", |b| {
        b.iter_batched(
            || {
                let mut svc =
                    RoutingService::new(&dev, cfg(4, ExecMode::Deterministic { seed: SEED }));
                for s in &specs {
                    svc.submit(RequestKind::Route(s.clone())).unwrap();
                }
                svc
            },
            |mut svc| {
                let report = svc.run_batch();
                assert!(report.executed >= 60);
            },
            BatchSize::PerIteration,
        )
    });

    // Reconfiguration burst: against 40 committed nets, unroute 10,
    // replace 5 (two replacements each), route 10 fresh — the §5
    // run-time core-swap traffic pattern as one batch.
    let base = workload(&dev, 40, 1);
    let fresh = workload(&dev, 20, 2);
    g.bench_function("svc_reconfig_burst_4t", |b| {
        b.iter_batched(
            || {
                let mut svc = RoutingService::new(&dev, cfg(4, ExecMode::Threaded));
                let ids: Vec<_> = base
                    .iter()
                    .map(|s| svc.submit(RequestKind::Route(s.clone())).unwrap())
                    .collect();
                let report = svc.run_batch();
                let committed: Vec<_> = ids
                    .iter()
                    .copied()
                    .filter(|&id| report.outcome(id).is_some_and(|o| o.is_success()))
                    .collect();
                let mut f = fresh.iter().cloned();
                for &id in committed.iter().take(10) {
                    svc.submit(RequestKind::Unroute(id)).unwrap();
                }
                for &id in committed.iter().skip(10).take(5) {
                    let add: Vec<_> = f.by_ref().take(2).collect();
                    svc.submit(RequestKind::Replace {
                        remove: vec![id],
                        add,
                    })
                    .unwrap();
                }
                for s in f {
                    svc.submit(RequestKind::Route(s)).unwrap();
                }
                svc
            },
            |mut svc| {
                let report = svc.run_batch();
                assert!(report.executed > 0);
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
