//! E4 (§3.1): predefined templates vs maze for point-to-point routing.
//!
//! Paper: templates are *"potentially faster ... The benefit of defining
//! the template would be to reduce the search space"*, but *"there is no
//! guarantee that an unused path even exists"*. We measure both
//! strategies as fabric occupancy rises: template hit rate falls with
//! congestion and the router falls back to the maze.

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::{Pin, Router};
use jroute_bench::SEED;
use jroute_workloads::window_netlist;
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Xcv300)
}

/// Prefill the window with `n` routed nets, then return the router.
fn prefilled(dev: &Device, n: usize) -> Router {
    let mut rng = DetRng::seed_from_u64(SEED);
    let mut r = Router::new(dev);
    let nets = window_netlist(dev, n, 8, RowCol::new(10, 16), &mut rng);
    for net in nets {
        // Some prefill nets may fail at extreme density; that's fine —
        // the survivors set the occupancy level.
        let _ = r.route(&net.source.into(), &net.sinks[0].into());
    }
    r
}

/// Probe pairs inside the window.
fn probes(dev: &Device) -> Vec<(Pin, Pin)> {
    let mut rng = DetRng::seed_from_u64(SEED + 1);
    window_netlist(dev, 10, 8, RowCol::new(10, 16), &mut rng)
        .into_iter()
        .map(|s| (s.source, s.sinks[0]))
        .collect()
}

fn run_probes(mut r: Router, templates: bool) -> (usize, usize, usize) {
    r.options_mut().use_templates_first = templates;
    let dev = *r.device();
    let mut ok = 0usize;
    for (s, k) in probes(&dev) {
        if r.route(&s.into(), &k.into()).is_ok() {
            ok += 1;
        }
    }
    (ok, r.stats().template_successes, r.stats().maze_fallbacks)
}

fn table() {
    eprintln!("\n=== E4: templates vs maze under occupancy (paper §3.1) ===");
    eprintln!(
        "{:<10} {:>8} {:>14} {:>10} {:>12}",
        "prefill", "routed", "template-hits", "fallbacks", "maze-routed"
    );
    let dev = dev();
    for prefill in [0usize, 20, 40, 80, 120] {
        let (ok_t, hits, fallbacks) = run_probes(prefilled(&dev, prefill), true);
        let (ok_m, _, _) = run_probes(prefilled(&dev, prefill), false);
        eprintln!(
            "{:<10} {:>4}/{:<3} {:>14} {:>10} {:>8}/10",
            prefill, ok_t, 10, hits, fallbacks, ok_m
        );
    }
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let mut g = c.benchmark_group("e4");
    for prefill in [0usize, 40, 120] {
        g.bench_function(format!("templates_prefill_{prefill}"), |b| {
            b.iter_batched(
                || prefilled(&dev, prefill),
                |r| run_probes(r, true),
                BatchSize::PerIteration,
            )
        });
        g.bench_function(format!("maze_prefill_{prefill}"), |b| {
            b.iter_batched(
                || prefilled(&dev, prefill),
                |r| run_probes(r, false),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
