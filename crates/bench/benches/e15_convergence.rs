//! E15: incremental PathFinder convergence on an XCV1000-class grid.
//!
//! The negotiated router's cost on a large array is dominated by two
//! things the incremental machinery attacks directly: re-searching nets
//! that were never in trouble (dirty-net rip-up avoids it) and expanding
//! maze nodes far from a net's terminals (bounding-box pruning avoids
//! it). This bench routes the same congested workload twice — once with
//! the incremental schedule (dirty nets only, region-pruned searches,
//! adaptive `pres_fac`) and once with the classic full-ripup schedule —
//! and records both, so the regression gate keeps the gap honest.
//!
//! The table also asserts the core incrementality claim: once iteration
//! 1 is done, the incremental schedule re-searches strictly fewer nets
//! than full rip-up (which re-searches all of them, every iteration).

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::pathfinder::{self, NetSpec, PathFinderConfig};
use jroute_bench::SEED;
use jroute_obs::Recorder;
use jroute_workloads::{random_netlist, window_netlist, NetlistParams};
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Xcv1000)
}

/// Scattered short nets across the whole array plus one congested window
/// in the middle: the window forces multi-iteration negotiation while the
/// scattered nets are exactly the ones a full rip-up re-searches for
/// nothing.
fn workload(dev: &Device, scattered: usize, hot: usize, window: u16) -> Vec<NetSpec> {
    let mut rng = DetRng::seed_from_u64(SEED);
    let mut specs = random_netlist(
        dev,
        &NetlistParams {
            nets: scattered,
            max_fanout: 2,
            max_span: Some(8),
        },
        &mut rng,
    );
    specs.extend(window_netlist(
        dev,
        hot,
        window,
        RowCol::new(32, 48),
        &mut rng,
    ));
    specs
}

fn incremental_cfg() -> PathFinderConfig {
    PathFinderConfig::default()
}

fn full_ripup_cfg() -> PathFinderConfig {
    PathFinderConfig {
        incremental: false,
        bbox_margin: None,
        adaptive_pres: false,
        ..PathFinderConfig::default()
    }
}

struct Run {
    legal: bool,
    iterations: usize,
    nets_rerouted: u64,
    bbox_prunes: u64,
    nodes_expanded: usize,
}

fn run(dev: &Device, specs: &[NetSpec], cfg: &PathFinderConfig) -> Run {
    let obs = Recorder::enabled();
    let r = pathfinder::route_all_obs(dev, specs, cfg, &obs).unwrap();
    let rep = obs.report();
    Run {
        legal: r.legal,
        iterations: r.iterations,
        nets_rerouted: rep.counter("pathfinder.nets_rerouted").unwrap_or(0),
        bbox_prunes: rep.counter("maze.bbox_prunes").unwrap_or(0),
        nodes_expanded: r.nodes_expanded,
    }
}

fn table() {
    eprintln!("\n=== E15: incremental vs full-ripup PathFinder (XCV1000) ===");
    eprintln!(
        "{:<18} | {:>6} {:>6} {:>10} {:>12} {:>12}",
        "schedule", "legal", "iters", "re-nets", "prunes", "nodes"
    );
    let dev = dev();
    for (scattered, hot, window) in [(60usize, 48usize, 3u16), (120, 64, 4)] {
        let specs = workload(&dev, scattered, hot, window);
        let nets = specs.len();
        let incr = run(&dev, &specs, &incremental_cfg());
        let full = run(&dev, &specs, &full_ripup_cfg());
        for (name, r) in [("incremental", &incr), ("full_ripup", &full)] {
            eprintln!(
                "{:<11}n={:<4} | {:>6} {:>6} {:>10} {:>12} {:>12}",
                name, nets, r.legal, r.iterations, r.nets_rerouted, r.bbox_prunes, r.nodes_expanded
            );
        }
        assert!(incr.legal && full.legal, "both schedules must converge");
        if full.iterations > 1 {
            // Full rip-up re-searches every net every iteration; the
            // incremental schedule must do strictly better after
            // iteration 1 (§ISSUE acceptance).
            assert_eq!(full.nets_rerouted, (nets * full.iterations) as u64);
            assert!(
                incr.nets_rerouted < full.nets_rerouted,
                "incremental rerouted {} nets, full {}",
                incr.nets_rerouted,
                full.nets_rerouted
            );
        }
    }
    // One incremental-only row on the synthetic SUPER4 fabric (full
    // rip-up without region pruning is prohibitively slow out there —
    // which is the point): the incremental schedule must keep converging
    // past the real family's ceiling. E18 carries the worker sweep.
    let big = Device::new(Family::Super4);
    let specs = workload(&big, 60, 32, 3);
    let incr = run(&big, &specs, &incremental_cfg());
    eprintln!(
        "{:<5}{:<6}n={:<4} | {:>6} {:>6} {:>10} {:>12} {:>12}",
        "incr_",
        big.family().name(),
        specs.len(),
        incr.legal,
        incr.iterations,
        incr.nets_rerouted,
        incr.bbox_prunes,
        incr.nodes_expanded
    );
    assert!(
        incr.legal,
        "incremental negotiation must converge on SUPER4"
    );
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let mut g = c.benchmark_group("e15");
    for (scattered, hot, window) in [(60usize, 48usize, 3u16), (120, 64, 4)] {
        let specs = workload(&dev, scattered, hot, window);
        let nets = specs.len();
        g.bench_function(format!("incremental_{nets}"), |b| {
            b.iter_batched(
                || (),
                |_| pathfinder::route_all(&dev, &specs, &incremental_cfg()).unwrap(),
                BatchSize::PerIteration,
            )
        });
        g.bench_function(format!("full_ripup_{nets}"), |b| {
            b.iter_batched(
                || (),
                |_| pathfinder::route_all(&dev, &specs, &full_ripup_cfg()).unwrap(),
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
