//! E8 (§3.1): the greedy RTR router vs a traditional negotiated router.
//!
//! Paper: *"Each of the auto-routing calls described above use greedy
//! routing algorithms. ... In an RTR environment traditional routing
//! algorithms require too much time."* The expected shape: greedy is
//! much faster and fine at low congestion; PathFinder costs more effort
//! (iterations, node expansions) but keeps routing where greedy starts
//! failing.

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::pathfinder::{self, NetSpec, PathFinderConfig};
use jroute::Router;
use jroute_bench::SEED;
use jroute_workloads::window_netlist;
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Xcv300)
}

fn workload(dev: &Device, nets: usize) -> Vec<NetSpec> {
    let mut rng = DetRng::seed_from_u64(SEED);
    window_netlist(dev, nets, 6, RowCol::new(12, 18), &mut rng)
}

/// First-come-first-served greedy routing (the JRoute auto-router).
fn greedy(dev: &Device, specs: &[NetSpec]) -> (usize, usize) {
    let mut r = Router::new(dev);
    let mut ok = 0usize;
    for s in specs {
        if r.route(&s.source.into(), &s.sinks[0].into()).is_ok() {
            ok += 1;
        }
    }
    (ok, r.stats().maze_nodes_expanded)
}

fn negotiated(dev: &Device, specs: &[NetSpec]) -> (usize, usize, usize, bool) {
    let r = pathfinder::route_all(dev, specs, &PathFinderConfig::default()).unwrap();
    (r.nets.len(), r.nodes_expanded, r.iterations, r.legal)
}

fn table() {
    eprintln!("\n=== E8: greedy (JRoute) vs negotiated congestion (PathFinder) ===");
    eprintln!(
        "{:<6} | {:>10} {:>12} | {:>10} {:>12} {:>6} {:>6}",
        "nets", "greedy-ok", "g-nodes", "pf-ok", "pf-nodes", "iters", "legal"
    );
    let dev = dev();
    for nets in [10usize, 40, 80, 140] {
        let specs = workload(&dev, nets);
        let (g_ok, g_nodes) = greedy(&dev, &specs);
        let (p_ok, p_nodes, iters, legal) = negotiated(&dev, &specs);
        eprintln!(
            "{:<6} | {:>7}/{:<3} {:>12} | {:>7}/{:<3} {:>12} {:>6} {:>6}",
            nets, g_ok, nets, g_nodes, p_ok, nets, p_nodes, iters, legal
        );
    }
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let mut g = c.benchmark_group("e8");
    for nets in [40usize, 140] {
        let specs = workload(&dev, nets);
        g.bench_function(format!("greedy_{nets}"), |b| {
            b.iter_batched(|| (), |_| greedy(&dev, &specs), BatchSize::PerIteration)
        });
        g.bench_function(format!("pathfinder_{nets}"), |b| {
            b.iter_batched(|| (), |_| negotiated(&dev, &specs), BatchSize::PerIteration)
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
