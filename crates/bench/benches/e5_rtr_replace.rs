//! E5 (§3.3): run-time core replacement vs full reconfiguration.
//!
//! Paper: *"A core may be replaced with the same type of core having
//! different parameters. In this case the user can unroute the core then
//! replace it"* — without *"having to reconfigure the entire design"*.
//! We build a stimulus → multiplier → adder pipeline, then swap the
//! multiplier constant, and compare (a) configuration frames touched and
//! (b) wall time against rebuilding the whole design from a blank
//! device.

use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::{EndPoint, Router};
use jroute_cores::{replace_with, ConstAdder, ConstMultiplier, RtpCore, StimulusBank};
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Xcv300)
}

struct Design {
    router: Router,
    stim: StimulusBank,
    mul: ConstMultiplier,
    adder: ConstAdder,
}

fn build(dev: &Device, k: u8) -> Design {
    let mut router = Router::new(dev);
    let mut stim = StimulusBank::new(4, RowCol::new(4, 4));
    let mut mul = ConstMultiplier::new(k, 8, RowCol::new(4, 12));
    let mut adder = ConstAdder::new(8, 17, RowCol::new(4, 22));
    stim.implement(&mut router).unwrap();
    mul.implement(&mut router).unwrap();
    adder.implement(&mut router).unwrap();
    let s: Vec<EndPoint> = stim.out_ports().iter().map(|&p| p.into()).collect();
    let a: Vec<EndPoint> = mul.a_ports().iter().map(|&p| p.into()).collect();
    router.route_bus(&s, &a).unwrap();
    let p: Vec<EndPoint> = mul.p_ports().iter().map(|&p| p.into()).collect();
    let d: Vec<EndPoint> = adder.a_ports().iter().map(|&p| p.into()).collect();
    router.route_bus(&p, &d).unwrap();
    Design {
        router,
        stim,
        mul,
        adder,
    }
}

fn table() {
    eprintln!("\n=== E5: RTR core replacement vs full reconfiguration (paper §3.3) ===");
    let dev = dev();

    // Full build cost in frames.
    let mut d = build(&dev, 3);
    let full_frames = d.router.bits_mut().frames_mut().take().len();

    // Replacement cost in frames.
    replace_with(&mut d.mul, &mut d.router, |m| m.set_constant(11)).unwrap();
    let replace_frames = d.router.bits_mut().frames_mut().take().len();
    assert!(
        d.router.remembered().is_empty(),
        "connections must be re-made"
    );

    eprintln!("{:<28} {:>8}", "action", "frames");
    eprintln!("{:<28} {:>8}", "full design configuration", full_frames);
    eprintln!(
        "{:<28} {:>8}",
        "replace multiplier (K=3→11)", replace_frames
    );
    eprintln!(
        "replacement touches {:.0}% of the full-configuration frames",
        100.0 * replace_frames as f64 / full_frames as f64
    );
    assert!(
        replace_frames < full_frames,
        "partial reconfig must be cheaper"
    );
    let _ = (&d.stim, &d.adder);
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let mut g = c.benchmark_group("e5");
    g.bench_function("replace_multiplier_constant", |b| {
        b.iter_batched(
            || build(&dev, 3),
            |mut d| {
                replace_with(&mut d.mul, &mut d.router, |m| m.set_constant(11)).unwrap();
                d
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("full_rebuild", |b| {
        b.iter_batched(|| (), |_| build(&dev, 11), BatchSize::PerIteration)
    });
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
