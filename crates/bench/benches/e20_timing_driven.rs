//! E20: criticality-driven negotiation + congestion-aware Steiner trees.
//!
//! The RWRoute-style recipe on top of the negotiated router: per-sink
//! criticality blends a delay term into the PathFinder cost
//! (`(1−crit)·congestion + crit·delay`), and nets above a fan-out
//! threshold are built as best-of-two Steiner trees instead of the
//! greedy nearest-first chain. Three claims are gated here:
//!
//! 1. **Delay** — on an e13-style contended workload (XCV1000 and the
//!    synthetic SUPER4), the criticality-driven run must converge with a
//!    *strictly lower* critical-path delay than the pure-congestion run,
//!    with zero routability loss (both legal, same nets routed).
//! 2. **Wirelength** — on e3-style high-fanout nets, the Steiner builder
//!    must never use more segments than the greedy tree (the greedy
//!    order is one of its arms, so ≤ holds structurally).
//! 3. **Determinism** — the criticality-driven engine stays bit-identical
//!    across worker counts (`JROUTE_THREADS` override honoured).

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::pathfinder::{self, NetSpec, PathFinderConfig, PathFinderResult};
use jroute::{EndPoint, Router, RouterOptions};
use jroute_bench::{thread_counts, SEED};
use jroute_timing::analyze_net;
use jroute_workloads::{fanout_spec, window_netlist};
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Xcv1000)
}

/// e13-style timing workload: one contended window (forces negotiation,
/// so criticality actually steers rip-up) plus high-fanout nets spread
/// far apart (they cross the Steiner threshold and carry long arrival
/// chains under greedy reuse).
fn workload(dev: &Device, hot: usize) -> Vec<NetSpec> {
    let mut rng = DetRng::seed_from_u64(SEED);
    let mut specs = window_netlist(dev, hot, 3, RowCol::new(32, 48), &mut rng);
    for (row, col) in [(8u16, 12u16), (8, 60), (52, 12)] {
        specs.push(fanout_spec(dev, RowCol::new(row, col), 8, 8, &mut rng));
    }
    specs
}

fn base_cfg() -> PathFinderConfig {
    PathFinderConfig::default()
}

fn timing_cfg() -> PathFinderConfig {
    PathFinderConfig::timing_driven()
}

/// Critical-path delay of a converged result, measured the honest way:
/// apply the routes to a bitstream and run the readback-based analysis
/// (`timing::analysis`), not the router's own bookkeeping.
fn critical_delay(dev: &Device, r: &PathFinderResult) -> u64 {
    let mut bits = jbits::Bitstream::new(dev);
    pathfinder::apply(r, &mut bits).expect("converged result applies");
    r.nets
        .iter()
        .map(|n| {
            let src = dev
                .canonicalize(n.spec.source.rc, n.spec.source.wire)
                .unwrap();
            analyze_net(&bits, src).max_delay()
        })
        .max()
        .unwrap_or(0)
}

/// Route one e3-style high-fanout net and return segments used.
fn fanout_wirelength(dev: &Device, fanout: usize, steiner: Option<usize>) -> usize {
    let mut rng = DetRng::seed_from_u64(SEED);
    let spec = fanout_spec(dev, RowCol::new(16, 24), fanout, 8, &mut rng);
    let mut r = Router::with_options(
        dev,
        RouterOptions {
            steiner_fanout: steiner,
            ..Default::default()
        },
    );
    let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
    r.route_fanout(&spec.source.into(), &sinks).unwrap();
    assert_eq!(
        r.trace(&spec.source.into()).unwrap().sinks.len(),
        spec.sinks.len(),
        "every sink reached"
    );
    r.nets().used_segments()
}

/// Per-net (segments, sink delays) fingerprint for bit-identity checks.
type CensusKey = Vec<(Vec<virtex::Segment>, Vec<u64>)>;

fn census_key(r: &PathFinderResult) -> CensusKey {
    r.nets
        .iter()
        .map(|n| (n.segments.clone(), n.sink_delays.clone()))
        .collect()
}

fn table() {
    eprintln!("\n=== E20: pure-congestion vs criticality-driven negotiation ===");
    eprintln!(
        "{:<14} | {:>6} {:>6} {:>12} {:>12} {:>8}",
        "fabric", "legal", "iters", "cong(ps)", "crit(ps)", "gain"
    );
    for (fam, hot) in [(Family::Xcv1000, 48usize), (Family::Super4, 32)] {
        let dev = Device::new(fam);
        let specs = workload(&dev, hot);
        let base = pathfinder::route_all(&dev, &specs, &base_cfg()).unwrap();
        let timed = pathfinder::route_all(&dev, &specs, &timing_cfg()).unwrap();
        assert!(base.legal && timed.legal, "both modes must converge");
        assert_eq!(
            base.nets.len(),
            timed.nets.len(),
            "zero routability loss: same nets routed"
        );
        let bd = critical_delay(&dev, &base);
        let td = critical_delay(&dev, &timed);
        eprintln!(
            "{:<14} | {:>6} {:>6} {:>12} {:>12} {:>7.1}%",
            fam.name(),
            timed.legal,
            timed.iterations,
            bd,
            td,
            100.0 * (bd as f64 - td as f64) / bd as f64
        );
        assert!(
            td < bd,
            "{}: criticality-driven delay {td}ps must strictly beat pure-congestion {bd}ps",
            fam.name()
        );
    }

    eprintln!("\n=== E20: Steiner vs greedy fan-out wirelength (segments) ===");
    eprintln!(
        "{:<8} {:>8} {:>8} {:>8}",
        "fanout", "greedy", "steiner", "saving"
    );
    let x300 = Device::new(Family::Xcv300);
    for fanout in [8usize, 16, 32] {
        let g = fanout_wirelength(&x300, fanout, None);
        let s = fanout_wirelength(&x300, fanout, Some(6));
        eprintln!(
            "{:<8} {:>8} {:>8} {:>7.1}%",
            fanout,
            g,
            s,
            100.0 * (g as f64 - s as f64) / g as f64
        );
        assert!(
            s <= g,
            "fanout {fanout}: steiner used {s} segments, greedy {g}"
        );
    }

    // Determinism across worker counts, on the real-family row.
    let dev = dev();
    let specs = workload(&dev, 48);
    let mut reference: Option<(usize, CensusKey)> = None;
    for workers in thread_counts(&[1, 4, 8]) {
        let r = pathfinder::route_all(
            &dev,
            &specs,
            &PathFinderConfig {
                threads: workers,
                ..timing_cfg()
            },
        )
        .unwrap();
        let key = (r.iterations, census_key(&r));
        match &reference {
            None => reference = Some(key),
            Some(want) => assert_eq!(
                want, &key,
                "criticality-driven result differs at {workers} workers"
            ),
        }
    }
    eprintln!("\nworker sweep: census + delays bit-identical");
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let specs = workload(&dev, 48);
    let mut g = c.benchmark_group("e20");
    g.bench_function("pure_congestion", |b| {
        b.iter_batched(
            || (),
            |_| pathfinder::route_all(&dev, &specs, &base_cfg()).unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("criticality_driven", |b| {
        b.iter_batched(
            || (),
            |_| pathfinder::route_all(&dev, &specs, &timing_cfg()).unwrap(),
            BatchSize::PerIteration,
        )
    });
    let x300 = Device::new(Family::Xcv300);
    for fanout in [8usize, 32] {
        g.bench_function(format!("steiner_fanout_{fanout}"), |b| {
            b.iter_batched(
                || (),
                |_| fanout_wirelength(&x300, fanout, Some(6)),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("greedy_fanout_{fanout}"), |b| {
            b.iter_batched(
                || (),
                |_| fanout_wirelength(&x300, fanout, None),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
