//! E11 (§4): port-based core composition.
//!
//! Paper: *"a counter can be made from a constant adder with the output
//! fed back to one input ports and the other input set to a value of
//! one"* — composition through ports, no architecture knowledge needed.
//! We build the composed counter (register + adder, bus-connected by
//! ports) and the monolithic [`Counter`] core, and compare construction
//! cost and resources.

use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::{EndPoint, Router};
use jroute_cores::{ConstAdder, Counter, Register, RtpCore};
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Xcv300)
}

fn composed(dev: &Device, width: usize) -> Router {
    let mut r = Router::new(dev);
    let mut reg = Register::new(width, 0, RowCol::new(4, 4));
    let mut add = ConstAdder::new(width, 1, RowCol::new(4, 12));
    reg.implement(&mut r).unwrap();
    add.implement(&mut r).unwrap();
    let q: Vec<EndPoint> = reg.q_ports().iter().map(|&p| p.into()).collect();
    let a: Vec<EndPoint> = add.a_ports().iter().map(|&p| p.into()).collect();
    let sum: Vec<EndPoint> = add.sum_ports().iter().map(|&p| p.into()).collect();
    let d: Vec<EndPoint> = reg.d_ports().iter().map(|&p| p.into()).collect();
    r.route_bus(&q, &a).unwrap();
    r.route_bus(&sum, &d).unwrap();
    r
}

fn monolithic(dev: &Device, width: usize) -> Router {
    let mut r = Router::new(dev);
    let mut ctr = Counter::new(width, 0, RowCol::new(4, 4));
    ctr.implement(&mut r).unwrap();
    r
}

fn table() {
    eprintln!("\n=== E11: composed counter (reg+adder via ports) vs monolithic (paper §4) ===");
    eprintln!(
        "{:<8} | {:>10} {:>10} | {:>10} {:>10}",
        "width", "comp-pips", "comp-segs", "mono-pips", "mono-segs"
    );
    let dev = dev();
    for width in [4usize, 8, 16] {
        let rc = composed(&dev, width);
        let rm = monolithic(&dev, width);
        eprintln!(
            "{:<8} | {:>10} {:>10} | {:>10} {:>10}",
            width,
            rc.stats().pips_set,
            rc.resource_usage().total(),
            rm.stats().pips_set,
            rm.resource_usage().total()
        );
    }
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let mut g = c.benchmark_group("e11");
    for width in [4usize, 16] {
        g.bench_function(format!("composed_counter_{width}"), |b| {
            b.iter_batched(|| (), |_| composed(&dev, width), BatchSize::PerIteration)
        });
        g.bench_function(format!("monolithic_counter_{width}"), |b| {
            b.iter_batched(|| (), |_| monolithic(&dev, width), BatchSize::PerIteration)
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
