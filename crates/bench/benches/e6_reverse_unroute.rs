//! E6 (§3.3): reverse unrouting frees only the branch to the sink.
//!
//! Paper: *"The entire net, starting from the source, is not removed.
//! Only the branch that leads to the specified pin is turned off, and
//! freed up for reuse."* We route fan-out nets, remove one sink, and
//! measure PIPs freed vs the net's total, verifying the remaining sinks
//! stay connected.

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jroute::{EndPoint, Router};
use jroute_bench::SEED;
use jroute_workloads::fanout_spec;
use virtex::{Device, Family, RowCol};

fn dev() -> Device {
    Device::new(Family::Xcv300)
}

fn routed_fanout(dev: &Device, fanout: usize) -> (Router, jroute::pathfinder::NetSpec) {
    let mut rng = DetRng::seed_from_u64(SEED);
    let spec = fanout_spec(dev, RowCol::new(16, 24), fanout, 8, &mut rng);
    let mut r = Router::new(dev);
    let sinks: Vec<EndPoint> = spec.sinks.iter().map(|&p| p.into()).collect();
    r.route_fanout(&spec.source.into(), &sinks).unwrap();
    (r, spec)
}

fn table() {
    eprintln!("\n=== E6: reverse unroute — branch-only removal (paper §3.3) ===");
    eprintln!(
        "{:<8} {:>10} {:>14} {:>16}",
        "fanout", "net pips", "branch freed", "sinks intact"
    );
    let dev = dev();
    for fanout in [2usize, 4, 8, 16] {
        let (mut r, spec) = routed_fanout(&dev, fanout);
        let total = r.bits().on_pip_count();
        let victim: EndPoint = spec.sinks[fanout / 2].into();
        let freed = r.reverse_unroute(&victim).unwrap();
        let traced = r.trace(&spec.source.into()).unwrap();
        let intact = traced.sinks.len();
        eprintln!(
            "{:<8} {:>10} {:>14} {:>13}/{:<2}",
            fanout,
            total,
            freed,
            intact,
            fanout - 1
        );
        assert_eq!(intact, fanout - 1, "other branches must survive");
        assert!(freed < total, "branch removal must not clear the whole net");
        // The freed resources are reusable: route the sink again.
        r.route(&spec.source.into(), &victim).unwrap();
        assert_eq!(r.trace(&spec.source.into()).unwrap().sinks.len(), fanout);
    }
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let mut g = c.benchmark_group("e6");
    for fanout in [4usize, 16] {
        g.bench_function(format!("reverse_unroute_fanout_{fanout}"), |b| {
            b.iter_batched(
                || routed_fanout(&dev, fanout),
                |(mut r, spec)| {
                    r.reverse_unroute(&spec.sinks[fanout / 2].into()).unwrap();
                    r
                },
                BatchSize::PerIteration,
            )
        });
        g.bench_function(format!("forward_unroute_fanout_{fanout}"), |b| {
            b.iter_batched(
                || routed_fanout(&dev, fanout),
                |(mut r, spec)| {
                    r.unroute(&spec.source.into()).unwrap();
                    r
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
