//! E7 (§3.4): contention detection and the cost of protection.
//!
//! Paper: *"The router makes sure that this situation does not occur, and
//! therefore protects the device. An exception is thrown in cases where
//! the user tries to make connections that create contention."* We hammer
//! the router with adversarial manual connections and verify every
//! double-drive is rejected, then measure the overhead of the `is_on`
//! check and of contention-checked PIP writes vs raw JBits writes.

use detrand::DetRng;
use harness::{bench_group, bench_main, BatchSize, Bench};
use jbits::Bitstream;
use jroute::{RouteError, Router};
use jroute_bench::SEED;
use virtex::{Device, Family, RowCol, Wire};

fn dev() -> Device {
    Device::new(Family::Xcv300)
}

/// Random (existing) pips in a window, many of which collide.
fn adversarial_pips(dev: &Device, n: usize) -> Vec<(RowCol, Wire, Wire)> {
    let mut rng = DetRng::seed_from_u64(SEED);
    let mut out = Vec::with_capacity(n);
    let mut buf = Vec::new();
    while out.len() < n {
        let rc = RowCol::new(rng.gen_range(8u16..12), rng.gen_range(8u16..12));
        let from = Wire(rng.gen_range(0..virtex::wire::NUM_LOCAL_WIRES as u16));
        buf.clear();
        dev.arch().pips_from(rc, from, &mut buf);
        if buf.is_empty() {
            continue;
        }
        let to = buf[rng.gen_range(0..buf.len())];
        out.push((rc, from, to));
    }
    out
}

fn table() {
    eprintln!("\n=== E7: contention protection (paper §3.4) ===");
    let dev = dev();
    let pips = adversarial_pips(&dev, 2000);
    let mut r = Router::new(&dev);
    let (mut ok, mut contention, mut other) = (0usize, 0usize, 0usize);
    for &(rc, from, to) in &pips {
        match r.route_pip(rc, from, to) {
            Ok(()) => ok += 1,
            Err(RouteError::Contention { .. }) => contention += 1,
            Err(_) => other += 1,
        }
    }
    eprintln!("manual connections attempted: {}", pips.len());
    eprintln!("accepted: {ok}  contention-rejected: {contention}  other: {other}");
    assert!(
        contention > 0,
        "the adversarial workload must provoke contention"
    );
    // Invariant: after the storm, no segment is double-driven.
    let mut double = 0usize;
    for rc in dev.dims().iter_tiles() {
        for pip in r.bits().pips_at(rc) {
            if let Some(seg) = dev.canonicalize(rc, pip.to) {
                if r.bits().segment_drivers(seg).len() > 1 {
                    double += 1;
                }
            }
        }
    }
    eprintln!("doubly driven segments after storm: {double}");
    assert_eq!(double, 0, "protection must hold under adversarial use");
}

fn bench(c: &mut Bench) {
    table();
    let dev = dev();
    let pips = adversarial_pips(&dev, 500);
    let mut g = c.benchmark_group("e7");
    g.bench_function("router_protected_writes_500", |b| {
        b.iter_batched(
            || Router::new(&dev),
            |mut r| {
                for &(rc, from, to) in &pips {
                    let _ = r.route_pip(rc, from, to);
                }
                r
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("raw_jbits_writes_500", |b| {
        b.iter_batched(
            || Bitstream::new(&dev),
            |mut bits| {
                for &(rc, from, to) in &pips {
                    let _ = bits.set_pip(rc, from, to);
                }
                bits
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("is_on_query", |b| {
        let mut r = Router::new(&dev);
        for &(rc, from, to) in &pips[..100] {
            let _ = r.route_pip(rc, from, to);
        }
        b.iter(|| {
            let mut n = 0usize;
            for &(rc, _, to) in &pips {
                if r.is_on(rc, to).unwrap_or(false) {
                    n += 1;
                }
            }
            n
        })
    });
    g.finish();
}

bench_group! {
    name = benches;
    config = Bench::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
bench_main!(benches);
