//! # detrand — deterministic random numbers without external crates
//!
//! The whole workspace builds hermetically (no registry access), so the
//! seeded generators that used to come from `rand`/`rand_chacha` live
//! here instead. [`DetRng`] is a xoshiro256\*\* generator seeded through
//! SplitMix64 — fast, well distributed, and *stable*: the stream produced
//! for a given seed is part of this crate's contract, because every
//! workload, experiment and property test in the repo is keyed on it.
//!
//! The API deliberately mirrors the small slice of `rand` the workspace
//! actually used: `seed_from_u64`, `gen_range` over (inclusive) integer
//! ranges, `gen_bool`, and the [`SliceRandom`] `choose`/`shuffle`
//! extension trait.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 stream; used to expand a 64-bit seed into
/// full generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable pseudo-random number generator
/// (xoshiro256\*\*).
///
/// Not cryptographic; intended for reproducible workload generation,
/// property testing and benchmarking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Generator fully determined by `seed`: equal seeds produce equal
    /// streams, forever.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 expansion guarantees a non-zero xoshiro state even
        // for seed 0.
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..n` (Lemire's unbiased method). `n` must be
    /// non-zero.
    #[inline]
    pub fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "bounded(0)");
        let mut m = (self.next_u64() as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                m = (self.next_u64() as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value from an integer range, e.g. `rng.gen_range(0..24u16)`
    /// or `rng.gen_range(lo..=hi)`. Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard float-in-[0,1) trick.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

/// Integer range types [`DetRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one uniform value.
    fn sample(self, rng: &mut DetRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.bounded(span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    // Only reachable for the full 64-bit domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.bounded(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `choose`/`shuffle` over slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose(&self, rng: &mut DetRng) -> Option<&Self::Item>;
    /// Uniform (Fisher–Yates) in-place shuffle.
    fn shuffle(&mut self, rng: &mut DetRng);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    #[inline]
    fn choose(&self, rng: &mut DetRng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.bounded(self.len() as u64) as usize])
        }
    }

    fn shuffle(&mut self, rng: &mut DetRng) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.bounded(i as u64 + 1) as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(43);
        assert!((0..10).any(|_| a.next_u64() != c.next_u64()));
    }

    #[test]
    fn stream_is_stable_across_releases() {
        // The first outputs for seed 0 are part of the crate contract:
        // changing them silently re-seeds every experiment in the repo.
        let mut r = DetRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3u16..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let z = r.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut r = DetRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "8-value range not covered in 1000 draws"
        );
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = DetRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            // Expected 10_000 per bucket; 10 sigma ≈ 949.
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut r = DetRng::seed_from_u64(1);
        assert_eq!(r.gen_range(5u8..=5), 5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = DetRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!(
            (23_000..27_000).contains(&heads),
            "p=0.25 gave {heads}/100000"
        );
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = DetRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut r), None);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut r).unwrap()));
        }
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig, "50-element shuffle left slice unchanged");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }
}
