//! The functional simulator.
//!
//! Evaluates the configured logic: each slice has two 4-input LUTs
//! (`F`, `G`) whose combinational outputs appear on `X`/`Y`, and two
//! flip-flops registering them onto `XQ`/`YQ` at a clock edge. Input pins
//! read the value of the logic source the netlist traced for them;
//! undriven pins read 0. `CE` gates the clock when connected; `SR` is a
//! synchronous reset.
//!
//! External stimulus is injected by *forcing* a logic source (typically a
//! slice output used as a test driver) to a value.

use crate::netlist::{InputPin, LogicSource, Netlist};
use jbits::Bitstream;
use std::collections::{HashMap, HashSet};
use virtex::wire::slice_in_pin;
use virtex::RowCol;

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum SimError {
    /// Combinational feedback loop through LUTs (no registers on the
    /// cycle).
    CombinationalLoop { at: RowCol, slice: u8 },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CombinationalLoop { at, slice } => {
                write!(f, "combinational loop through LUT at {at} slice {slice}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Identity of one flip-flop: tile, slice, 0 = F (drives `XQ`),
/// 1 = G (drives `YQ`).
type FfKey = (RowCol, u8, u8);

/// Device-level functional simulator over a configuration.
pub struct Simulator<'a> {
    bits: &'a Bitstream,
    netlist: Netlist,
    /// Flip-flop state (absent = 0).
    ff: HashMap<FfKey, bool>,
    /// Forced logic-source values (test stimuli).
    forces: HashMap<LogicSource, bool>,
    /// Slices that participate in the design (have driven inputs or act
    /// as sources).
    active: HashSet<(RowCol, u8)>,
}

impl<'a> Simulator<'a> {
    /// Build a simulator for the current configuration. Reconfigure the
    /// bitstream → build a new simulator (RTR flows snapshot per step).
    pub fn new(bits: &'a Bitstream) -> Self {
        let netlist = Netlist::extract(bits);
        let mut active = HashSet::new();
        for (pin, src) in &netlist.inputs {
            active.insert((pin.rc, pin.slice));
            match *src {
                LogicSource::X { rc, slice }
                | LogicSource::Y { rc, slice }
                | LogicSource::Xq { rc, slice }
                | LogicSource::Yq { rc, slice } => {
                    active.insert((rc, slice));
                }
                LogicSource::Gclk(_) => {}
            }
        }
        Simulator {
            bits,
            netlist,
            ff: HashMap::new(),
            forces: HashMap::new(),
            active,
        }
    }

    /// The extracted netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Force a logic source to a constant (external stimulus). Forcing
    /// wins over the configured logic.
    pub fn force(&mut self, src: LogicSource, value: bool) {
        self.forces.insert(src, value);
    }

    /// Remove a force.
    pub fn unforce(&mut self, src: LogicSource) {
        self.forces.remove(&src);
    }

    /// Directly set a flip-flop (e.g. to model global set/reset).
    pub fn set_ff(&mut self, rc: RowCol, slice: u8, lut: u8, value: bool) {
        self.ff.insert((rc, slice, lut), value);
    }

    /// Current value of a logic source.
    pub fn read(&self, src: LogicSource) -> Result<bool, SimError> {
        let mut visiting = HashSet::new();
        self.value(src, &mut visiting)
    }

    /// Value seen by an input pin (0 when undriven).
    pub fn read_pin(&self, pin: InputPin) -> Result<bool, SimError> {
        match self.netlist.source(pin) {
            Some(src) => self.read(src),
            None => Ok(false),
        }
    }

    fn lut_value(&self, rc: RowCol, slice: u8, lut: u8) -> u16 {
        self.bits.get_lut(rc, slice, lut).unwrap_or(0)
    }

    fn input(
        &self,
        rc: RowCol,
        slice: u8,
        pin: u8,
        visiting: &mut HashSet<LogicSource>,
    ) -> Result<bool, SimError> {
        match self.netlist.source(InputPin { rc, slice, pin }) {
            Some(src) => self.value(src, visiting),
            None => Ok(false),
        }
    }

    fn value(
        &self,
        src: LogicSource,
        visiting: &mut HashSet<LogicSource>,
    ) -> Result<bool, SimError> {
        if let Some(&v) = self.forces.get(&src) {
            return Ok(v);
        }
        match src {
            LogicSource::Gclk(_) => Ok(false), // clock level is not data
            LogicSource::Xq { rc, slice } => {
                Ok(self.ff.get(&(rc, slice, 0)).copied().unwrap_or(false))
            }
            LogicSource::Yq { rc, slice } => {
                Ok(self.ff.get(&(rc, slice, 1)).copied().unwrap_or(false))
            }
            LogicSource::X { rc, slice } | LogicSource::Y { rc, slice } => {
                if !visiting.insert(src) {
                    return Err(SimError::CombinationalLoop { at: rc, slice });
                }
                let lut = if matches!(src, LogicSource::X { .. }) {
                    0u8
                } else {
                    1u8
                };
                let base = if lut == 0 {
                    slice_in_pin::F1
                } else {
                    slice_in_pin::G1
                };
                let mut addr = 0usize;
                for bit in 0..4u8 {
                    if self.input(rc, slice, base + bit, visiting)? {
                        addr |= 1 << bit;
                    }
                }
                visiting.remove(&src);
                Ok((self.lut_value(rc, slice, lut) >> addr) & 1 == 1)
            }
        }
    }

    /// Apply one rising clock edge to every slice whose `CLK` pin is
    /// driven: compute every flip-flop's next state from the current
    /// state, then commit synchronously.
    pub fn step(&mut self) -> Result<(), SimError> {
        let mut next: Vec<(FfKey, bool)> = Vec::new();
        for &(rc, slice) in &self.active {
            // Clocked at all?
            if self
                .netlist
                .source(InputPin {
                    rc,
                    slice,
                    pin: slice_in_pin::CLK,
                })
                .is_none()
            {
                continue;
            }
            let mut visiting = HashSet::new();
            // Clock enable (default on) and synchronous reset.
            let ce = match self.netlist.source(InputPin {
                rc,
                slice,
                pin: slice_in_pin::CE,
            }) {
                Some(src) => self.value(src, &mut visiting)?,
                None => true,
            };
            if !ce {
                continue;
            }
            let sr = match self.netlist.source(InputPin {
                rc,
                slice,
                pin: slice_in_pin::SR,
            }) {
                Some(src) => self.value(src, &mut visiting)?,
                None => false,
            };
            for lut in 0..2u8 {
                let d = if sr {
                    false
                } else {
                    let comb = if lut == 0 {
                        LogicSource::X { rc, slice }
                    } else {
                        LogicSource::Y { rc, slice }
                    };
                    self.value(comb, &mut visiting)?
                };
                next.push(((rc, slice, lut), d));
            }
        }
        for (k, v) in next {
            self.ff.insert(k, v);
        }
        Ok(())
    }

    /// Run `n` clock steps.
    pub fn run(&mut self, n: usize) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Device, Family};

    /// Configure a 1-bit toggle flip-flop at (4,4) slice 0:
    /// F-LUT = NOT(F1), F1 driven by XQ (via routing), CLK from GCLK0.
    fn toggle_config() -> Bitstream {
        let dev = Device::new(Family::Xcv50);
        let mut b = Bitstream::new(&dev);
        let rc = RowCol::new(4, 4);
        // LUT F: out = !F1 -> truth table over addr: bit set where F1=0.
        // addr bit0 = F1. out(addr) = !(addr & 1): mask = 0b...0101 pattern
        // inverted = 0x5555.
        b.set_lut(rc, 0, 0, 0x5555).unwrap();
        // Clock.
        b.set_pip(rc, wire::gclk(0), wire::slice_in(0, slice_in_pin::CLK))
            .unwrap();
        // Route XQ (slice 0, k=1) back to F1 via OMUX and a single loop:
        // S0_XQ -> OUT[1] -> SINGLE_E[5] -> (4,5) -> SINGLE_W[...] back.
        // Simpler: use the feedback wire: S0_XQ (k=1) -> FEEDBACK[1] ->
        // inputs {16,17,18} = S1_F4/S1_G1/S1_G2... those are slice-1 pins,
        // so instead drive slice 1 and observe there? For this test we
        // take the general-routing loop:
        b.set_pip(
            rc,
            wire::slice_out(0, wire::slice_out_pin::XQ),
            wire::out(1),
        )
        .unwrap();
        b.set_pip(rc, wire::out(1), wire::single(virtex::Dir::East, 5))
            .unwrap();
        // At (4,5) bounce back west: SINGLE_E_END[5] -> SINGLE_W[i].
        // Pattern: single_end(E,5) drives west singles {(5+19+3)%24, (5+7+3)%24} = {3, 15}.
        b.set_pip(
            RowCol::new(4, 5),
            wire::single_end(virtex::Dir::East, 5),
            wire::single(virtex::Dir::West, 3),
        )
        .unwrap();
        // Back at (4,4): SINGLE_W_END[3] drives inputs {(7*3+3*3+k)%26} = {4,5,6,7}.
        // Pin 4 is S0_G1 — not F1. Pins {4,5,6,7} are G inputs; use G-LUT
        // instead: make the toggle on G: Y = !G1, YQ loops back.
        b.set_lut(rc, 0, 1, 0x5555).unwrap();
        b.clear_pip(
            rc,
            wire::slice_out(0, wire::slice_out_pin::XQ),
            wire::out(1),
        )
        .unwrap();
        b.set_pip(
            rc,
            wire::slice_out(0, wire::slice_out_pin::YQ),
            wire::out(3),
        )
        .unwrap();
        b.set_pip(rc, wire::out(3), wire::single(virtex::Dir::East, 11))
            .unwrap();
        // single_end(E,11) at (4,5) drives west singles {(11+19+3)%24,(11+7+3)%24} = {9,21}.
        b.set_pip(
            RowCol::new(4, 5),
            wire::single_end(virtex::Dir::East, 11),
            wire::single(virtex::Dir::West, 9),
        )
        .unwrap();
        // SINGLE_W_END[9]@(4,4) drives pins {(7*9+9+k)%26} = {20,21,22,23}... recompute in test.
        b
    }

    #[test]
    fn toggle_ff_toggles() {
        // Build the loop programmatically so the pin arithmetic is taken
        // from the architecture rather than hand-computed.
        let dev = Device::new(Family::Xcv50);
        let mut b = Bitstream::new(&dev);
        let rc = RowCol::new(4, 4);
        b.set_pip(rc, wire::gclk(0), wire::slice_in(0, slice_in_pin::CLK))
            .unwrap();
        b.set_pip(rc, wire::gclk(0), wire::slice_in(1, slice_in_pin::CLK))
            .unwrap();
        // YQ of slice 0 -> OUT[3] -> east single -> bounce west -> some
        // G input of slice 0 or 1.
        b.set_pip(
            rc,
            wire::slice_out(0, wire::slice_out_pin::YQ),
            wire::out(3),
        )
        .unwrap();
        let mut fan = Vec::new();
        dev.arch().pips_from(rc, wire::out(3), &mut fan);
        let east = *fan
            .iter()
            .find(|w| {
                matches!(
                    w.kind(),
                    virtex::WireKind::Single {
                        dir: virtex::Dir::East,
                        ..
                    }
                )
            })
            .unwrap();
        b.set_pip(rc, wire::out(3), east).unwrap();
        let virtex::WireKind::Single { idx, .. } = east.kind() else {
            unreachable!()
        };
        let end = wire::single_end(virtex::Dir::East, idx as usize);
        let far = RowCol::new(4, 5);
        fan.clear();
        dev.arch().pips_from(far, end, &mut fan);
        let west = *fan
            .iter()
            .find(|w| {
                matches!(
                    w.kind(),
                    virtex::WireKind::Single {
                        dir: virtex::Dir::West,
                        ..
                    }
                )
            })
            .unwrap();
        b.set_pip(far, end, west).unwrap();
        let virtex::WireKind::Single { idx: widx, .. } = west.kind() else {
            unreachable!()
        };
        let wend = wire::single_end(virtex::Dir::West, widx as usize);
        fan.clear();
        dev.arch().pips_from(rc, wend, &mut fan);
        // Find a G input (pins G1..G4) of either slice at (4,4).
        let g_in = *fan
            .iter()
            .find(|w| {
                matches!(w.kind(), virtex::WireKind::SliceIn { pin, .. }
                    if (slice_in_pin::G1..=slice_in_pin::G4).contains(&pin))
            })
            .expect("an arriving single drives some G input");
        b.set_pip(rc, wend, g_in).unwrap();
        let virtex::WireKind::SliceIn {
            slice: tslice,
            pin: tpin,
        } = g_in.kind()
        else {
            unreachable!()
        };
        // G-LUT of the target slice: output = NOT(selected input bit).
        let bit = tpin - slice_in_pin::G1;
        // LUT truth: out(addr) = !(addr >> bit & 1).
        let mut mask = 0u16;
        for addr in 0..16 {
            if (addr >> bit) & 1 == 0 {
                mask |= 1 << addr;
            }
        }
        b.set_lut(rc, tslice, 1, mask).unwrap();
        // The FF we toggle is the target slice's G FF; route its YQ into
        // the loop — but the loop drives from slice 0's YQ, so require
        // tslice == 0 for a true toggle; otherwise chain: set slice0's
        // G-LUT to pass through the target's YQ. Simplest: force the test
        // to the case tslice == 0 by checking; if tslice == 1, the
        // structure is a 2-stage shift register and we assert that
        // instead.
        let mut sim = Simulator::new(&b);
        if tslice == 0 {
            // Toggle: YQ alternates every cycle.
            let yq = LogicSource::Yq { rc, slice: 0 };
            assert_eq!(sim.read(yq), Ok(false));
            sim.step().unwrap();
            assert_eq!(sim.read(yq), Ok(true));
            sim.step().unwrap();
            assert_eq!(sim.read(yq), Ok(false));
            sim.step().unwrap();
            assert_eq!(sim.read(yq), Ok(true));
        } else {
            // slice1.G = !slice0.YQ; slice0 G-LUT is all-zero so YQ stays
            // 0 and slice1.YQ becomes 1 after a step and stays.
            let yq1 = LogicSource::Yq { rc, slice: 1 };
            sim.step().unwrap();
            assert_eq!(sim.read(yq1), Ok(true));
            sim.step().unwrap();
            assert_eq!(sim.read(yq1), Ok(true));
        }
    }

    #[test]
    fn forced_sources_override_logic() {
        let b = toggle_config();
        let mut sim = Simulator::new(&b);
        let src = LogicSource::Yq {
            rc: RowCol::new(4, 4),
            slice: 0,
        };
        sim.force(src, true);
        assert_eq!(sim.read(src), Ok(true));
        sim.unforce(src);
        assert_eq!(sim.read(src), Ok(false));
    }

    #[test]
    fn combinational_loops_are_detected() {
        // X = F(F1) where F1 is driven by X itself (via routing) and the
        // LUT is a buffer: a combinational loop.
        let dev = Device::new(Family::Xcv50);
        let mut b = Bitstream::new(&dev);
        let rc = RowCol::new(4, 4);
        // Route X (slice 0, k=0) out and back to an F/G input.
        b.set_pip(rc, wire::slice_out(0, wire::slice_out_pin::X), wire::out(0))
            .unwrap();
        let mut fan = Vec::new();
        dev.arch().pips_from(rc, wire::out(0), &mut fan);
        let east = *fan
            .iter()
            .find(|w| {
                matches!(
                    w.kind(),
                    virtex::WireKind::Single {
                        dir: virtex::Dir::East,
                        ..
                    }
                )
            })
            .unwrap();
        b.set_pip(rc, wire::out(0), east).unwrap();
        let virtex::WireKind::Single { idx, .. } = east.kind() else {
            unreachable!()
        };
        let end = wire::single_end(virtex::Dir::East, idx as usize);
        let far = RowCol::new(4, 5);
        fan.clear();
        dev.arch().pips_from(far, end, &mut fan);
        // Among the west singles reachable from the bounce, pick one whose
        // arrival back at (4,4) can drive an F/G LUT input.
        let wests: Vec<virtex::Wire> = fan
            .iter()
            .copied()
            .filter(|w| {
                matches!(
                    w.kind(),
                    virtex::WireKind::Single {
                        dir: virtex::Dir::West,
                        ..
                    }
                )
            })
            .collect();
        let mut chosen = None;
        let mut back = Vec::new();
        for west in wests {
            let virtex::WireKind::Single { idx: widx, .. } = west.kind() else {
                unreachable!()
            };
            let wend = wire::single_end(virtex::Dir::West, widx as usize);
            back.clear();
            dev.arch().pips_from(rc, wend, &mut back);
            if let Some((slice, pin, input_wire)) = back.iter().find_map(|w| match w.kind() {
                virtex::WireKind::SliceIn { slice, pin } if pin < slice_in_pin::BX => {
                    Some((slice, pin, *w))
                }
                _ => None,
            }) {
                chosen = Some((west, wend, slice, pin, input_wire));
                break;
            }
        }
        let (west, wend, slice, pin, input_wire) =
            chosen.expect("some west single drives a LUT input on arrival");
        b.set_pip(far, end, west).unwrap();
        b.set_pip(rc, wend, input_wire).unwrap();
        // Make the fed slice's LUT depend on that pin (identity), and
        // close the loop only if it feeds slice 0's F/G... The loop is
        // X(0) -> ... -> input(slice). If slice != 0, then that slice's
        // comb output isn't part of the cycle — instead connect its LUT
        // to 1 and assert no loop. We only assert the loop in the
        // closing case.
        let lut = if pin >= slice_in_pin::G1 { 1u8 } else { 0u8 };
        let bit = if lut == 1 {
            pin - slice_in_pin::G1
        } else {
            pin - slice_in_pin::F1
        };
        let mut mask = 0u16;
        for addr in 0..16u16 {
            if (addr >> bit) & 1 == 1 {
                mask |= 1 << addr;
            }
        }
        b.set_lut(rc, slice, lut, mask).unwrap();
        let sim = Simulator::new(&b);
        if slice == 0 && lut == 0 {
            let r = sim.read(LogicSource::X { rc, slice: 0 });
            assert_eq!(r, Err(SimError::CombinationalLoop { at: rc, slice: 0 }));
        } else {
            // Not a closed loop; must evaluate cleanly (X of slice 0 reads
            // LUT 0 which is 0).
            assert_eq!(sim.read(LogicSource::X { rc, slice: 0 }), Ok(false));
        }
    }

    #[test]
    fn undriven_pins_read_zero_and_unclocked_ffs_hold() {
        let dev = Device::new(Family::Xcv50);
        let b = Bitstream::new(&dev);
        let mut sim = Simulator::new(&b);
        let rc = RowCol::new(0, 0);
        assert_eq!(
            sim.read_pin(InputPin {
                rc,
                slice: 0,
                pin: slice_in_pin::F1
            }),
            Ok(false)
        );
        sim.set_ff(rc, 0, 0, true);
        sim.step().unwrap();
        // No CLK connection -> FF holds.
        assert_eq!(sim.read(LogicSource::Xq { rc, slice: 0 }), Ok(true));
    }
}
