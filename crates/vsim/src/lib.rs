//! # vsim — device-level functional simulation of the configured fabric
//!
//! BoardScope [2] debugs run-time-reconfigured designs by reading state
//! back from live hardware. We have no hardware, so this crate supplies
//! the equivalent substrate: given a [`jbits::Bitstream`], it extracts
//! the logic netlist (who drives which CLB input, traced through the
//! routing) and simulates the configured LUTs and flip-flops cycle by
//! cycle. The core library's `trace` reports *connectivity*; `vsim`
//! reports *values* — together they reproduce the debugging story of
//! paper §3.5, and they let the core library's arithmetic cores be tested
//! functionally (a counter must actually count).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod netlist;
pub mod sim;

pub use netlist::{InputPin, LogicSource, Netlist};
pub use sim::{SimError, Simulator};
