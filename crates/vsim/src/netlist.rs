//! Netlist extraction: from configuration bits to logic connectivity.
//!
//! The simulator does not interpret PIPs at runtime; it extracts, once,
//! the *logic source* behind every driven CLB input pin by reverse-tracing
//! the configuration — the same readback-based view a BoardScope-class
//! debugger has of the hardware.

use jbits::Bitstream;
use virtex::{Device, RowCol, Segment, WireKind};

/// Where the value on a wire ultimately comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant fields (rc, slice) are self-describing
pub enum LogicSource {
    /// Combinational F-LUT output (`X`) of a slice.
    X { rc: RowCol, slice: u8 },
    /// Combinational G-LUT output (`Y`) of a slice.
    Y { rc: RowCol, slice: u8 },
    /// Registered F output (`XQ`).
    Xq { rc: RowCol, slice: u8 },
    /// Registered G output (`YQ`).
    Yq { rc: RowCol, slice: u8 },
    /// A global clock net.
    Gclk(u8),
}

/// One slice input pin position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputPin {
    /// Tile of the pin.
    pub rc: RowCol,
    /// Slice index (0 or 1).
    pub slice: u8,
    /// Pin code from [`virtex::wire::slice_in_pin`].
    pub pin: u8,
}

/// The extracted logic netlist: a map from every driven input pin to its
/// logic source.
#[derive(Debug, Default)]
pub struct Netlist {
    pub(crate) inputs: std::collections::HashMap<InputPin, LogicSource>,
}

/// Classify a canonical segment as a logic source, if it is one.
fn source_of_segment(seg: Segment) -> Option<LogicSource> {
    match seg.wire.kind() {
        WireKind::SliceOut { slice, pin } => Some(match pin {
            virtex::wire::slice_out_pin::X => LogicSource::X { rc: seg.rc, slice },
            virtex::wire::slice_out_pin::XQ => LogicSource::Xq { rc: seg.rc, slice },
            virtex::wire::slice_out_pin::Y => LogicSource::Y { rc: seg.rc, slice },
            _ => LogicSource::Yq { rc: seg.rc, slice },
        }),
        WireKind::Gclk(i) => Some(LogicSource::Gclk(i)),
        _ => None,
    }
}

impl Netlist {
    /// Extract the netlist from a configuration.
    ///
    /// Every PIP targeting a CLB input pin is reverse-traced to a slice
    /// output or global clock. Pins that trace to nothing (dangling
    /// routing) are left undriven and read as 0 in simulation.
    pub fn extract(bits: &Bitstream) -> Self {
        let dev: &Device = bits.device();
        let mut inputs = std::collections::HashMap::new();
        for rc in dev.dims().iter_tiles() {
            for pip in bits.pips_at(rc) {
                if !pip.to.is_clb_input() {
                    continue;
                }
                let WireKind::SliceIn { slice, pin } = pip.to.kind() else {
                    continue;
                };
                // Walk back from the pin's driver wire to a logic source.
                let Some(mut cur) = dev.canonicalize(rc, pip.from) else {
                    continue;
                };
                let src = loop {
                    if let Some(s) = source_of_segment(cur) {
                        break Some(s);
                    }
                    match bits.segment_driver(cur) {
                        Some((drc, dpip)) => match dev.canonicalize(drc, dpip.from) {
                            Some(next) => cur = next,
                            None => break None,
                        },
                        None => break None,
                    }
                };
                if let Some(src) = src {
                    inputs.insert(InputPin { rc, slice, pin }, src);
                }
            }
        }
        Netlist { inputs }
    }

    /// Logic source driving a pin, if any.
    pub fn source(&self, pin: InputPin) -> Option<LogicSource> {
        self.inputs.get(&pin).copied()
    }

    /// Number of driven input pins.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether nothing is connected.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use virtex::{wire, Device, Dir, Family};

    #[test]
    fn extracts_the_paper_example_connection() {
        let dev = Device::new(Family::Xcv50);
        let mut b = Bitstream::new(&dev);
        b.set_pip(RowCol::new(5, 7), wire::S1_YQ, wire::out(1))
            .unwrap();
        b.set_pip(RowCol::new(5, 7), wire::out(1), wire::single(Dir::East, 5))
            .unwrap();
        b.set_pip(
            RowCol::new(5, 8),
            wire::single_end(Dir::East, 5),
            wire::single(Dir::North, 0),
        )
        .unwrap();
        b.set_pip(
            RowCol::new(6, 8),
            wire::single_end(Dir::North, 0),
            wire::S0_F3,
        )
        .unwrap();
        let nl = Netlist::extract(&b);
        assert_eq!(nl.len(), 1);
        let pin = InputPin {
            rc: RowCol::new(6, 8),
            slice: 0,
            pin: virtex::wire::slice_in_pin::F3,
        };
        assert_eq!(
            nl.source(pin),
            Some(LogicSource::Yq {
                rc: RowCol::new(5, 7),
                slice: 1
            })
        );
    }

    #[test]
    fn dangling_routes_leave_pins_undriven() {
        let dev = Device::new(Family::Xcv50);
        let mut b = Bitstream::new(&dev);
        // Drive an input from a single that nothing drives.
        b.set_pip(
            RowCol::new(6, 8),
            wire::single_end(Dir::North, 0),
            wire::S0_F3,
        )
        .unwrap();
        let nl = Netlist::extract(&b);
        assert!(nl.is_empty());
    }

    #[test]
    fn gclk_sources_are_recognised() {
        let dev = Device::new(Family::Xcv50);
        let mut b = Bitstream::new(&dev);
        b.set_pip(
            RowCol::new(3, 3),
            wire::gclk(2),
            wire::slice_in(0, wire::slice_in_pin::CLK),
        )
        .unwrap();
        let nl = Netlist::extract(&b);
        let pin = InputPin {
            rc: RowCol::new(3, 3),
            slice: 0,
            pin: wire::slice_in_pin::CLK,
        };
        assert_eq!(nl.source(pin), Some(LogicSource::Gclk(2)));
    }
}
