//! Batch execution engines.
//!
//! A prepared batch is a vector of tasks (one per request) executed over
//! per-worker [`StealDeque`]s in one of two modes:
//!
//! * **threaded** — real `std::thread::scope` workers; each drains its
//!   own deque bottom-first, steals from its neighbours' tops when
//!   empty, and falls back to the shared retry queue. Deferred requests
//!   (lost claim races) go to the retry queue rather than back onto the
//!   owner's deque, so a conflicting pair cannot spin against each other
//!   at full speed.
//! * **deterministic** — the same deque topology driven by a single
//!   consumer: a seeded [`DetRng`] picks which worker acts at every
//!   step, and which victim it steals from. The resulting schedule is a
//!   pure function of `(seed, threads, batch)`, so a run can be replayed
//!   exactly — the substrate of the service stress tests.
//!
//! Task words pack `attempts << 32 | request index`, so a deque slot is
//! one `u64` and retry accounting needs no shared state.
//!
//! ### Claim-id namespace
//!
//! The claim table is seeded with every persisted net under its `NetId`
//! (all below [`BATCH_BASE`]); each in-flight request gets a contiguous
//! id range at or above it — one id for a `Route`, and `1 + adds` ids
//! for a `Replace` (a *holder* id that keeps custody of the victims'
//! segments plus one id per replacement net). Keeping victims claimed by
//! the holder during a `Replace` means their segments are never visible
//! as free to rival requests, which is what makes the request-scoped
//! rollback exact even under full concurrency.

use crate::request::{Deadline, Reject, Request, RequestKind};
use detrand::{DetRng, SliceRandom};
use jroute::maze::{MazeConfig, MazeScratch};
use jroute::parallel::{route_one_claiming, ClaimTable, ParallelNet, RouteOutcome};
use jroute::schedule::StealDeque;
use jroute::NetId;
use jroute_obs::{Recorder, TraceCtx};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use virtex::{Device, SegIdx};

/// First claim-table owner id for in-flight batch requests; persisted
/// nets are seeded under their `NetId`, which must stay below this.
pub(crate) const BATCH_BASE: u32 = 1 << 31;

/// Resolved per-request execution plan (victims pre-resolved to their
/// segment lists so workers never touch the `NetDb`).
#[derive(Debug)]
pub(crate) enum PrepKind {
    /// Route the spec carried in the request's own `RequestKind::Route`.
    Route,
    /// Release the claims of these nets; the database rows are removed
    /// post-batch.
    Unroute {
        /// `(net, its claimed segment indices)` per victim.
        targets: Vec<(NetId, Vec<SegIdx>)>,
    },
    /// Take custody of the victims' segments, route the `add` specs of
    /// the request's `RequestKind::Replace` over them, roll everything
    /// back if any replacement fails.
    Replace {
        /// `(net, its claimed segment indices)` per victim.
        victims: Vec<(NetId, Vec<SegIdx>)>,
    },
    /// Refused during preparation.
    Reject(Reject),
}

/// A prepared batch: requests (sorted by priority, then submission
/// order), their plans, their claim-id bases, and the live claim table
/// seeded with every persisted net.
pub(crate) struct Batch<'r> {
    pub requests: &'r [Request],
    pub kinds: Vec<PrepKind>,
    /// First claim id of each request's contiguous range.
    pub cid_base: Vec<u32>,
    pub claims: ClaimTable,
}

/// Terminal outcome of one task, with routed nets still held as claims.
#[derive(Debug)]
pub(crate) enum Done {
    Routed(Box<ParallelNet>),
    Unrouted(Vec<NetId>),
    Replaced {
        removed: Vec<NetId>,
        added: Vec<ParallelNet>,
    },
    Cancelled,
    Expired,
    Congested(u32),
    Rejected(Reject),
}

/// One completed task.
#[derive(Debug)]
pub(crate) struct TaskDone {
    pub idx: usize,
    pub worker: usize,
    pub stolen: bool,
    pub step: u64,
    pub outcome: Done,
}

/// Aggregate execution counters for the batch report.
#[derive(Debug, Default)]
pub(crate) struct ExecStats {
    pub executed: u64,
    pub steals: u64,
    pub retries: u64,
}

/// What one execution of a task decided.
enum Step {
    Finished(Done),
    /// Deferred — requeue with `attempts + 1`.
    Retry,
}

fn defer(attempts: u32, max_attempts: u32) -> Step {
    if attempts + 1 >= max_attempts {
        Step::Finished(Done::Congested(attempts + 1))
    } else {
        Step::Retry
    }
}

/// Claim-table indices a committed net holds: its canonical source plus
/// every path segment.
fn net_claim_indices(dev: &Device, net: &ParallelNet) -> Vec<SegIdx> {
    let space = dev.seg_space();
    let mut v = Vec::with_capacity(net.segments.len() + 1);
    if let Some(src) = dev.canonicalize(net.spec.source.rc, net.spec.source.wire) {
        v.push(space.index(src));
    }
    v.extend(net.segments.iter().map(|&s| space.index(s)));
    v
}

/// Execute one task to a decision. All claim-table effects are either
/// committed (the outcome owns them) or fully rolled back before this
/// returns — a `Retry`, `Cancelled` or `Expired` task leaves the table
/// exactly as it found it.
#[allow(clippy::too_many_arguments)] // the full executor contract
fn exec_task(
    dev: &Device,
    batch: &Batch<'_>,
    idx: usize,
    attempts: u32,
    max_attempts: u32,
    maze: &MazeConfig,
    scratch: &mut MazeScratch,
    expired: &dyn Fn() -> bool,
    obs: &Recorder,
) -> Step {
    let req = &batch.requests[idx];
    // Every execution attempt — first try, retry after parking, stolen
    // continuation — is one `svc.exec` span linked to the request's
    // submission-time root, whatever thread it lands on.
    let mut exec_span = obs.span_ctx("svc.exec", req.ctx);
    exec_span.note(req.id);
    let ctx = exec_span.ctx();
    let cancelled = || req.is_cancelled();
    if cancelled() {
        return Step::Finished(Done::Cancelled);
    }
    if expired() {
        return Step::Finished(Done::Expired);
    }
    let cancel = || cancelled() || expired();
    let claims = &batch.claims;
    let cid = batch.cid_base[idx];
    match (&batch.kinds[idx], &req.kind) {
        (PrepKind::Reject(r), _) => Step::Finished(Done::Rejected(*r)),
        (PrepKind::Route, RequestKind::Route(spec)) => {
            match route_one_claiming(dev, spec, cid, claims, maze, scratch, cancel, ctx, obs) {
                RouteOutcome::Committed(net) => Step::Finished(Done::Routed(net)),
                RouteOutcome::Deferred => defer(attempts, max_attempts),
                RouteOutcome::Cancelled => Step::Finished(if cancelled() {
                    Done::Cancelled
                } else {
                    Done::Expired
                }),
                RouteOutcome::Failed => Step::Finished(Done::Rejected(Reject::BadWire)),
            }
        }
        (PrepKind::Unroute { targets }, _) => {
            // Releases are per-segment atomics; freed segments become
            // visible to every in-flight search immediately.
            for (nid, segs) in targets {
                for &s in segs {
                    claims.release(s, nid.0);
                }
            }
            Step::Finished(Done::Unrouted(targets.iter().map(|&(n, _)| n).collect()))
        }
        (PrepKind::Replace { victims }, RequestKind::Replace { add, .. }) => exec_replace(
            dev,
            claims,
            victims,
            add,
            cid,
            attempts,
            max_attempts,
            maze,
            scratch,
            &cancel,
            &cancelled,
            ctx,
            obs,
        ),
        _ => unreachable!("prep kind always matches request kind"),
    }
}

/// The `Replace` dance. Ids: `holder = cid` keeps custody of victim
/// segments; replacement net `k` routes as `cid + 1 + k`.
///
/// Victim segments are *transferred*, never released, until the whole
/// request has committed — at no point are they visible as free to a
/// rival request, so rollback (transfer everything back to the victims)
/// cannot fail. Before each replacement routes, the remaining custody
/// pool is handed to that net's id, making the victims' resources
/// reusable by the replacement while staying blocked for everyone else.
#[allow(clippy::too_many_arguments)]
fn exec_replace(
    dev: &Device,
    claims: &ClaimTable,
    victims: &[(NetId, Vec<SegIdx>)],
    add: &[jroute::pathfinder::NetSpec],
    holder: u32,
    attempts: u32,
    max_attempts: u32,
    maze: &MazeConfig,
    scratch: &mut MazeScratch,
    cancel: &dyn Fn() -> bool,
    cancelled: &dyn Fn() -> bool,
    ctx: TraceCtx,
    obs: &Recorder,
) -> Step {
    let victim_set: HashSet<SegIdx> = victims
        .iter()
        .flat_map(|(_, segs)| segs.iter().copied())
        .collect();
    // Take custody. Each committed net is targeted by at most one
    // request per batch (enforced during preparation), so the victims'
    // claims are intact and every transfer succeeds.
    for (nid, segs) in victims {
        for &s in segs {
            let ok = claims.transfer(s, nid.0, holder);
            debug_assert!(ok, "victim claim vanished");
        }
    }
    let mut added: Vec<ParallelNet> = Vec::new();
    let mut halt: Option<Step> = None;
    for (k, spec) in add.iter().enumerate() {
        let add_id = holder + 1 + k as u32;
        // Hand whatever custody remains to this replacement; segments
        // already consumed by earlier replacements keep their owners
        // (the failed transfer is the filter).
        for &s in &victim_set {
            claims.transfer(s, holder, add_id);
        }
        match route_one_claiming(dev, spec, add_id, claims, maze, scratch, cancel, ctx, obs) {
            RouteOutcome::Committed(net) => {
                // Return the custody this net did not use to the holder.
                let used: HashSet<SegIdx> = net_claim_indices(dev, &net).into_iter().collect();
                for &s in &victim_set {
                    if !used.contains(&s) {
                        claims.transfer(s, add_id, holder);
                    }
                }
                added.push(*net);
            }
            RouteOutcome::Deferred => {
                halt = Some(defer(attempts, max_attempts));
                break;
            }
            RouteOutcome::Cancelled => {
                halt = Some(Step::Finished(if cancelled() {
                    Done::Cancelled
                } else {
                    Done::Expired
                }));
                break;
            }
            RouteOutcome::Failed => {
                halt = Some(Step::Finished(Done::Rejected(Reject::BadWire)));
                break;
            }
        }
    }
    if let Some(step) = halt {
        // Request-scoped rollback. The replacement that just failed
        // released its fresh claims itself but still holds any custody
        // segments it was handed; sweep every id in this request's range
        // back: custody segments to the holder, fresh claims to free.
        for (k, _) in add.iter().enumerate() {
            let add_id = holder + 1 + k as u32;
            for &s in &victim_set {
                claims.transfer(s, add_id, holder);
            }
        }
        for (k, net) in added.iter().enumerate() {
            let add_id = holder + 1 + k as u32;
            for s in net_claim_indices(dev, net) {
                if !victim_set.contains(&s) {
                    claims.release(s, add_id);
                }
            }
        }
        // Custody is whole again; give the victims their claims back.
        for (nid, segs) in victims {
            for &s in segs {
                let ok = claims.transfer(s, holder, nid.0);
                debug_assert!(ok, "rollback must restore every victim claim");
            }
        }
        return step;
    }
    // Committed: victims' unreused segments are finally freed (reused
    // ones stay claimed by the replacement nets that own them now).
    for &s in &victim_set {
        claims.release(s, holder);
    }
    Step::Finished(Done::Replaced {
        removed: victims.iter().map(|&(n, _)| n).collect(),
        added,
    })
}

/// Evaluate a request's deadline against the mode's step clock.
fn deadline_expired(deadline: Option<Deadline>, completed: u64, started: Option<Instant>) -> bool {
    match deadline {
        None => false,
        Some(Deadline::Steps(s)) => completed >= s,
        // Deterministic mode passes no start instant: wall-clock
        // deadlines are unbounded there (see `Deadline::Elapsed`).
        Some(Deadline::Elapsed(d)) => started.is_some_and(|t| t.elapsed() >= d),
    }
}

const IDX_MASK: u64 = 0xFFFF_FFFF;

fn task_word(idx: usize, attempts: u32) -> u64 {
    (u64::from(attempts) << 32) | idx as u64
}

/// Threaded execution over `threads` work-stealing workers. `batch_ctx`
/// is the `svc.batch` span's context; worker spans link back to it so
/// the flight recording ties every thread track to the batch that ran
/// it.
pub(crate) fn run_threaded(
    dev: &Device,
    batch: &Batch<'_>,
    threads: usize,
    maze: &MazeConfig,
    max_attempts: u32,
    batch_ctx: TraceCtx,
    obs: &Recorder,
) -> (Vec<TaskDone>, ExecStats) {
    let n = batch.requests.len();
    let threads = threads.max(1).min(n.max(1));
    // Every deque is sized for the whole batch: a worker can end up
    // holding far more than its stripe via steals and retries, and a
    // failed push would lose a task.
    let deques: Vec<StealDeque> = (0..threads).map(|_| StealDeque::with_capacity(n)).collect();
    // Reverse preload: the owner pops its deque bottom-first (LIFO), so
    // pushing the least-urgent stripe entries first means each worker
    // serves its most-urgent request first. Thieves take from the top —
    // the least-urgent end — which is exactly who should wait.
    for idx in (0..n).rev() {
        deques[idx % threads]
            .push(task_word(idx, 0))
            .expect("preload fits");
    }
    // Deferred tasks carry the completion count at deferral time: a
    // deferral means a *live* rival holds segments the task needs, so
    // re-running its (expensive, doomed) search before anything has
    // completed only burns CPU the rival could be using. Entries become
    // eligible once the count advances; the in-flight==0 fallback keeps
    // termination when no rival can ever complete (the task then burns
    // its attempts toward `Congested`).
    let retry_queue: Mutex<VecDeque<(u64, u64)>> = Mutex::new(VecDeque::new());
    let live = AtomicUsize::new(n);
    let in_flight = AtomicUsize::new(0);
    let completed = AtomicU64::new(0);
    let start = Instant::now();
    // Pre-registered histogram handles: the completion path must not do
    // string-keyed map lookups while `threads` workers hammer it.
    let h_request_ns = obs.histogram("svc.request_ns");
    let h_attempts = obs.histogram("svc.request_attempts");
    let mut dones: Vec<TaskDone> = Vec::with_capacity(n);
    let mut stats = ExecStats::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let (deques, retry_queue, live, in_flight, completed) =
                (&deques, &retry_queue, &live, &in_flight, &completed);
            let (h_request_ns, h_attempts) = (h_request_ns.clone(), h_attempts.clone());
            handles.push(scope.spawn(move || {
                let mut span = obs.span_ctx("svc.worker", batch_ctx);
                let mut scratch = MazeScratch::new(dev);
                let mut out: Vec<TaskDone> = Vec::new();
                let mut local = ExecStats::default();
                let mut idle = 0u32;
                loop {
                    let mut stolen = false;
                    let task = deques[w]
                        .pop()
                        .or_else(|| {
                            (1..threads).find_map(|off| {
                                let t = deques[(w + off) % threads].steal();
                                stolen |= t.is_some();
                                t
                            })
                        })
                        .or_else(|| {
                            let mut q = retry_queue.lock().unwrap();
                            match q.front() {
                                Some(&(_, gate))
                                    if completed.load(Ordering::SeqCst) > gate
                                        || in_flight.load(Ordering::SeqCst) == 0 =>
                                {
                                    q.pop_front().map(|(t, _)| t)
                                }
                                _ => None,
                            }
                        });
                    let Some(task) = task else {
                        if live.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        // Someone is still executing; their completion
                        // (or retry) is what unblocks us. Yield a few
                        // times, then sleep — an oversubscribed box must
                        // not burn the working thread's quantum.
                        idle += 1;
                        if idle < 4 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        continue;
                    };
                    idle = 0;
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    let idx = (task & IDX_MASK) as usize;
                    let attempts = (task >> 32) as u32;
                    local.executed += 1;
                    local.steals += u64::from(stolen);
                    let deadline = batch.requests[idx].deadline;
                    let expired = || {
                        deadline_expired(deadline, completed.load(Ordering::SeqCst), Some(start))
                    };
                    match exec_task(
                        dev,
                        batch,
                        idx,
                        attempts,
                        max_attempts,
                        maze,
                        &mut scratch,
                        &expired,
                        obs,
                    ) {
                        Step::Retry => {
                            local.retries += 1;
                            // Gate the retry on the request that beat us:
                            // it stays parked until something completes.
                            let gate = completed.load(Ordering::SeqCst);
                            retry_queue
                                .lock()
                                .unwrap()
                                .push_back((task_word(idx, attempts + 1), gate));
                        }
                        Step::Finished(outcome) => {
                            let step = completed.fetch_add(1, Ordering::SeqCst);
                            h_request_ns.record_duration(start.elapsed());
                            h_attempts.record(u64::from(attempts) + 1);
                            out.push(TaskDone {
                                idx,
                                worker: w,
                                stolen,
                                step,
                                outcome,
                            });
                            live.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                span.note(local.executed);
                (out, local)
            }));
        }
        for h in handles {
            let (out, local) = h.join().expect("service worker panicked");
            dones.extend(out);
            stats.executed += local.executed;
            stats.steals += local.steals;
            stats.retries += local.retries;
        }
    });
    (dones, stats)
}

/// Deterministic execution: one consumer drives the same deque topology
/// with a seeded schedule. At every step the RNG picks the acting
/// worker; if its deque is empty it steals from a seeded choice among
/// the non-empty victims, falling back to the retry queue. Requests
/// execute one at a time, so the completion log *is* the serialization
/// — replay it through [`crate::model::SequentialModel`] to check the
/// whole machine.
#[allow(clippy::too_many_arguments)] // the full executor contract
pub(crate) fn run_deterministic(
    dev: &Device,
    batch: &Batch<'_>,
    threads: usize,
    maze: &MazeConfig,
    max_attempts: u32,
    seed: u64,
    batch_ctx: TraceCtx,
    obs: &Recorder,
) -> (Vec<TaskDone>, ExecStats) {
    let n = batch.requests.len();
    let threads = threads.max(1).min(n.max(1));
    let deques: Vec<StealDeque> = (0..threads).map(|_| StealDeque::with_capacity(n)).collect();
    // Reverse preload: the owner pops its deque bottom-first (LIFO), so
    // pushing the least-urgent stripe entries first means each worker
    // serves its most-urgent request first. Thieves take from the top —
    // the least-urgent end — which is exactly who should wait.
    for idx in (0..n).rev() {
        deques[idx % threads]
            .push(task_word(idx, 0))
            .expect("preload fits");
    }
    let mut retry_queue: VecDeque<u64> = VecDeque::new();
    let mut rng = DetRng::seed_from_u64(seed);
    let mut scratch = MazeScratch::new(dev);
    let mut span = obs.span_ctx("svc.schedule", batch_ctx);
    let h_steps = obs.histogram("svc.request_steps");
    let h_attempts = obs.histogram("svc.request_attempts");
    let mut dones: Vec<TaskDone> = Vec::with_capacity(n);
    let mut stats = ExecStats::default();
    let mut live = n;
    let mut completed = 0u64;
    while live > 0 {
        let w = rng.gen_range(0..threads);
        let mut stolen = false;
        let task = deques[w]
            .pop()
            .or_else(|| {
                let victims: Vec<usize> = (0..threads)
                    .filter(|&v| v != w && !deques[v].is_empty())
                    .collect();
                victims.choose(&mut rng).and_then(|&v| {
                    let t = deques[v].steal();
                    stolen = t.is_some();
                    t
                })
            })
            .or_else(|| retry_queue.pop_front());
        let Some(task) = task else {
            // Serially, every live task is in some deque or the retry
            // queue, and the steal/retry fallbacks are unconditional.
            unreachable!("no task found while {live} requests are live");
        };
        let idx = (task & IDX_MASK) as usize;
        let attempts = (task >> 32) as u32;
        stats.executed += 1;
        stats.steals += u64::from(stolen);
        let deadline = batch.requests[idx].deadline;
        let expired = || deadline_expired(deadline, completed, None);
        match exec_task(
            dev,
            batch,
            idx,
            attempts,
            max_attempts,
            maze,
            &mut scratch,
            &expired,
            obs,
        ) {
            Step::Retry => {
                stats.retries += 1;
                retry_queue.push_back(task_word(idx, attempts + 1));
            }
            Step::Finished(outcome) => {
                h_steps.record(completed);
                h_attempts.record(u64::from(attempts) + 1);
                dones.push(TaskDone {
                    idx,
                    worker: w,
                    stolen,
                    step: completed,
                    outcome,
                });
                completed += 1;
                live -= 1;
            }
        }
    }
    span.note(stats.executed);
    (dones, stats)
}
