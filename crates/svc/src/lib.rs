//! `jroute-svc` — batch/async routing service front-end.
//!
//! JRoute's run-time reconfiguration model (paper §3, §5) makes the
//! router a *service*: cores come and go while the design runs, and each
//! change is a burst of route / unroute / replace operations whose
//! latency is application latency. This crate provides that front-end
//! over the optimistic parallel router in `jroute::parallel`:
//!
//! * a bounded submission queue ([`RoutingService::submit`]) with
//!   backpressure ([`QueueFull`]), per-request ids, priorities and
//!   deadlines;
//! * batch execution ([`RoutingService::run_batch`]) over per-worker
//!   work-stealing deques ([`jroute::schedule::StealDeque`]), with
//!   deferred requests (lost claim races) retried through a shared
//!   injector queue;
//! * cancellation ([`CancelToken`]) and deadline expiry with exact
//!   request-scoped rollback: an abandoned request releases every
//!   segment it claimed, mid-search included;
//! * a deterministic mode ([`ExecMode::Deterministic`]) in which the
//!   whole schedule is a pure function of the seed — the completion log
//!   can be replayed through [`model::SequentialModel`] and must
//!   reproduce the service's net database exactly;
//! * `jroute-obs` spans and counters for queue depth, steals, retries,
//!   and per-request latency histograms.
//!
//! ```
//! use jroute_svc::{RequestKind, RoutingService, ServiceConfig};
//! use jroute::pathfinder::NetSpec;
//! use jroute::Pin;
//! use virtex::{wire, Device, Family};
//!
//! let dev = Device::new(Family::Xcv50);
//! let mut svc = RoutingService::new(&dev, ServiceConfig::default());
//! let id = svc
//!     .submit(RequestKind::Route(NetSpec::new(
//!         Pin::new(2, 2, wire::S0_YQ),
//!         vec![Pin::new(4, 6, wire::S0_F3)],
//!     )))
//!     .unwrap();
//! let report = svc.run_batch();
//! assert!(report.outcome(id).unwrap().is_success());
//! ```

mod exec;
pub mod model;
mod request;
pub mod server;
pub mod trace;

pub use request::{
    BatchReport, CancelToken, Deadline, LogEntry, QueueFull, Reject, Request, RequestId,
    RequestKind, RequestOutcome, TenantId,
};
pub use server::{
    serve, FaultPlan, ServerClient, ServerConfig, ServerLogEntry, ServerOutcome, ServerReport,
    TenantHandle, TenantReport, Ticket,
};
pub use trace::{ReplaySummary, Trace, TraceError, TraceId, TraceOp, TraceReq};

use exec::{Batch, Done, PrepKind, TaskDone, BATCH_BASE};
use jroute::maze::MazeConfig;
use jroute::parallel::{ClaimTable, ParallelNet};
use jroute::pathfinder::{self, NetSpec, PathFinderConfig, PathFinderResult};
use jroute::{NetDb, NetId};
use jroute_obs::{Aggregator, Counter, Gauge, Histo, Recorder};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use virtex::{Device, SegIdx};

/// How a batch executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Real worker threads; schedule and completion order are
    /// nondeterministic, throughput is real.
    Threaded,
    /// Single-consumer replayable schedule seeded from `detrand`: the
    /// same seed, batch and thread count reproduce the identical
    /// schedule, completion log and final database.
    Deterministic {
        /// Schedule seed.
        seed: u64,
    },
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker count (deques exist in both modes; threads are only real
    /// in [`ExecMode::Threaded`]).
    pub threads: usize,
    /// Maze options shared by every request.
    pub maze: MazeConfig,
    /// Bounded submission-queue capacity; [`RoutingService::submit`]
    /// fails with [`QueueFull`] beyond it.
    pub queue_capacity: usize,
    /// Executions (first try + retries) before a request that keeps
    /// losing claim races is reported [`RequestOutcome::Congested`].
    pub max_attempts: u32,
    /// Execution mode.
    pub mode: ExecMode,
    /// After each batch, scan the claim table against the net database
    /// and report disagreements in [`BatchReport::leaked_claims`]. An
    /// O(segment-space) scan — cheap next to routing, but off by default
    /// for benches.
    pub audit: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            maze: MazeConfig::default(),
            queue_capacity: 1024,
            max_attempts: 8,
            mode: ExecMode::Threaded,
            audit: cfg!(debug_assertions),
        }
    }
}

/// The batch routing service: a submission queue, a net database of
/// committed state, and the batch executor.
#[derive(Debug)]
pub struct RoutingService<'d> {
    dev: &'d Device,
    cfg: ServiceConfig,
    db: NetDb,
    pending: VecDeque<Request>,
    /// Nets each committed request produced — the victim namespace for
    /// `Unroute`/`Replace`.
    committed: HashMap<RequestId, Vec<NetId>>,
    next_id: RequestId,
    next_seq: u64,
    obs: Recorder,
    meters: SvcMeters,
    /// Rolling per-batch time-series (queue depth, batch latency
    /// quantiles, steal/retry rates) — `Some` iff the recorder is
    /// enabled; ticked once at the end of every `run_batch`.
    window: Option<Aggregator>,
}

/// Pre-registered sharded-registry handles for the service's hot
/// batch-loop metrics: no string-keyed map lookups while a batch runs.
#[derive(Debug, Clone)]
struct SvcMeters {
    batches: Counter,
    executed: Counter,
    steals: Counter,
    retries: Counter,
    queue_depth: Gauge,
    batch_ns: Histo,
}

impl SvcMeters {
    fn resolve(obs: &Recorder) -> Self {
        SvcMeters {
            batches: obs.counter("svc.batches"),
            executed: obs.counter("svc.executed"),
            steals: obs.counter("svc.steals"),
            retries: obs.counter("svc.retries"),
            queue_depth: obs.gauge("svc.queue_depth_now"),
            batch_ns: obs.histogram("svc.batch_ns"),
        }
    }
}

/// How many per-batch samples the service's rolling window retains.
const WINDOW_SAMPLES: usize = 256;

impl<'d> RoutingService<'d> {
    /// New service over one device with a disabled recorder.
    pub fn new(dev: &'d Device, cfg: ServiceConfig) -> Self {
        Self::with_recorder(dev, cfg, Recorder::disabled())
    }

    /// New service with an observability recorder; every batch emits
    /// `svc.*` spans, counters and histograms through it.
    pub fn with_recorder(dev: &'d Device, cfg: ServiceConfig, obs: Recorder) -> Self {
        let meters = SvcMeters::resolve(&obs);
        let window = obs.is_enabled().then(|| {
            let mut w = Aggregator::new(WINDOW_SAMPLES);
            w.track_gauge("svc.queue_depth", meters.queue_depth.clone());
            w.track_histogram("svc.batch_ns", meters.batch_ns.clone());
            w.track_counter("svc.executed", meters.executed.clone());
            w.track_counter("svc.steals", meters.steals.clone());
            w.track_counter("svc.retries", meters.retries.clone());
            w.track_counter(
                "pathfinder.nets_rerouted",
                obs.counter("pathfinder.nets_rerouted"),
            );
            // Wave telemetry from the unified partition-parallel engine:
            // how many barriers each negotiation needed, how wide its
            // waves ran, and how many nets the partitioner had to
            // serialize (straddlers + cliques).
            w.track_counter("pathfinder.waves", obs.counter("pathfinder.waves"));
            w.track_counter(
                "pathfinder.partition_conflicts",
                obs.counter("pathfinder.partition_conflicts"),
            );
            w.track_histogram(
                "pathfinder.wave_size",
                obs.histogram("pathfinder.wave_size"),
            );
            // Timing-driven telemetry: the per-iteration criticality
            // distribution and the best-of-two Steiner builder's
            // win/branch/reuse counters — what the tuner's fan-out and
            // exponent ratchets read.
            w.track_gauge("pathfinder.crit_max", obs.gauge("pathfinder.crit_max"));
            w.track_gauge("pathfinder.crit_p99", obs.gauge("pathfinder.crit_p99"));
            w.track_histogram("pathfinder.crit", obs.histogram("pathfinder.crit"));
            w.track_counter("steiner.builds", obs.counter("steiner.builds"));
            w.track_counter("steiner.wins", obs.counter("steiner.wins"));
            w.track_counter("steiner.branches", obs.counter("steiner.branches"));
            w.track_counter("steiner.reuse_hits", obs.counter("steiner.reuse_hits"));
            w
        });
        RoutingService {
            dev,
            cfg,
            db: NetDb::new(dev.seg_space()),
            pending: VecDeque::new(),
            committed: HashMap::new(),
            next_id: 0,
            next_seq: 0,
            obs,
            meters,
            window,
        }
    }

    /// The committed net database.
    pub fn db(&self) -> &NetDb {
        &self.db
    }

    /// The device this service routes on.
    pub fn device(&self) -> &'d Device {
        self.dev
    }

    /// Replace the maze options future batches route with — the hook
    /// the telemetry tuner ([`jroute::tuner`]) applies its derived
    /// config through between scenario steps. Queued requests are
    /// unaffected until the next `run_batch`.
    pub fn set_maze(&mut self, maze: MazeConfig) {
        self.cfg.maze = maze;
    }

    /// Resize the worker set future batches schedule over — how the
    /// multi-tenant server applies its per-batch [`ThreadBudget`]
    /// lease. Never changes deterministic-mode results *within* a fixed
    /// width; the server only calls it in threaded mode.
    ///
    /// [`ThreadBudget`]: jroute::schedule::ThreadBudget
    pub(crate) fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads.max(1);
    }

    /// The recorder batches report through.
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Run the unified partition-parallel negotiator over `specs` under
    /// the service's execution policy: the service's worker count, and
    /// the inline replayable wave schedule when the service runs in
    /// [`ExecMode::Deterministic`] (results are identical either way —
    /// the engine is deterministic by construction — but the schedule,
    /// and hence the telemetry interleaving, is pinned).
    ///
    /// This is how `Replace`-heavy scenarios cross-check their live
    /// demand (see the churn workload): the negotiation shares the
    /// service recorder, so its wave/search telemetry lands in the same
    /// rolling window the tuner reads.
    pub fn negotiate(
        &self,
        specs: &[NetSpec],
        cfg: &PathFinderConfig,
    ) -> jroute::Result<PathFinderResult> {
        let cfg = PathFinderConfig {
            threads: self.cfg.threads,
            deterministic: matches!(self.cfg.mode, ExecMode::Deterministic { .. }),
            ..cfg.clone()
        };
        pathfinder::route_all_obs(self.dev, specs, &cfg, &self.obs)
    }

    /// The rolling per-batch time-series (one sample appended at the end
    /// of every non-empty `run_batch`): queue depth at submission peak,
    /// batch latency p50/p99, steal/retry/executed deltas and nets
    /// rerouted by negotiation. `None` when the recorder is disabled.
    pub fn window(&self) -> Option<&Aggregator> {
        self.window.as_ref()
    }

    /// Queued (not yet executed) requests.
    pub fn queue_len(&self) -> usize {
        self.pending.len()
    }

    /// Nets a committed request produced, if it is still committed.
    pub fn nets_of(&self, id: RequestId) -> Option<&[NetId]> {
        self.committed.get(&id).map(|v| v.as_slice())
    }

    /// Submit with default priority (128) and no deadline.
    pub fn submit(&mut self, kind: RequestKind) -> Result<RequestId, QueueFull> {
        self.submit_with(kind, 128, None).map(|(id, _)| id)
    }

    /// Submit with explicit priority (lower runs earlier) and optional
    /// deadline. Returns the request id and its cancellation token.
    pub fn submit_with(
        &mut self,
        kind: RequestKind,
        priority: u8,
        deadline: Option<Deadline>,
    ) -> Result<(RequestId, CancelToken), QueueFull> {
        let cancel = Arc::new(AtomicBool::new(false));
        self.submit_injected(kind, priority, deadline, Arc::clone(&cancel))
            .map(|id| (id, CancelToken(cancel)))
    }

    /// Submission with a caller-supplied cancellation flag — the server
    /// front-end mints the flag at admission time (so a request can be
    /// cancelled while still in the server's queue, before it ever
    /// reaches this service) and injects it here when the batch forms.
    pub(crate) fn submit_injected(
        &mut self,
        kind: RequestKind,
        priority: u8,
        deadline: Option<Deadline>,
        cancel: Arc<AtomicBool>,
    ) -> Result<RequestId, QueueFull> {
        if self.pending.len() >= self.cfg.queue_capacity {
            return Err(QueueFull {
                capacity: self.cfg.queue_capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        // Mint the request's causal root here, at submission: everything
        // the request causes — exec attempts, maze searches, stolen
        // continuations — links back to this span's trace id.
        let mut root = self.obs.span_root("svc.request");
        root.note(id);
        self.pending.push_back(Request {
            id,
            priority,
            deadline,
            kind,
            seq: self.next_seq,
            cancel,
            ctx: root.ctx(),
        });
        self.next_seq += 1;
        self.obs
            .record("svc.queue_depth", self.pending.len() as u64);
        self.meters.queue_depth.set(self.pending.len() as u64);
        Ok(id)
    }

    /// Cancellation token for a queued request (e.g. when the id came
    /// from [`RoutingService::submit`]).
    pub fn cancel_token(&self, id: RequestId) -> Option<CancelToken> {
        self.pending
            .iter()
            .find(|r| r.id == id)
            .map(|r| CancelToken(Arc::clone(&r.cancel)))
    }

    /// Drain the queue and execute everything as one batch.
    ///
    /// Requests run in priority order (ties by submission order) subject
    /// to stealing; successful requests are committed to the database,
    /// everything else leaves no trace. The report carries one terminal
    /// outcome per drained request plus the completion log.
    pub fn run_batch(&mut self) -> BatchReport {
        let mut span = self.obs.span_root("svc.batch");
        let batch_started = self.obs.elapsed_ns();
        // The gauge keeps the pre-drain depth until after the window
        // tick, so each sample reports the depth this batch consumed.
        let mut requests: Vec<Request> = self.pending.drain(..).collect();
        span.note(requests.len() as u64);
        requests.sort_by_key(|r| (r.priority, r.seq));
        if requests.is_empty() {
            return BatchReport {
                outcomes: Vec::new(),
                log: Vec::new(),
                executed: 0,
                steals: 0,
                retries: 0,
                leaked_claims: self.cfg.audit.then_some(0),
            };
        }

        let batch = self.prepare(&requests);
        let (mut dones, stats) = match self.cfg.mode {
            ExecMode::Threaded => exec::run_threaded(
                self.dev,
                &batch,
                self.cfg.threads,
                &self.cfg.maze,
                self.cfg.max_attempts,
                span.ctx(),
                &self.obs,
            ),
            ExecMode::Deterministic { seed } => exec::run_deterministic(
                self.dev,
                &batch,
                self.cfg.threads,
                &self.cfg.maze,
                self.cfg.max_attempts,
                seed,
                span.ctx(),
                &self.obs,
            ),
        };
        debug_assert_eq!(dones.len(), requests.len(), "one outcome per request");
        dones.sort_by_key(|d| d.step);

        let outcomes = self.apply(&requests, &dones);
        let leaked_claims = self.cfg.audit.then(|| self.audit(&batch.claims));

        self.meters.batches.inc();
        self.meters.executed.add(stats.executed);
        self.meters.steals.add(stats.steals);
        self.meters.retries.add(stats.retries);
        for (_, o) in &outcomes {
            let name = match o {
                RequestOutcome::Routed { .. } => "svc.routed",
                RequestOutcome::Unrouted { .. } => "svc.unrouted",
                RequestOutcome::Replaced { .. } => "svc.replaced",
                RequestOutcome::Cancelled => "svc.cancelled",
                RequestOutcome::Expired => "svc.expired",
                RequestOutcome::Congested { .. } => "svc.congested",
                RequestOutcome::Rejected(_) => "svc.rejected",
            };
            self.obs.count(name, 1);
        }

        let log = dones
            .iter()
            .map(|d| LogEntry {
                step: d.step,
                worker: d.worker,
                request: requests[d.idx].id,
                stolen: d.stolen,
            })
            .collect();
        let now = self.obs.elapsed_ns();
        self.meters
            .batch_ns
            .record(now.saturating_sub(batch_started));
        if let Some(w) = self.window.as_mut() {
            w.tick(now);
        }
        self.meters.queue_depth.set(self.pending.len() as u64);
        let mut outcomes = outcomes;
        outcomes.sort_by_key(|&(id, _)| id);
        BatchReport {
            outcomes,
            log,
            executed: stats.executed,
            steals: stats.steals,
            retries: stats.retries,
            leaked_claims,
        }
    }

    /// Resolve victims, allocate claim-id ranges, and seed the claim
    /// table with every committed net.
    fn prepare<'r>(&self, requests: &'r [Request]) -> Batch<'r> {
        let space = self.dev.seg_space();
        let claims = ClaimTable::new(space);
        for (seg, id) in self.db.iter_used() {
            debug_assert!(id.0 < BATCH_BASE, "NetId namespace ran into batch ids");
            let claimed = claims.try_claim(space.index(seg), id.0);
            debug_assert!(claimed, "database nets are disjoint");
        }
        let mut kinds = Vec::with_capacity(requests.len());
        let mut cid_base = Vec::with_capacity(requests.len());
        let mut next_cid = BATCH_BASE;
        // Each committed request may be victim of at most one request per
        // batch — the claim-custody handover in `Replace` depends on it.
        let mut consumed: HashSet<RequestId> = HashSet::new();
        for req in requests {
            let resolve = |targets: &[RequestId],
                           consumed: &mut HashSet<RequestId>|
             -> Result<Vec<(NetId, Vec<SegIdx>)>, Reject> {
                let mut out = Vec::new();
                for (i, &t) in targets.iter().enumerate() {
                    // A duplicate inside one request's own victim list would
                    // break the claim handover just like a cross-request
                    // duplicate, so both are rejected here.
                    if consumed.contains(&t) || targets[..i].contains(&t) {
                        return Err(Reject::UnknownTarget(t));
                    }
                    let Some(nets) = self.committed.get(&t) else {
                        return Err(Reject::UnknownTarget(t));
                    };
                    for &nid in nets {
                        out.push((nid, self.net_segment_indices(nid)));
                    }
                }
                for &t in targets {
                    consumed.insert(t);
                }
                Ok(out)
            };
            let (kind, ids) = match &req.kind {
                RequestKind::Route(_) => (PrepKind::Route, 1),
                RequestKind::Unroute(target) => match resolve(&[*target], &mut consumed) {
                    Ok(targets) => (PrepKind::Unroute { targets }, 1),
                    Err(r) => (PrepKind::Reject(r), 1),
                },
                RequestKind::Replace { remove, add } => match resolve(remove, &mut consumed) {
                    Ok(victims) => (PrepKind::Replace { victims }, 1 + add.len() as u32),
                    Err(r) => (PrepKind::Reject(r), 1),
                },
            };
            kinds.push(kind);
            cid_base.push(next_cid);
            next_cid = next_cid
                .checked_add(ids)
                .filter(|&n| n < u32::MAX)
                .expect("claim-id namespace exhausted");
        }
        Batch {
            requests,
            kinds,
            cid_base,
            claims,
        }
    }

    /// Claim-table indices net `nid` owns: source plus PIP targets.
    fn net_segment_indices(&self, nid: NetId) -> Vec<SegIdx> {
        let space = self.dev.seg_space();
        let net = self.db.net(nid).expect("committed net exists");
        let mut v = Vec::with_capacity(net.pips.len() + 1);
        v.push(space.index(net.source));
        for &(rc, pip) in &net.pips {
            if let Some(target) = virtex::segment::canonicalize(space.dims(), rc, pip.to) {
                v.push(space.index(target));
            }
        }
        v
    }

    /// Apply completions to the database and produce per-request
    /// outcomes. Removals are applied first: in threaded mode, a later
    /// completion ticket may belong to a request that already reused
    /// segments an `Unroute` freed mid-batch, so creating in pure ticket
    /// order could collide with a net that is about to be removed.
    /// Creates then land in completion order, which keeps `NetId`
    /// assignment identical to the sequential replay.
    fn apply(
        &mut self,
        requests: &[Request],
        dones: &[TaskDone],
    ) -> Vec<(RequestId, RequestOutcome)> {
        for d in dones {
            match &d.outcome {
                Done::Unrouted(nets)
                | Done::Replaced {
                    removed: nets,
                    added: _,
                } => {
                    for &nid in nets {
                        self.db.remove_net(nid).expect("victim net exists");
                    }
                }
                _ => {}
            }
        }
        let mut outcomes = Vec::with_capacity(dones.len());
        for d in dones {
            let req = &requests[d.idx];
            let outcome = match &d.outcome {
                Done::Routed(net) => {
                    let nid = self.apply_net(net);
                    self.committed.insert(req.id, vec![nid]);
                    RequestOutcome::Routed {
                        net: nid,
                        segments: net.segments.len() + 1,
                    }
                }
                Done::Unrouted(nets) => {
                    if let RequestKind::Unroute(target) = &req.kind {
                        self.committed.remove(target);
                    }
                    RequestOutcome::Unrouted { nets: nets.clone() }
                }
                Done::Replaced { removed, added } => {
                    if let RequestKind::Replace { remove, .. } = &req.kind {
                        for t in remove {
                            self.committed.remove(t);
                        }
                    }
                    let ids: Vec<NetId> = added.iter().map(|n| self.apply_net(n)).collect();
                    self.committed.insert(req.id, ids.clone());
                    RequestOutcome::Replaced {
                        removed: removed.clone(),
                        added: ids,
                    }
                }
                Done::Cancelled => RequestOutcome::Cancelled,
                Done::Expired => RequestOutcome::Expired,
                Done::Congested(attempts) => RequestOutcome::Congested {
                    attempts: *attempts,
                },
                Done::Rejected(r) => RequestOutcome::Rejected(*r),
            };
            outcomes.push((req.id, outcome));
        }
        outcomes
    }

    /// Commit one routed net to the database. The claim table already
    /// guaranteed exclusivity, so contention here is a bug.
    fn apply_net(&mut self, net: &ParallelNet) -> NetId {
        let src = self
            .dev
            .canonicalize(net.spec.source.rc, net.spec.source.wire)
            .expect("committed net has a canonical source");
        let id = self
            .db
            .create(net.spec.source, src)
            .expect("claim table guaranteed source exclusivity");
        for (k, &(rc, pip)) in net.pips.iter().enumerate() {
            self.db
                .add_pip(id, rc, pip, net.segments[k])
                .expect("claim table guaranteed segment exclusivity");
        }
        for sink in &net.spec.sinks {
            self.db.add_sink(id, *sink);
        }
        id
    }

    /// Post-batch leak check: the claim table (persisted survivors plus
    /// batch-committed nets) must describe exactly the segments the
    /// database now owns. Returns the number of disagreeing slots.
    fn audit(&self, claims: &ClaimTable) -> usize {
        let space = self.dev.seg_space();
        let claimed: HashSet<SegIdx> = claims.claimed().map(|(idx, _)| idx).collect();
        let used: HashSet<SegIdx> = self
            .db
            .iter_used()
            .map(|(seg, _)| space.index(seg))
            .collect();
        claimed.symmetric_difference(&used).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jroute::pathfinder::NetSpec;
    use jroute::Pin;
    use virtex::{wire, Device, Family};

    fn dev() -> Device {
        Device::new(Family::Xcv50)
    }

    fn det_cfg(threads: usize, seed: u64) -> ServiceConfig {
        ServiceConfig {
            threads,
            mode: ExecMode::Deterministic { seed },
            audit: true,
            ..Default::default()
        }
    }

    fn spec(i: usize) -> NetSpec {
        let r = (2 + (i * 3) % 12) as u16;
        let c = (2 + (i * 5) % 16) as u16;
        NetSpec::new(
            Pin::new(r, c, wire::S0_YQ),
            vec![Pin::new(r + 2, c + 4, wire::S0_F3)],
        )
    }

    #[test]
    fn route_then_unroute_roundtrip() {
        let dev = dev();
        let mut svc = RoutingService::new(&dev, det_cfg(2, 1));
        let id = svc.submit(RequestKind::Route(spec(0))).unwrap();
        let report = svc.run_batch();
        assert!(matches!(
            report.outcome(id),
            Some(RequestOutcome::Routed { .. })
        ));
        assert_eq!(report.leaked_claims, Some(0));
        assert_eq!(svc.db().len(), 1);
        assert!(svc.db().used_segments() > 0);

        let un = svc.submit(RequestKind::Unroute(id)).unwrap();
        let report = svc.run_batch();
        assert!(matches!(
            report.outcome(un),
            Some(RequestOutcome::Unrouted { .. })
        ));
        assert_eq!(report.leaked_claims, Some(0));
        assert!(svc.db().is_empty());
        assert_eq!(svc.db().used_segments(), 0);
        assert!(svc.nets_of(id).is_none(), "victim entry retired");
    }

    #[test]
    fn replace_swaps_nets() {
        let dev = dev();
        let mut svc = RoutingService::new(&dev, det_cfg(2, 7));
        let a = svc.submit(RequestKind::Route(spec(0))).unwrap();
        svc.run_batch();
        let old_net = svc.nets_of(a).unwrap()[0];

        let r = svc
            .submit(RequestKind::Replace {
                remove: vec![a],
                add: vec![spec(1), spec(2)],
            })
            .unwrap();
        let report = svc.run_batch();
        match report.outcome(r) {
            Some(RequestOutcome::Replaced { removed, added }) => {
                assert_eq!(removed, &vec![old_net]);
                assert_eq!(added.len(), 2);
            }
            other => panic!("expected Replaced, got {other:?}"),
        }
        assert_eq!(report.leaked_claims, Some(0));
        assert_eq!(svc.db().len(), 2);
        assert!(svc.db().net(old_net).is_none());
    }

    #[test]
    fn replace_rolls_back_when_an_add_cannot_route() {
        let dev = dev();
        let mut svc = RoutingService::new(&dev, det_cfg(2, 3));
        let a = svc.submit(RequestKind::Route(spec(0))).unwrap();
        svc.run_batch();
        let before = svc.db().census();

        // Second add names a wire off the device: the whole request must
        // reject and the victim must keep every segment.
        let r = svc
            .submit(RequestKind::Replace {
                remove: vec![a],
                add: vec![
                    spec(1),
                    NetSpec::new(
                        Pin::new(2, 2, wire::S1_YQ),
                        vec![Pin::new(200, 200, wire::S0_F3)],
                    ),
                ],
            })
            .unwrap();
        let report = svc.run_batch();
        assert!(matches!(
            report.outcome(r),
            Some(RequestOutcome::Rejected(Reject::BadWire))
        ));
        assert_eq!(report.leaked_claims, Some(0));
        assert_eq!(svc.db().census(), before, "victim state must be intact");
        assert!(svc.nets_of(a).is_some(), "victim request still committed");
    }

    #[test]
    fn bounded_queue_pushes_back() {
        let dev = dev();
        let cfg = ServiceConfig {
            queue_capacity: 2,
            ..det_cfg(1, 0)
        };
        let mut svc = RoutingService::new(&dev, cfg);
        svc.submit(RequestKind::Route(spec(0))).unwrap();
        svc.submit(RequestKind::Route(spec(1))).unwrap();
        let err = svc.submit(RequestKind::Route(spec(2))).unwrap_err();
        assert_eq!(err, QueueFull { capacity: 2 });
        // Draining the queue restores capacity.
        svc.run_batch();
        svc.submit(RequestKind::Route(spec(2))).unwrap();
    }

    #[test]
    fn cancelled_request_leaves_no_trace() {
        let dev = dev();
        let mut svc = RoutingService::new(&dev, det_cfg(2, 5));
        let (id, token) = svc
            .submit_with(RequestKind::Route(spec(0)), 128, None)
            .unwrap();
        token.cancel();
        assert!(svc.cancel_token(id).unwrap().is_cancelled());
        let report = svc.run_batch();
        assert_eq!(report.outcome(id), Some(&RequestOutcome::Cancelled));
        assert_eq!(report.leaked_claims, Some(0));
        assert!(svc.db().is_empty());
    }

    #[test]
    fn zero_step_deadline_expires() {
        let dev = dev();
        let mut svc = RoutingService::new(&dev, det_cfg(1, 11));
        let (id, _) = svc
            .submit_with(RequestKind::Route(spec(0)), 128, Some(Deadline::Steps(0)))
            .unwrap();
        let report = svc.run_batch();
        assert_eq!(report.outcome(id), Some(&RequestOutcome::Expired));
        assert_eq!(report.leaked_claims, Some(0));
        assert!(svc.db().is_empty());
    }

    #[test]
    fn unknown_victims_are_rejected() {
        let dev = dev();
        let mut svc = RoutingService::new(&dev, det_cfg(1, 2));
        let un = svc.submit(RequestKind::Unroute(999)).unwrap();
        // Two requests targeting the same victim: the second rejects.
        let a = svc.submit(RequestKind::Route(spec(0))).unwrap();
        let report = svc.run_batch();
        assert_eq!(
            report.outcome(un),
            Some(&RequestOutcome::Rejected(Reject::UnknownTarget(999)))
        );
        let u1 = svc.submit(RequestKind::Unroute(a)).unwrap();
        let u2 = svc.submit(RequestKind::Unroute(a)).unwrap();
        let report = svc.run_batch();
        assert!(report.outcome(u1).unwrap().is_success());
        assert_eq!(
            report.outcome(u2),
            Some(&RequestOutcome::Rejected(Reject::UnknownTarget(a)))
        );
    }

    #[test]
    fn same_seed_reproduces_schedule_and_state() {
        let dev = dev();
        let run = || {
            let mut svc = RoutingService::new(&dev, det_cfg(4, 0xDEAD));
            for i in 0..8 {
                svc.submit(RequestKind::Route(spec(i))).unwrap();
            }
            let report = svc.run_batch();
            (report.log, svc.db().census())
        };
        let (log_a, census_a) = run();
        let (log_b, census_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(census_a, census_b);
    }

    #[test]
    fn priority_runs_most_urgent_first() {
        let dev = dev();
        let mut svc = RoutingService::new(&dev, det_cfg(1, 1));
        let lazy = svc
            .submit_with(RequestKind::Route(spec(0)), 200, None)
            .unwrap()
            .0;
        let urgent = svc
            .submit_with(RequestKind::Route(spec(1)), 10, None)
            .unwrap()
            .0;
        let report = svc.run_batch();
        assert_eq!(report.log[0].request, urgent);
        assert_eq!(report.log[1].request, lazy);
    }

    #[test]
    fn threaded_mode_commits_disjoint_nets() {
        let dev = dev();
        let cfg = ServiceConfig {
            threads: 4,
            mode: ExecMode::Threaded,
            audit: true,
            ..Default::default()
        };
        let mut svc = RoutingService::new(&dev, cfg);
        for i in 0..12 {
            svc.submit(RequestKind::Route(spec(i))).unwrap();
        }
        let report = svc.run_batch();
        assert_eq!(report.leaked_claims, Some(0));
        let mut seen = HashSet::new();
        for (seg, _) in svc.db().iter_used() {
            assert!(seen.insert(seg), "segment {seg} owned twice");
        }
        assert!(report.outcomes.iter().all(|(_, o)| o.is_success()));
    }

    #[test]
    fn deterministic_log_replays_through_the_model() {
        let dev = dev();
        let mut svc = RoutingService::new(&dev, det_cfg(3, 42));
        let mut subs = Vec::new();
        for i in 0..6 {
            subs.push(svc.submit(RequestKind::Route(spec(i))).unwrap());
        }
        // Mix in an unroute of the first request via a second batch to
        // exercise victim resolution as well.
        let report = svc.run_batch();
        assert!(report.outcomes.iter().all(|(_, o)| o.is_success()));
        let requests: HashMap<RequestId, RequestKind> = subs
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, RequestKind::Route(spec(i))))
            .collect();
        let mut m = model::SequentialModel::new(&dev, MazeConfig::default());
        for entry in &report.log {
            m.apply(entry.request, &requests[&entry.request]);
        }
        assert_eq!(m.db().census(), svc.db().census());
    }
}
