//! Sequential reference model for the batch service.
//!
//! [`SequentialModel`] executes *successful* requests one at a time
//! against a plain [`NetDb`] — no claim table, no threads, no deques —
//! using the same maze search the service uses. Deterministic-mode
//! batches are serializations (one request executes at a time, and
//! failed attempts roll back exactly), so replaying a batch's completion
//! log through the model must reproduce the service's net database
//! bit-for-bit: same nets, same `NetId`s, same segment census. The
//! service stress tests assert exactly that.
//!
//! `NetId` equality holds because the model creates nets in the same
//! order the service's post-batch apply does (completion order), and
//! removals never touch the id counter.

use crate::request::{RequestId, RequestKind};
use jroute::maze::{self, MazeConfig, MazeScratch};
use jroute::pathfinder::NetSpec;
use jroute::{NetDb, NetId};
use std::collections::HashMap;
use virtex::Device;

/// The single-threaded replay executor.
#[derive(Debug)]
pub struct SequentialModel<'d> {
    dev: &'d Device,
    db: NetDb,
    /// Nets each committed request produced, for victim resolution.
    committed: HashMap<RequestId, Vec<NetId>>,
    maze: MazeConfig,
    scratch: MazeScratch,
}

impl<'d> SequentialModel<'d> {
    /// Empty model over one device. Use the same `MazeConfig` as the
    /// service under test, or the searches will diverge.
    pub fn new(dev: &'d Device, maze: MazeConfig) -> Self {
        SequentialModel {
            dev,
            db: NetDb::new(dev.seg_space()),
            committed: HashMap::new(),
            maze,
            scratch: MazeScratch::new(dev),
        }
    }

    /// The model's net database, for census comparison.
    pub fn db(&self) -> &NetDb {
        &self.db
    }

    /// Nets a committed request produced (for victim cross-checks).
    pub fn nets_of(&self, id: RequestId) -> Option<&[NetId]> {
        self.committed.get(&id).map(|v| v.as_slice())
    }

    /// Apply one request the service reported as successful, identified
    /// by its id and kind (from the submitter's own records and the
    /// batch log).
    ///
    /// Panics if the request cannot be applied here: the service already
    /// committed it at this point of the schedule, so any failure is a
    /// real divergence between the concurrent machine and the model.
    pub fn apply(&mut self, req: RequestId, kind: &RequestKind) {
        match kind {
            RequestKind::Route(spec) => {
                let id = self.route(spec);
                self.committed.insert(req, vec![id]);
            }
            RequestKind::Unroute(target) => {
                let nets = self
                    .committed
                    .remove(target)
                    .expect("model: unroute victim was never committed");
                for id in nets {
                    self.db.remove_net(id).expect("model: victim net vanished");
                }
            }
            RequestKind::Replace { remove, add } => {
                // Removals precede the replacement routes, exactly like
                // the claim-custody handover in the live executor: the
                // replacements may reuse the victims' segments.
                for target in remove {
                    let nets = self
                        .committed
                        .remove(target)
                        .expect("model: replace victim was never committed");
                    for id in nets {
                        self.db.remove_net(id).expect("model: victim net vanished");
                    }
                }
                let ids: Vec<NetId> = add.iter().map(|spec| self.route(spec)).collect();
                self.committed.insert(req, ids);
            }
        }
    }

    /// Route one net with `NetDb` occupancy as the blocked set — the
    /// sequential twin of `route_one_claiming`.
    fn route(&mut self, spec: &NetSpec) -> NetId {
        let src = self
            .dev
            .canonicalize(spec.source.rc, spec.source.wire)
            .expect("model: source wire must exist");
        let id = self
            .db
            .create(spec.source, src)
            .expect("model: source segment already owned");
        // Same bounded-then-unbounded policy as `route_one_claiming`:
        // the model must take byte-identical search decisions.
        let mut bounded = self.maze.clone();
        if bounded.bbox.is_none() {
            bounded.bbox = Some(jroute::parallel::net_search_box(self.dev, spec));
        }
        let mut starts = vec![(src, 0u32)];
        for sink in &spec.sinks {
            let goal = self
                .dev
                .canonicalize(sink.rc, sink.wire)
                .expect("model: sink wire must exist");
            let r = {
                let db = &self.db;
                let blocked = |seg| db.owner(seg).is_some_and(|o| o != id);
                maze::search(
                    self.dev,
                    &starts,
                    goal,
                    &bounded,
                    blocked,
                    |_| 0,
                    &mut self.scratch,
                )
                .or_else(|| {
                    if self.maze.bbox.is_none() {
                        maze::search(
                            self.dev,
                            &starts,
                            goal,
                            &self.maze,
                            blocked,
                            |_| 0,
                            &mut self.scratch,
                        )
                    } else {
                        None
                    }
                })
            };
            let r = r.expect("model: search failed where the service succeeded");
            for (k, &(rc, pip)) in r.pips.iter().enumerate() {
                self.db
                    .add_pip(id, rc, pip, r.segments[k])
                    .expect("model: contention on a segment the search chose");
            }
            for &seg in &r.segments {
                starts.push((seg, 0));
            }
            self.db.add_sink(id, *sink);
        }
        id
    }
}
